(** In-memory telemetry: hierarchical timed spans, named counters and
    histograms, with Chrome trace_event and flat-stats exporters.

    The collector is global, thread-safe, and disabled by default: every
    instrumentation entry point first reads one atomic flag and returns
    immediately when recording is off, so instrumented hot paths cost a
    single branch in production runs. *)

(** Time source used by every span and by callers that need wall-clock
    measurements. Defaults to [Unix.gettimeofday]; tests install a fixed
    or stepped source to make trace output deterministic. *)
module Clock : sig
  val now_s : unit -> float
  (** Current time in seconds from the active source. *)

  val timed : (unit -> 'a) -> 'a * float
  (** [timed f] runs [f] and returns its result with the elapsed seconds. *)

  val set_source : (unit -> float) -> unit
  (** Replace the time source (e.g. with a deterministic counter). *)

  val use_wall_clock : unit -> unit
  (** Restore the default [Unix.gettimeofday] source. *)
end

(** Minimal JSON construction with correct string escaping; shared by the
    exporters and by clients (CLI, bench harness) that assemble their own
    machine-readable reports around telemetry data. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering; floats use a fixed format so equal
      inputs always serialise identically. *)
end

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded data and re-anchor the trace epoch at [Clock.now_s ()].
    Does not change the enabled flag. *)

type span_record = {
  span_name : string;
  start_s : float;
  duration_s : float;
  depth : int;  (** nesting depth at start, 0 = top level *)
  tid : int;  (** domain id the span ran on *)
  seq : int;  (** start order, ties broken deterministically *)
  span_attrs : (string * string) list;
}

type histogram = {
  samples : int;
  sum : float;
  min_v : float;
  max_v : float;
  bounds : float array;  (** upper bounds of the fixed buckets *)
  bucket_counts : int array;  (** length = [Array.length bounds + 1]; the
                                  last bucket is the +inf overflow *)
}

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f] as a hierarchical span. Nesting is tracked per
    domain. The span is recorded even when [f] raises. When the collector
    is disabled this is exactly [f ()]. *)

val count : ?by:int -> string -> unit
(** Bump a named monotonic counter (default increment 1). *)

val observe : ?buckets:float array -> string -> float -> unit
(** Record one sample into a named histogram. [buckets] fixes the bucket
    upper bounds the first time the name is seen (default: powers of ten
    from 1e-6 to 1e6); later calls reuse the stored bounds. *)

val spans : unit -> span_record list
(** Completed spans in deterministic start order. *)

val counters : unit -> (string * int) list
(** Counters sorted by name (aggregated over all domains). *)

val counters_by_domain : unit -> (string * (int * int) list) list
(** Per-domain split of {!counters}: for each counter name, the
    [(domain id, value)] pairs of every domain that bumped it, both levels
    sorted. JSON reports deliberately stay aggregate-only — domain ids and
    work split are scheduling noise — but [Export.stats_table] uses this to
    break multi-domain solver counters down per domain. *)

val histograms : unit -> (string * histogram) list
(** Histograms sorted by name. *)

val counter_value : string -> int
(** Current value of one counter, 0 when never bumped. *)

module Export : sig
  val write_atomic : string -> string -> unit
  (** [write_atomic path content] writes [content] to [path] via a temp
      file in the same directory and an atomic rename, so an interrupt or
      [Sys_error] mid-write never leaves a truncated report for tooling
      (e.g. the CI perf gate) to trip over. *)

  val chrome_trace : ?process_name:string -> unit -> string
  (** Chrome trace_event JSON ({i chrome://tracing} / Perfetto): one
      complete ("ph":"X") event per span with microsecond timestamps
      relative to the collector epoch, plus one counter ("ph":"C") event
      per named counter. *)

  val stats_json : ?meta:(string * Json.t) list -> unit -> string
  (** Flat report: spans aggregated by name, counters, histograms. *)

  val stats_table : unit -> string
  (** Human-readable ASCII rendering of the same aggregates. *)
end
