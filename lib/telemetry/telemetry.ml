module Clock = struct
  let wall = Unix.gettimeofday
  let source = ref wall
  let now_s () = !source ()

  let timed f =
    let t0 = now_s () in
    let v = f () in
    (v, now_s () -. t0)

  let set_source f = source := f
  let use_wall_clock () = source := wall
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* One fixed float format keeps equal inputs byte-identical across runs;
     NaN/inf have no JSON encoding, so map them to null. *)
  let add_float buf f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.6f" f)

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf
end

type span_record = {
  span_name : string;
  start_s : float;
  duration_s : float;
  depth : int;
  tid : int;
  seq : int;
  span_attrs : (string * string) list;
}

type histogram = {
  samples : int;
  sum : float;
  min_v : float;
  max_v : float;
  bounds : float array;
  bucket_counts : int array;
}

let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0; 1e3; 1e4; 1e5; 1e6 |]

type hist_state = {
  mutable h_samples : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_bounds : float array;
  h_counts : int array;
}

(* Global collector. The enabled flag is the only state read on the
   disabled fast path; everything else is touched under [lock]. *)
let on = Atomic.make false
let lock = Mutex.create ()
let completed : span_record list ref = ref []
let seq_counter = ref 0
let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* Per-domain split of the same counters, keyed (name, domain id). The
   aggregate table stays authoritative for JSON reports (scheduling noise
   must not leak into diffable artifacts); this one makes parallel
   branch-and-bound runs debuggable in [Export.stats_table]. *)
let counter_tid_tbl : (string * int, int ref) Hashtbl.t = Hashtbl.create 64
let hist_tbl : (string, hist_state) Hashtbl.t = Hashtbl.create 16
let depth_tbl : (int, int ref) Hashtbl.t = Hashtbl.create 8
let epoch = ref 0.0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let reset () =
  locked (fun () ->
      completed := [];
      seq_counter := 0;
      Hashtbl.reset counter_tbl;
      Hashtbl.reset counter_tid_tbl;
      Hashtbl.reset hist_tbl;
      Hashtbl.reset depth_tbl;
      epoch := Clock.now_s ())

let span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let tid = (Domain.self () :> int) in
    let depth, seq =
      locked (fun () ->
          let d =
            match Hashtbl.find_opt depth_tbl tid with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.replace depth_tbl tid r;
              r
          in
          let depth = !d in
          incr d;
          let seq = !seq_counter in
          incr seq_counter;
          (depth, seq))
    in
    let t0 = Clock.now_s () in
    let finish () =
      let t1 = Clock.now_s () in
      locked (fun () ->
          (match Hashtbl.find_opt depth_tbl tid with
           | Some d -> decr d
           | None -> ());
          completed :=
            {
              span_name = name;
              start_s = t0;
              duration_s = t1 -. t0;
              depth;
              tid;
              seq;
              span_attrs = attrs;
            }
            :: !completed)
    in
    Fun.protect ~finally:finish f
  end

let count ?(by = 1) name =
  if Atomic.get on && by <> 0 then begin
    let tid = (Domain.self () :> int) in
    locked (fun () ->
        (match Hashtbl.find_opt counter_tbl name with
         | Some r -> r := !r + by
         | None -> Hashtbl.replace counter_tbl name (ref by));
        match Hashtbl.find_opt counter_tid_tbl (name, tid) with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace counter_tid_tbl (name, tid) (ref by))
  end

let observe ?buckets name v =
  if Atomic.get on then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt hist_tbl name with
          | Some h -> h
          | None ->
            let bounds =
              match buckets with Some b -> Array.copy b | None -> default_bounds
            in
            let h =
              {
                h_samples = 0;
                h_sum = 0.0;
                h_min = Float.infinity;
                h_max = Float.neg_infinity;
                h_bounds = bounds;
                h_counts = Array.make (Array.length bounds + 1) 0;
              }
            in
            Hashtbl.replace hist_tbl name h;
            h
        in
        h.h_samples <- h.h_samples + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let n = Array.length h.h_bounds in
        let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
        let i = slot 0 in
        h.h_counts.(i) <- h.h_counts.(i) + 1)

let spans () =
  locked (fun () ->
      List.sort (fun a b -> compare (a.seq, a.tid) (b.seq, b.tid)) !completed)

let counters () =
  locked (fun () ->
      List.sort compare
        (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counter_tbl []))

let counters_by_domain () =
  locked (fun () ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.iter
        (fun (name, tid) r ->
          let cur = Option.value (Hashtbl.find_opt tbl name) ~default:[] in
          Hashtbl.replace tbl name ((tid, !r) :: cur))
        counter_tid_tbl;
      List.sort compare
        (Hashtbl.fold
           (fun name per acc -> (name, List.sort compare per) :: acc)
           tbl []))

let histograms () =
  locked (fun () ->
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold
           (fun name h acc ->
             ( name,
               {
                 samples = h.h_samples;
                 sum = h.h_sum;
                 min_v = h.h_min;
                 max_v = h.h_max;
                 bounds = Array.copy h.h_bounds;
                 bucket_counts = Array.copy h.h_counts;
               } )
             :: acc)
           hist_tbl []))

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0)

(* ------------------------------------------------------------ exporters *)

module Export = struct
  (* Report files are read by tooling (the CI perf gate, trace viewers), so
     a crash or interrupt mid-write must not leave a truncated file behind:
     write to a temp file in the same directory, then rename into place —
     atomic on POSIX. *)
  let write_atomic path content =
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc content;
            flush oc);
        Sys.rename tmp path)

  (* Spans aggregated by name for the flat report. *)
  let span_aggregates sps =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s ->
        match Hashtbl.find_opt tbl s.span_name with
        | Some (n, total, mn, mx) ->
          Hashtbl.replace tbl s.span_name
            ( n + 1,
              total +. s.duration_s,
              Float.min mn s.duration_s,
              Float.max mx s.duration_s )
        | None ->
          Hashtbl.replace tbl s.span_name (1, s.duration_s, s.duration_s, s.duration_s))
      sps;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

  let chrome_trace ?(process_name = "cohls") () =
    let t0 = locked (fun () -> !epoch) in
    let sps = spans () in
    let us t = (t -. t0) *. 1e6 in
    let span_event s =
      let base =
        [
          ("name", Json.String s.span_name);
          ("cat", Json.String "cohls");
          ("ph", Json.String "X");
          ("ts", Json.Float (us s.start_s));
          ("dur", Json.Float (s.duration_s *. 1e6));
          ("pid", Json.Int 1);
          ("tid", Json.Int s.tid);
        ]
      in
      let args =
        ("depth", Json.Int s.depth)
        :: List.map (fun (k, v) -> (k, Json.String v)) s.span_attrs
      in
      Json.Obj (base @ [ ("args", Json.Obj args) ])
    in
    let end_ts =
      List.fold_left
        (fun acc s -> Float.max acc (us s.start_s +. (s.duration_s *. 1e6)))
        0.0 sps
    in
    let counter_event (name, v) =
      Json.Obj
        [
          ("name", Json.String name);
          ("cat", Json.String "cohls");
          ("ph", Json.String "C");
          ("ts", Json.Float end_ts);
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("value", Json.Int v) ]);
        ]
    in
    let meta =
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String process_name) ]);
        ]
    in
    let events =
      (meta :: List.map span_event sps)
      @ List.map counter_event (counters ())
    in
    Json.to_string
      (Json.Obj
         [
           ("traceEvents", Json.List events);
           ("displayTimeUnit", Json.String "ms");
         ])

  let histogram_json (name, h) =
    let bucket i count =
      let le =
        if i < Array.length h.bounds then Json.Float h.bounds.(i)
        else Json.String "inf"
      in
      Json.Obj [ ("le", le); ("count", Json.Int count) ]
    in
    Json.Obj
      [
        ("name", Json.String name);
        ("count", Json.Int h.samples);
        ("sum", Json.Float h.sum);
        ("min", Json.Float (if h.samples = 0 then 0.0 else h.min_v));
        ("max", Json.Float (if h.samples = 0 then 0.0 else h.max_v));
        ( "mean",
          Json.Float (if h.samples = 0 then 0.0 else h.sum /. float_of_int h.samples)
        );
        ("buckets", Json.List (List.mapi bucket (Array.to_list h.bucket_counts)));
      ]

  let stats_json ?(meta = []) () =
    let span_json (name, (n, total, mn, mx)) =
      Json.Obj
        [
          ("name", Json.String name);
          ("count", Json.Int n);
          ("total_s", Json.Float total);
          ("min_s", Json.Float mn);
          ("max_s", Json.Float mx);
        ]
    in
    let counter_json (name, v) =
      Json.Obj [ ("name", Json.String name); ("value", Json.Int v) ]
    in
    let fields =
      (if meta = [] then [] else [ ("meta", Json.Obj meta) ])
      @ [
          ("spans", Json.List (List.map span_json (span_aggregates (spans ()))));
          ("counters", Json.List (List.map counter_json (counters ())));
          ("histograms", Json.List (List.map histogram_json (histograms ())));
        ]
    in
    Json.to_string (Json.Obj fields)

  let stats_table () =
    let buf = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    let aggs = span_aggregates (spans ()) in
    if aggs <> [] then begin
      line "%-38s %8s %12s %12s %12s" "span" "count" "total_s" "min_s" "max_s";
      line "%s" (String.make 86 '-');
      List.iter
        (fun (name, (n, total, mn, mx)) ->
          line "%-38s %8d %12.6f %12.6f %12.6f" name n total mn mx)
        aggs
    end;
    let cs = counters () in
    if cs <> [] then begin
      if aggs <> [] then line "";
      line "%-46s %12s" "counter" "value";
      line "%s" (String.make 59 '-');
      let by_domain = counters_by_domain () in
      List.iter
        (fun (name, v) ->
          line "%-46s %12d" name v;
          (* solver counters recorded on several domains get a per-domain
             breakdown sub-row, so parallel searches are debuggable *)
          match List.assoc_opt name by_domain with
          | Some ((_ :: _ :: _) as per) ->
            List.iter
              (fun (tid, dv) ->
                line "%-46s %12d" (Printf.sprintf "  domain %d" tid) dv)
              per
          | Some _ | None -> ())
        cs
    end;
    let hs = histograms () in
    if hs <> [] then begin
      if aggs <> [] || cs <> [] then line "";
      line "%-38s %8s %12s %12s %12s" "histogram" "count" "mean" "min" "max";
      line "%s" (String.make 86 '-');
      List.iter
        (fun (name, h) ->
          let mean = if h.samples = 0 then 0.0 else h.sum /. float_of_int h.samples in
          line "%-38s %8d %12.4f %12.4f %12.4f" name h.samples mean
            (if h.samples = 0 then 0.0 else h.min_v)
            (if h.samples = 0 then 0.0 else h.max_v))
        hs
    end;
    if aggs = [] && cs = [] && hs = [] then
      Buffer.add_string buf "telemetry: no data recorded (collector disabled?)\n";
    Buffer.contents buf
end

let () = epoch := Clock.now_s ()
