open Microfluidics

type engine =
  | Heuristic
  | Ilp of { options : Lp.Branch_bound.options; extra_free_slots : int }

let default_ilp =
  Ilp
    {
      options =
        {
          Lp.Branch_bound.default_options with
          Lp.Branch_bound.time_limit = Some 10.0;
        };
      extra_free_slots = 1;
    }

type input = {
  ops : Operation.t array;
  graph : Flowgraph.Digraph.t;
  layer : Layering.layer;
  layer_of_op : int array;
  bound_before : int -> int option;
  available : Device.t list;
  rule : Binding.rule;
  max_devices : int;
  transport : int -> int;
  cost : Cost.t;
  weights : Schedule.weights;
  existing_paths : (int * int) list;
  device_penalty : int -> int;
}

type output = {
  entries : Schedule.entry list;
  fixed_makespan : int;
  created : Device.t list;
  used_ilp : bool;
}

let run_heuristic input ~fresh_id =
  let cfg =
    {
      List_scheduler.rule = input.rule;
      max_devices = input.max_devices;
      cost = input.cost;
      weights = input.weights;
      device_penalty = input.device_penalty;
    }
  in
  List_scheduler.schedule_layer cfg ~ops:input.ops ~graph:input.graph
    ~layer:input.layer ~layer_of_op:input.layer_of_op
    ~bound_before:input.bound_before ~available:input.available
    ~transport:input.transport ~existing_paths:input.existing_paths ~fresh_id

let solve engine input ~fresh_id =
  Telemetry.span "layer.solve"
    ~attrs:
      [
        ("layer", string_of_int input.layer.Layering.index);
        ("engine", match engine with Heuristic -> "heuristic" | Ilp _ -> "ilp");
        ("ops", string_of_int (List.length input.layer.Layering.ops));
      ]
  @@ fun () ->
  Telemetry.count "layer.solves";
  let heur = Telemetry.span "layer.heuristic" (fun () -> run_heuristic input ~fresh_id) in
  match engine with
  | Heuristic ->
    {
      entries = heur.List_scheduler.entries;
      fixed_makespan = heur.List_scheduler.fixed_makespan;
      created = heur.List_scheduler.created;
      used_ilp = false;
    }
  | Ilp { options; extra_free_slots } ->
    Telemetry.span "layer.ilp" @@ fun () ->
    let n_created = List.length heur.List_scheduler.created in
    let n_avail = List.length input.available in
    let free_count =
      min (n_created + extra_free_slots) (max 0 (input.max_devices - n_avail))
    in
    let slots =
      Array.of_list
        (List.map (fun d -> Ilp_model.Fixed d) input.available
        @ List.init free_count (fun _ -> Ilp_model.Free { id = fresh_id () }))
    in
    let spec =
      {
        Ilp_model.ops = input.ops;
        graph = input.graph;
        layer = input.layer;
        layer_of_op = input.layer_of_op;
        bound_before = input.bound_before;
        slots;
        rule = input.rule;
        transport = input.transport;
        cost = input.cost;
        weights = input.weights;
        existing_paths = input.existing_paths;
      }
    in
    let built = Ilp_model.build spec in
    let lp = Ilp_model.model built in
    let warm = Ilp_model.warm_start built heur.List_scheduler.entries in
    let warm_obj =
      Option.map (fun values -> Lp.Model.eval_objective lp (fun v -> values.(v))) warm
    in
    (* Objective cutoff: only solutions at least as good as the heuristic
       matter, and the (all-integer) objective lets presolve propagate the
       cutoff into tight makespan/start bounds before the search starts. *)
    (match warm_obj with
     | Some wobj ->
       let _, obj_expr = Lp.Model.objective lp in
       Lp.Model.add_constr lp ~name:"warm_cutoff" obj_expr Lp.Model.Le
         (Lp.Linexpr.constant
            (Numeric.Rat.of_int (int_of_float (Float.round wobj))))
     | None -> ());
    (* Integer weights over integer variables: the objective is integral
       with granularity gcd(weights), so branch-and-bound may prune nodes
       within that step of the incumbent. *)
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let w = input.weights in
    let step =
      gcd w.Schedule.w_time
        (gcd w.Schedule.w_area (gcd w.Schedule.w_processing w.Schedule.w_paths))
    in
    let options =
      {
        options with
        Lp.Branch_bound.int_objective = true;
        int_obj_step = Float.of_int (max 1 (abs step));
      }
    in
    let result = Lp.Branch_bound.solve ~options ?warm_start:warm lp in
    let use_ilp, values =
      match (result.Lp.Branch_bound.values, result.Lp.Branch_bound.objective, warm_obj) with
      | Some values, Some obj, Some wobj -> (obj < wobj -. 1e-6, Some values)
      | Some values, Some _, None -> (true, Some values)
      | _, _, _ -> (false, None)
    in
    if use_ilp then begin
      Telemetry.count "layer.ilp_improved";
      match values with
      | None -> assert false
      | Some values ->
        let entries, created = Ilp_model.extract built ~values in
        let fixed_makespan =
          List.fold_left
            (fun acc e ->
              max acc (e.Schedule.start + e.Schedule.min_duration + e.Schedule.transport))
            0 entries
        in
        { entries; fixed_makespan; created; used_ilp = true }
    end
    else begin
      Telemetry.count "layer.ilp_rejected";
      {
        entries = heur.List_scheduler.entries;
        fixed_makespan = heur.List_scheduler.fixed_makespan;
        created = heur.List_scheduler.created;
        used_ilp = false;
      }
    end
