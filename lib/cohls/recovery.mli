(** Layer-boundary recovery: re-synthesising the unexecuted suffix of a
    partially-executed assay on the surviving device set.

    The paper's hybrid schedules exist so a cyber-physical controller can
    intervene at layer boundaries without discarding the whole synthesis.
    This module is that intervention for {e device faults}: when
    {!Runtime.execute_under_faults} stops on a permanent fault, the
    already-executed prefix is kept (its reagents are delivered, its
    dependencies satisfied), the dead device is excluded, the surviving
    chip devices are offered back to {!Synthesis.run_with_pool} as a free
    pool, and only the unexecuted layers are re-synthesised and executed —
    repeatedly, since the recovered suffix can fault again. The engine
    degrades exactly as plain synthesis does: when the ILP's deadline abort
    fires, the heuristic result stands (counted as
    [recovery.degraded_to_heuristic]).

    Every recovered schedule is checked with {!Schedule.validate} before it
    is executed; infeasibility is reported as a structured {!error} — the
    [Recovery_failed] outcome — never as an exception. *)

type reason =
  | No_feasible_binding of { op : int }
      (** no surviving (or permitted fresh) device can execute the
          operation ({e original} assay id) *)
  | Invalid_schedule of string
      (** re-synthesis produced a schedule rejected by
          {!Schedule.validate} *)
  | Execution_error of string  (** the oracle misbehaved during replay *)
  | Too_many_faults of { attempts : int }
      (** the recovery cap was hit (only reachable with
          [allow_new_devices], where the device set need not shrink) *)

type error = {
  at_global_layer : int;  (** boundary at which recovery gave up *)
  dead_devices : int list;  (** chronological *)
  failure : reason;
}
(** The structured [Recovery_failed] value. *)

type attempt = {
  at_global_layer : int;  (** boundary where the fault was detected *)
  dead_device : int;
  escalated : bool;  (** the fault was a transient that outlived the cap *)
  suffix_ops : int;  (** operations re-synthesised *)
  resynth_layers : int;  (** layers of the recovered suffix schedule *)
  surviving_devices : int;  (** pool offered to re-synthesis *)
  fresh_devices : int;  (** devices newly integrated by re-synthesis *)
  degraded_to_heuristic : bool;
      (** the ILP engine hit its deadline abort during this re-synthesis *)
  resynth_seconds : float;  (** recovery latency (wall clock) *)
}

type outcome = {
  trace : Runtime.trace;
      (** merged over all executed segments: event [op]s are original assay
          ids, boundary/wait layer indices are global execution steps, and
          [total_minutes] is the realised end-to-end makespan including
          transient backoff *)
  attempts : attempt list;  (** chronological; [[]] means no permanent fault *)
  recovered_schedules : Schedule.t list;
      (** the validated suffix schedules, chronological (over re-indexed
          suffix sub-assays) *)
  stats : Runtime.fault_stats;  (** summed over all segments *)
}

val execute :
  ?config:Synthesis.config ->
  ?allow_new_devices:bool ->
  ?max_recoveries:int ->
  ?max_transient_retries:int ->
  ?backoff_minutes:int ->
  plan:Faults.plan ->
  oracle:Runtime.oracle ->
  Schedule.t ->
  (outcome, error) result
(** Fault-tolerant execution of a synthesis result. [oracle] is keyed by
    {e original} assay operation ids (recovery re-maps suffix ids
    internally, so indeterminate durations are stable across recoveries).
    [config] (default {!Synthesis.default_config}) parameterises every
    re-synthesis. With [allow_new_devices = false] (the default) recovery
    only re-binds the surviving chip — no new device may be integrated
    mid-run — and is guaranteed to terminate because each permanent fault
    shrinks the device set; with [allow_new_devices = true] re-synthesis
    may also integrate fresh devices up to the configured cap, bounded by
    [max_recoveries] (default [16]). [max_transient_retries] and
    [backoff_minutes] are passed through to
    {!Runtime.execute_under_faults}.

    Under {!Faults.none} (or a rate-0 plan) the outcome's trace is exactly
    the fault-free {!Runtime.execute} trace. *)

val pp_error : Format.formatter -> error -> unit
