(** Top-level synthesis driver: layering → per-layer solving with device
    inheritance → progressive re-synthesis with transportation refinement
    (paper §3–§4).

    The first pass inherits devices forward only (layer [i] sees everything
    integrated for layers [< i]). Re-synthesis passes make the whole
    previous chip visible to every layer; a layer pays the integration cost
    again on first use of its own previous devices [D'_i], so it
    re-justifies them against devices other layers account for — the
    cost-transparent realisation of §3.2's [D \ D'_i] inheritance (see
    DESIGN.md). Every operation's transportation time is re-estimated from
    the previous pass's path usage (§4.1). A pass is accepted only when the
    weighted objective improves; iteration stops when the execution-time
    gain becomes marginal or the iteration cap is hit. *)

open Microfluidics

type config = {
  rule : Binding.rule;
  threshold : int;  (** max indeterminate ops per layer *)
  max_devices : int;  (** |D| *)
  engine : Layer_solver.engine;
  cost : Cost.t;
  weights : Schedule.weights;
  initial_transport : int;  (** the user constant t of §4.1 *)
  progression : Transport.progression;
  max_iterations : int;
  improvement_threshold : float;
      (** keep iterating while the relative execution-time gain exceeds
          this; default [0.02] *)
  refine_by_layout : bool;
      (** price paths by grid-layout Manhattan length instead of usage rank *)
}

val default_config : config
(** Component-oriented rule, threshold 10, 25 devices, heuristic engine,
    default costs/weights, t = 10 (the progression's slowest term, i.e. a
    conservative first estimate), progression 2..10 with 5 terms, at most 5
    iterations, 2% improvement threshold. *)

val conventional_config : config
(** Same, with the exact-signature binding rule — the paper's modified
    conventional baseline of §5. *)

type iteration = {
  iteration_index : int;
  schedule : Schedule.t;
  breakdown : Schedule.breakdown;
}

type result = {
  config : config;
  layering : Layering.t;
  iterations : iteration list;  (** chronological *)
  final : Schedule.t;
  final_breakdown : Schedule.breakdown;
  runtime_seconds : float;
}

val run : ?config:config -> Assay.t -> result
(** @raise List_scheduler.No_device when [max_devices] cannot accommodate
    the assay.
    @raise Invalid_argument on an invalid assay. *)

val run_with_pool :
  ?config:config -> ?first_fresh_id:int -> pool:Device.t list -> Assay.t -> result
(** Like {!run}, but every layer of the first pass may bind to the [pool]
    devices at no integration cost — they are already on the chip. Used by
    {!Recovery} to re-bind the surviving devices of a partially-executed
    assay; the pool counts against [max_devices], and freshly-created
    device ids start at [max (first_fresh_id, 1 + max pool id)] (default
    [first_fresh_id = 0]) so they never collide with pool ids nor with ids
    the caller has retired. [run] is [run_with_pool ~pool:[]].
    @raise List_scheduler.No_device when pool plus cap cannot accommodate
    the assay. *)

val improvement_history : result -> (int * float) list
(** Per iteration (>= 1): relative execution-time improvement over the
    previous one — the numbers of the paper's Table 3. *)
