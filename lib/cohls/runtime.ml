open Microfluidics

type oracle = int -> int

let deterministic_oracle ~extra assay =
  let ops = Assay.operations assay in
  fun op -> Operation.min_duration ops.(op) + extra

let seeded_oracle ~seed ~max_extra assay =
  let ops = Assay.operations assay in
  fun op ->
    (* splitmix-style hash of (seed, op): reproducible, no global state *)
    let h = ref (seed * 0x9E3779B1 + (op * 0x85EBCA77)) in
    h := !h lxor (!h lsr 13);
    h := !h * 0xC2B2AE35;
    h := !h lxor (!h lsr 16);
    let extra = if max_extra <= 0 then 0 else abs !h mod (max_extra + 1) in
    Operation.min_duration ops.(op) + extra

let retry_oracle ~seed ~success_probability ~attempt_minutes assay =
  if not (success_probability > 0.0 && success_probability <= 1.0) then
    invalid_arg "Runtime.retry_oracle: success_probability must be in (0, 1]";
  if attempt_minutes <= 0 then
    invalid_arg "Runtime.retry_oracle: attempt_minutes must be positive";
  let ops = Assay.operations assay in
  fun op ->
    (* one hash per (seed, op, attempt); attempt succeeds when the hashed
       uniform value falls below the success probability *)
    let uniform attempt =
      let h = ref (seed * 0x9E3779B1 + (op * 0x85EBCA77) + (attempt * 0xC2B2AE3D)) in
      h := !h lxor (!h lsr 13);
      h := !h * 0x27D4EB2F;
      h := !h lxor (!h lsr 15);
      float_of_int (abs !h mod 1_000_000) /. 1_000_000.0
    in
    let rec attempts k =
      if k >= 50 then 50
      else if uniform k < success_probability then k + 1
      else attempts (k + 1)
    in
    let n = attempts 0 in
    Telemetry.count "runtime.retry_oracle.calls";
    if n > 1 then begin
      (* the oracle had to intervene: at least one attempt failed and the
         operation was retried at the layer boundary *)
      Telemetry.count "runtime.retry_oracle.interventions";
      Telemetry.count ~by:(n - 1) "runtime.retry_oracle.retries"
    end;
    Stdlib.max (Operation.min_duration ops.(op)) (n * attempt_minutes)

type event = {
  time : int;
  op : int;
  device : int;
  kind : [ `Start | `Finish ];
}

type trace = {
  events : event list;
  layer_boundaries : (int * int) list;
  total_minutes : int;
  waits : (int * int) list;
}

let execute (s : Schedule.t) oracle =
  let ops = Assay.operations s.Schedule.assay in
  let exception Bad of string in
  try
    let clock = ref 0 in
    let events = ref [] in
    let boundaries = ref [] in
    let waits = ref [] in
    Array.iter
      (fun (l : Schedule.layer_schedule) ->
        let layer_start = !clock in
        let layer_end = ref (layer_start + l.Schedule.fixed_makespan) in
        List.iter
          (fun (e : Schedule.entry) ->
            let start = layer_start + e.Schedule.start in
            let duration =
              if e.Schedule.indeterminate then begin
                let d = oracle e.Schedule.op in
                if d < Operation.min_duration ops.(e.Schedule.op) then
                  raise
                    (Bad
                       (Printf.sprintf
                          "oracle returned %d < minimum %d for op %d" d
                          (Operation.min_duration ops.(e.Schedule.op))
                          e.Schedule.op));
                d
              end
              else e.Schedule.min_duration
            in
            let finish = start + duration + e.Schedule.transport in
            events :=
              { time = start; op = e.Schedule.op; device = e.Schedule.device; kind = `Start }
              :: { time = finish; op = e.Schedule.op; device = e.Schedule.device; kind = `Finish }
              :: !events;
            if finish > !layer_end then layer_end := finish)
          l.Schedule.entries;
        let fixed_end = layer_start + l.Schedule.fixed_makespan in
        let wait = !layer_end - fixed_end in
        if wait > 0 then Telemetry.count "runtime.layer_interventions";
        Telemetry.observe "runtime.layer_wait_minutes" (float_of_int wait);
        waits := (l.Schedule.layer_index, wait) :: !waits;
        boundaries := (l.Schedule.layer_index, !layer_end) :: !boundaries;
        clock := !layer_end)
      s.Schedule.layers;
    let events =
      List.sort
        (fun a b -> compare (a.time, a.op, a.kind) (b.time, b.op, b.kind))
        !events
    in
    Ok
      {
        events;
        layer_boundaries = List.rev !boundaries;
        total_minutes = !clock;
        waits = List.rev !waits;
      }
  with Bad msg -> Error msg
