open Microfluidics

type oracle = int -> int

let deterministic_oracle ~extra assay =
  let ops = Assay.operations assay in
  fun op -> Operation.min_duration ops.(op) + extra

let seeded_oracle ~seed ~max_extra assay =
  let ops = Assay.operations assay in
  fun op ->
    (* splitmix-style hash of (seed, op): reproducible, no global state *)
    let h = ref (seed * 0x9E3779B1 + (op * 0x85EBCA77)) in
    h := !h lxor (!h lsr 13);
    h := !h * 0xC2B2AE35;
    h := !h lxor (!h lsr 16);
    let extra = if max_extra <= 0 then 0 else abs !h mod (max_extra + 1) in
    Operation.min_duration ops.(op) + extra

let retry_oracle ?(max_attempts = 50) ~seed ~success_probability ~attempt_minutes assay =
  if not (success_probability > 0.0 && success_probability <= 1.0) then
    invalid_arg "Runtime.retry_oracle: success_probability must be in (0, 1]";
  if attempt_minutes <= 0 then
    invalid_arg "Runtime.retry_oracle: attempt_minutes must be positive";
  if max_attempts < 1 then
    invalid_arg "Runtime.retry_oracle: max_attempts must be at least 1";
  let ops = Assay.operations assay in
  fun op ->
    (* one hash per (seed, op, attempt); attempt succeeds when the hashed
       uniform value falls below the success probability *)
    let uniform attempt =
      let h = ref (seed * 0x9E3779B1 + (op * 0x85EBCA77) + (attempt * 0xC2B2AE3D)) in
      h := !h lxor (!h lsr 13);
      h := !h * 0x27D4EB2F;
      h := !h lxor (!h lsr 15);
      float_of_int (abs !h mod 1_000_000) /. 1_000_000.0
    in
    let rec attempts k =
      if k >= max_attempts then begin
        (* truncating the geometric tail biases the duration statistics
           downward, so leave a visible signal *)
        Telemetry.count "runtime.retry_oracle.capped";
        max_attempts
      end
      else if uniform k < success_probability then k + 1
      else attempts (k + 1)
    in
    let n = attempts 0 in
    Telemetry.count "runtime.retry_oracle.calls";
    if n > 1 then begin
      (* the oracle had to intervene: at least one attempt failed and the
         operation was retried at the layer boundary *)
      Telemetry.count "runtime.retry_oracle.interventions";
      Telemetry.count ~by:(n - 1) "runtime.retry_oracle.retries"
    end;
    Stdlib.max (Operation.min_duration ops.(op)) (n * attempt_minutes)

type event = {
  time : int;
  op : int;
  device : int;
  kind : [ `Start | `Finish ];
}

type trace = {
  events : event list;
  layer_boundaries : (int * int) list;
  total_minutes : int;
  waits : (int * int) list;
}

type fault_stats = {
  faults_injected : int;
  transient_retries : int;
  transients_escalated : int;
}

type fault_outcome =
  | Completed of { trace : trace; stats : fault_stats }
  | Faulted of {
      partial : trace;
      failed_layer : int;
      global_layer : int;
      device : int;
      escalated : bool;
      stats : fault_stats;
    }

let sort_events events =
  List.sort
    (fun a b -> compare (a.time, a.op, a.kind) (b.time, b.op, b.kind))
    events

(* Backoff before the k-th retry (1-based), in simulated minutes: doubling
   from [backoff_minutes], capped at 16x so a deep transient cannot dominate
   the makespan. *)
let backoff_delay ~backoff_minutes k =
  let d = backoff_minutes * (1 lsl (min 4 (k - 1))) in
  max 1 d

let execute_under_faults ?(start_clock = 0) ?(first_global_layer = 0)
    ?(max_transient_retries = 3) ?(backoff_minutes = 2) ~plan (s : Schedule.t)
    oracle =
  let ops = Assay.operations s.Schedule.assay in
  let exception Bad of string in
  let exception
    Dead of { failed_layer : int; global_layer : int; device : int; escalated : bool }
  in
  let injected = ref 0 in
  let retries = ref 0 in
  let escalations = ref 0 in
  let stats () =
    {
      faults_injected = !injected;
      transient_retries = !retries;
      transients_escalated = !escalations;
    }
  in
  let clock = ref start_clock in
  let events = ref [] in
  let boundaries = ref [] in
  let waits = ref [] in
  (* The boundary check the cyber-physical controller performs before
     committing a layer: probe every device the layer binds, pay retry
     backoff for transients that clear within the cap, abort on a permanent
     fault (or a transient that outlives the cap). Returns the minutes the
     boundary consumed. *)
  let boundary_check (l : Schedule.layer_schedule) =
    let global_layer = first_global_layer + l.Schedule.layer_index in
    let devices =
      List.sort_uniq compare
        (List.map (fun (e : Schedule.entry) -> e.Schedule.device) l.Schedule.entries)
    in
    let probes =
      List.filter_map
        (fun d ->
          match Faults.probe plan ~device:d ~layer:global_layer with
          | Some kind -> Some (d, kind)
          | None -> None)
        devices
    in
    List.iter (fun _ -> incr injected; Telemetry.count "faults.injected") probes;
    (* a permanent fault (or an escalating transient) aborts the layer
       before any retries are paid: the controller re-plans instead *)
    (match
       List.find_opt
         (fun (_, kind) ->
           match kind with
           | Faults.Permanent -> true
           | Faults.Transient { retries_needed } ->
             retries_needed > max_transient_retries)
         probes
     with
     | Some (device, kind) ->
       let escalated =
         match kind with
         | Faults.Permanent ->
           Telemetry.count "faults.permanent";
           false
         | Faults.Transient _ ->
           incr escalations;
           Telemetry.count "faults.transient.escalated";
           true
       in
       raise
         (Dead { failed_layer = l.Schedule.layer_index; global_layer; device; escalated })
     | None -> ());
    List.fold_left
      (fun delay (_, kind) ->
        match kind with
        | Faults.Permanent -> assert false
        | Faults.Transient { retries_needed } ->
          Telemetry.count "faults.transient";
          retries := !retries + retries_needed;
          Telemetry.observe "faults.retry_attempts" (float_of_int retries_needed);
          let d = ref 0 in
          for k = 1 to retries_needed do
            d := !d + backoff_delay ~backoff_minutes k
          done;
          Telemetry.observe "faults.retry_backoff_minutes" (float_of_int !d);
          delay + !d)
      0 probes
  in
  let run_layer (l : Schedule.layer_schedule) =
    let delay = boundary_check l in
    clock := !clock + delay;
    let layer_start = !clock in
    let layer_end = ref (layer_start + l.Schedule.fixed_makespan) in
    List.iter
      (fun (e : Schedule.entry) ->
        let start = layer_start + e.Schedule.start in
        let duration =
          if e.Schedule.indeterminate then begin
            let d = oracle e.Schedule.op in
            if d < Operation.min_duration ops.(e.Schedule.op) then
              raise
                (Bad
                   (Printf.sprintf "oracle returned %d < minimum %d for op %d" d
                      (Operation.min_duration ops.(e.Schedule.op))
                      e.Schedule.op));
            d
          end
          else e.Schedule.min_duration
        in
        let finish = start + duration + e.Schedule.transport in
        events :=
          { time = start; op = e.Schedule.op; device = e.Schedule.device; kind = `Start }
          :: { time = finish; op = e.Schedule.op; device = e.Schedule.device; kind = `Finish }
          :: !events;
        if finish > !layer_end then layer_end := finish)
      l.Schedule.entries;
    let fixed_end = layer_start + l.Schedule.fixed_makespan in
    let wait = !layer_end - fixed_end in
    if wait > 0 then Telemetry.count "runtime.layer_interventions";
    Telemetry.observe "runtime.layer_wait_minutes" (float_of_int wait);
    waits := (l.Schedule.layer_index, wait) :: !waits;
    boundaries := (l.Schedule.layer_index, !layer_end) :: !boundaries;
    clock := !layer_end
  in
  let current_trace () =
    {
      events = sort_events !events;
      layer_boundaries = List.rev !boundaries;
      total_minutes = !clock;
      waits = List.rev !waits;
    }
  in
  try
    Array.iter run_layer s.Schedule.layers;
    Ok (Completed { trace = current_trace (); stats = stats () })
  with
  | Bad msg -> Error msg
  | Dead { failed_layer; global_layer; device; escalated } ->
    Ok
      (Faulted
         {
           partial = current_trace ();
           failed_layer;
           global_layer;
           device;
           escalated;
           stats = stats ();
         })

let execute (s : Schedule.t) oracle =
  match execute_under_faults ~plan:Faults.none s oracle with
  | Ok (Completed { trace; _ }) -> Ok trace
  | Ok (Faulted _) -> assert false (* Faults.none never probes positive *)
  | Error msg -> Error msg
