type kind =
  | Permanent
  | Transient of { retries_needed : int }

type plan =
  | None_
  | Seeded of { seed : int; rate : float }

let none = None_

let seeded ~seed ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Faults.seeded: rate must be in [0, 1]";
  Seeded { seed; rate }

(* splitmix-style hash of (seed, device, layer); same family as
   Runtime.seeded_oracle so fault plans are reproducible with no global
   state *)
let hash ~seed ~device ~layer ~salt =
  let h = ref (seed * 0x9E3779B1 + (device * 0x85EBCA77) + (layer * 0xC2B2AE3D) + (salt * 0x27D4EB2F)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xC2B2AE35;
  h := !h lxor (!h lsr 16);
  abs !h

let uniform ~seed ~device ~layer ~salt =
  float_of_int (hash ~seed ~device ~layer ~salt mod 1_000_000) /. 1_000_000.0

let probe plan ~device ~layer =
  match plan with
  | None_ -> None
  | Seeded { seed; rate } ->
    if uniform ~seed ~device ~layer ~salt:0 < rate then begin
      (* a second independent draw decides the failure mode, a third the
         retry depth of a transient fault *)
      if uniform ~seed ~device ~layer ~salt:1 < 0.5 then Some Permanent
      else
        Some (Transient { retries_needed = 1 + (hash ~seed ~device ~layer ~salt:2 mod 4) })
    end
    else None

let rate = function None_ -> 0.0 | Seeded { rate; _ } -> rate

let describe = function
  | None_ -> "no fault injection"
  | Seeded { seed; rate } ->
    Printf.sprintf "seeded fault plan (seed %d, rate %.2f)" seed rate
