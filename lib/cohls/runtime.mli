(** Hybrid-schedule execution (the cyber-physical side of the paper).

    A hybrid schedule fixes everything except the real durations of
    indeterminate operations. This executor replays a synthesis result as a
    discrete-event simulation: layers run back to back; inside a layer every
    operation keeps its scheduled offset; the layer ends when its fixed part
    is over {e and} every indeterminate operation has really finished, the
    actual durations being drawn from a pluggable oracle (a lab instrument,
    a human observer — here a function). This is the substitute for the
    paper's cyber-physical integration, exercising exactly the
    layer-boundary decision points the layering algorithm creates.

    The fault-aware entry point {!execute_under_faults} additionally probes
    a {!Faults.plan} at every layer boundary: transient device faults are
    retried with capped exponential backoff in simulated minutes; a
    permanent fault (or a transient outliving the retry cap) stops the run
    with the fully-executed prefix, so {!Recovery} can re-synthesise the
    unexecuted suffix on the surviving devices. *)

type oracle = int -> int
(** [oracle op] is the {e actual} duration of indeterminate operation [op];
    it must be at least the operation's minimum duration. *)

val deterministic_oracle : extra:int -> Microfluidics.Assay.t -> oracle
(** Every indeterminate operation takes [min + extra]. *)

val seeded_oracle : seed:int -> max_extra:int -> Microfluidics.Assay.t -> oracle
(** Pseudo-random extra in [0 .. max_extra], reproducible for a seed
    (deterministic per (seed, op)). *)

val retry_oracle :
  ?max_attempts:int ->
  seed:int ->
  success_probability:float ->
  attempt_minutes:int ->
  Microfluidics.Assay.t ->
  oracle
(** The paper's motivating indeterminacy model: a single-cell capture
    succeeds with fixed probability per attempt (~53% in reference [11]),
    the outcome is checked optically and failed captures rerun, so the
    duration is [attempts * attempt_minutes] with geometrically distributed
    attempts (deterministic per (seed, op); at least the operation's
    minimum duration).

    Attempts are capped at [max_attempts] (default [50]). The cap truncates
    the geometric tail and therefore {e biases the duration statistics
    downward}; every capped draw bumps the
    [runtime.retry_oracle.capped] telemetry counter so the bias is visible
    in [cohls stats] rather than silent.
    @raise Invalid_argument unless [0 < success_probability <= 1],
    [attempt_minutes > 0] and [max_attempts >= 1]. *)

type event = {
  time : int;  (** absolute assay time, minutes *)
  op : int;
  device : int;
  kind : [ `Start | `Finish ];
}

type trace = {
  events : event list;  (** ascending time *)
  layer_boundaries : (int * int) list;  (** (layer index, absolute end time) *)
  total_minutes : int;
  waits : (int * int) list;
      (** per layer: extra minutes spent past the fixed part waiting for
          indeterminate operations (the realised I_k of the paper) *)
}

type fault_stats = {
  faults_injected : int;  (** positive probes seen, any kind *)
  transient_retries : int;  (** total retries paid for cleared transients *)
  transients_escalated : int;
      (** transients whose clearing depth exceeded the retry cap and were
          treated as permanent *)
}

type fault_outcome =
  | Completed of { trace : trace; stats : fault_stats }
      (** every layer executed (transient faults, if any, were retried
          through) *)
  | Faulted of {
      partial : trace;
          (** the fully-executed prefix: layers strictly before
              [failed_layer]; the failed layer ran nothing *)
      failed_layer : int;  (** index into the schedule's layer array *)
      global_layer : int;  (** [first_global_layer + failed_layer] *)
      device : int;  (** the dead device *)
      escalated : bool;  (** a transient that outlived the retry cap *)
      stats : fault_stats;
    }

val execute_under_faults :
  ?start_clock:int ->
  ?first_global_layer:int ->
  ?max_transient_retries:int ->
  ?backoff_minutes:int ->
  plan:Faults.plan ->
  Schedule.t ->
  oracle ->
  (fault_outcome, string) result
(** Execute under a fault plan. Before committing each layer the executor
    probes every device the layer binds at the {e global} layer index
    ([first_global_layer] + the layer's own index — recovery passes the
    offset so suffix schedules probe consistently). Cleared transients cost
    backoff minutes doubling from [backoff_minutes] (default [2]) per
    retry, capped at 16x; at most [max_transient_retries] (default [3])
    retries are paid per fault, beyond which the fault escalates to
    permanent. [start_clock] (default [0]) offsets all event times, so a
    recovered suffix continues the absolute timeline.

    [Error] only for a misbehaving oracle (returning less than an
    operation's minimum duration); injected faults never raise. *)

val execute : Schedule.t -> oracle -> (trace, string) result
(** [execute s oracle] is {!execute_under_faults} with {!Faults.none}:
    plain fault-free replay. Fails when the oracle returns less than an
    operation's minimum duration. *)
