open Microfluidics
module G = Flowgraph.Digraph
module M = Lp.Model
module E = Lp.Linexpr
module Q = Numeric.Rat

type slot = Fixed of Device.t | Free of { id : int }

type spec = {
  ops : Operation.t array;
  graph : Flowgraph.Digraph.t;
  layer : Layering.layer;
  layer_of_op : int array;
  bound_before : int -> int option;
  slots : slot array;
  rule : Binding.rule;
  transport : int -> int;
  cost : Cost.t;
  weights : Schedule.weights;
  existing_paths : (int * int) list;
}

(* The six legal (container, capacity) configurations (constraints (3)-(4)). *)
let legal_configs =
  let open Components in
  [
    (Container.Ring, Capacity.Large);
    (Container.Ring, Capacity.Medium);
    (Container.Ring, Capacity.Small);
    (Container.Chamber, Capacity.Medium);
    (Container.Chamber, Capacity.Small);
    (Container.Chamber, Capacity.Tiny);
  ]

type free_slot_vars = {
  used : M.var;
  config : ((Components.Container.t * Components.Capacity.t) * M.var) list;
  acc : (Components.Accessory.t * M.var) list;
}

type built = {
  spec : spec;
  lp : M.t;
  horizon : int;
  big_m : int;
  layer_ops : int array;
  start_var : (int, M.var) Hashtbl.t;
  bind_var : (int * int, M.var) Hashtbl.t; (* (op, slot index) *)
  free_vars : (int, free_slot_vars) Hashtbl.t; (* slot index *)
  makespan_var : M.var;
  path_var : (int * int, M.var) Hashtbl.t; (* global device id pair *)
  conflict_aux : (int * int, M.var list) Hashtbl.t; (* per pair q vars *)
}

let model b = b.lp
let horizon b = b.horizon

let slot_id = function Fixed d -> d.Device.id | Free { id } -> id

let dur_t spec v = Operation.min_duration spec.ops.(v) + spec.transport v

(* Can op [v] possibly run on slot [j]? Fixed slots decide by the binding
   rule; free slots accept anything (the model configures them to fit). *)
let slot_compatible spec v = function
  | Fixed d -> Binding.op_fits spec.rule spec.ops.(v) d
  | Free _ -> true

let path_key a b = (min a b, max a b)

let build ?(prune = true) spec =
  let lp = M.create ~name:(Printf.sprintf "layer%d" spec.layer.Layering.index) () in
  let layer_ops = Array.of_list spec.layer.Layering.ops in
  let n_ops = Array.length layer_ops in
  let horizon = Array.fold_left (fun acc v -> acc + dur_t spec v) 0 layer_ops in
  let max_dt = Array.fold_left (fun acc v -> max acc (dur_t spec v)) 0 layer_ops in
  let big_m = horizon + max_dt + 1 in
  let start_var = Hashtbl.create 16 in
  let bind_var = Hashtbl.create 64 in
  let free_vars = Hashtbl.create 8 in
  let path_var = Hashtbl.create 16 in
  let conflict_aux = Hashtbl.create 32 in
  let in_layer v = spec.layer_of_op.(v) = spec.layer.Layering.index in
  (* ASAP / ALAP start windows from the in-layer dependency DAG. [asap v] is
     the longest predecessor chain into v; [tail v] is the longest chain
     from v (v's own duration included). Both are implied by the dependency
     constraints together with s >= 0 and the makespan's upper bound, so
     installing them as variable bounds never changes the optimum — it only
     shrinks the search box and, downstream, every big-M derived from it. *)
  let asap_tbl = Hashtbl.create 16 and tail_tbl = Hashtbl.create 16 in
  let rec asap v =
    match Hashtbl.find_opt asap_tbl v with
    | Some x -> x
    | None ->
      let x =
        List.fold_left
          (fun acc u -> if in_layer u then max acc (asap u + dur_t spec u) else acc)
          0 (G.pred spec.graph v)
      in
      Hashtbl.replace asap_tbl v x;
      x
  in
  let rec tail v =
    match Hashtbl.find_opt tail_tbl v with
    | Some x -> x
    | None ->
      let x =
        dur_t spec v
        + List.fold_left
            (fun acc w -> if in_layer w then max acc (tail w) else acc)
            0 (G.succ spec.graph v)
      in
      Hashtbl.replace tail_tbl v x;
      x
  in
  (* Start windows: s_v ranges over [lb_start v, ub_start v]. The upper
     bound comes from s_v + tail v <= makespan <= horizon + max_dt. *)
  let lb_start v = if prune then asap v else 0 in
  let ub_start v = if prune then min horizon (horizon + max_dt - tail v) else horizon in
  (* start variables *)
  Array.iter
    (fun v ->
      let s =
        M.add_var lp
          ~lb:(Q.of_int (lb_start v))
          ~ub:(Q.of_int (ub_start v))
          ~kind:M.Integer (Printf.sprintf "s_%d" v)
      in
      Hashtbl.replace start_var v s)
    layer_ops;
  let makespan_var =
    M.add_var lp ~ub:(Q.of_int (horizon + max_dt)) ~kind:M.Integer "makespan"
  in
  (* free slot configuration variables *)
  Array.iteri
    (fun j slot ->
      match slot with
      | Fixed _ -> ()
      | Free _ ->
        let used = M.add_var lp ~kind:M.Binary (Printf.sprintf "used_%d" j) in
        let config =
          List.map
            (fun (cont, cap) ->
              let name =
                Printf.sprintf "y_%d_%s_%s" j
                  (Components.Container.to_string cont)
                  (Components.Capacity.to_string cap)
              in
              ((cont, cap), M.add_var lp ~kind:M.Binary name))
            legal_configs
        in
        let acc =
          List.map
            (fun a ->
              let name = Printf.sprintf "a_%d_%s" j (Components.Accessory.short_code a) in
              (a, M.add_var lp ~kind:M.Binary name))
            Components.Accessory.all
        in
        (* exactly one configuration iff used (reformulated (1)-(4)) *)
        M.add_constr lp
          ~name:(Printf.sprintf "cfg_%d" j)
          (E.sum (List.map (fun (_, v) -> E.var v) config))
          M.Eq (E.var used);
        (* accessories only on used slots *)
        List.iter
          (fun (a, av) ->
            M.add_constr lp
              ~name:(Printf.sprintf "acc_used_%d_%s" j (Components.Accessory.short_code a))
              (E.var av) M.Le (E.var used))
          acc;
        Hashtbl.replace free_vars j { used; config; acc })
    spec.slots;
  (* Free slots are interchangeable (same configuration choices, same
     costs, and all slot ids are fresh so path costs are permutation
     invariant), so any solution can be rearranged until the k-th used free
     slot hosts, as its earliest op in layer order, an op of layer position
     >= k. Hence op number i never needs a free slot beyond ordinal i, and
     the used flags can be forced monotone — both cut the symmetric copies
     of every solution without touching the optimal value. *)
  let pos_of = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace pos_of v i) layer_ops;
  let free_ord = Array.make (Array.length spec.slots) (-1) in
  let n_free = ref 0 in
  Array.iteri
    (fun j slot ->
      match slot with
      | Free _ ->
        free_ord.(j) <- !n_free;
        incr n_free
      | Fixed _ -> ())
    spec.slots;
  let binds_pruned = ref 0 in
  (* binding variables, one per compatible (op, slot) pair *)
  Array.iter
    (fun v ->
      let any = ref false in
      Array.iteri
        (fun j slot ->
          if slot_compatible spec v slot then
            if
              prune && free_ord.(j) >= 0
              && free_ord.(j) > Hashtbl.find pos_of v
            then incr binds_pruned
            else begin
              any := true;
              let b = M.add_var lp ~kind:M.Binary (Printf.sprintf "b_%d_%d" v j) in
              Hashtbl.replace bind_var (v, j) b
            end)
        spec.slots;
      if not !any then
        invalid_arg (Printf.sprintf "Ilp_model.build: op %d fits no slot" v))
    layer_ops;
  Telemetry.count ~by:!binds_pruned "ilp.model.binds_pruned";
  (* symmetry breaking: free slots are used in ordinal order *)
  if prune then begin
    let prev = ref None in
    Array.iteri
      (fun j slot ->
        match slot with
        | Fixed _ -> ()
        | Free _ ->
          let used = (Hashtbl.find free_vars j).used in
          (match !prev with
           | Some prev_used ->
             M.add_constr lp
               ~name:(Printf.sprintf "symm_%d" j)
               (E.var used) M.Le (E.var prev_used)
           | None -> ());
          prev := Some used)
      spec.slots
  end;
  let bvar v j = Hashtbl.find_opt bind_var (v, j) in
  (* (5): every operation bound exactly once *)
  Array.iter
    (fun v ->
      let terms =
        Array.to_list (Array.mapi (fun j _ -> bvar v j) spec.slots)
        |> List.filter_map Fun.id
        |> List.map E.var
      in
      M.add_constr lp ~name:(Printf.sprintf "bind1_%d" v) (E.sum terms) M.Eq (E.of_int 1))
    layer_ops;
  (* (6)-(8) on free slots: binding implies a fitting configuration *)
  let config_requirements v j fv b =
    let o = spec.ops.(v) in
    let need expr name =
      M.add_constr lp ~name (expr) M.Ge (E.var b)
    in
    (* used_j >= b *)
    M.add_constr lp
      ~name:(Printf.sprintf "use_%d_%d" v j)
      (E.var fv.used) M.Ge (E.var b);
    (match spec.rule with
     | Binding.Component_oriented ->
       (match o.Operation.container with
        | Some c ->
          let cols =
            List.filter_map
              (fun ((cont, _), var) ->
                if Components.Container.equal cont c then Some (E.var var) else None)
              fv.config
          in
          need (E.sum cols) (Printf.sprintf "cont_%d_%d" v j)
        | None -> ());
       (match o.Operation.capacity with
        | Some cap ->
          let cols =
            List.filter_map
              (fun ((_, cp), var) ->
                if Components.Capacity.equal cp cap then Some (E.var var) else None)
              fv.config
          in
          need (E.sum cols) (Printf.sprintf "cap_%d_%d" v j)
        | None -> ());
       Components.Accessory.Set.iter
         (fun a ->
           let av = List.assoc a fv.acc in
           need (E.var av)
             (Printf.sprintf "req_%d_%d_%s" v j (Components.Accessory.short_code a)))
         o.Operation.accessories
     | Binding.Exact_signature ->
       let rc = Binding.resolved_container o and rcap = Binding.resolved_capacity o in
       let yv = List.assoc (rc, rcap) fv.config in
       need (E.var yv) (Printf.sprintf "sig_%d_%d" v j);
       List.iter
         (fun (a, av) ->
           if Components.Accessory.Set.mem a o.Operation.accessories then
             need (E.var av)
               (Printf.sprintf "req_%d_%d_%s" v j (Components.Accessory.short_code a))
           else
             (* exact type match: no extra accessories on this device *)
             M.add_constr lp
               ~name:(Printf.sprintf "noextra_%d_%d_%s" v j
                        (Components.Accessory.short_code a))
               (E.add (E.var av) (E.var b))
               M.Le (E.of_int 1))
         fv.acc)
  in
  Array.iter
    (fun v ->
      Array.iteri
        (fun j slot ->
          match (slot, bvar v j) with
          | Free _, Some b ->
            config_requirements v j (Hashtbl.find free_vars j) b
          | (Fixed _ | Free _), _ -> ())
        spec.slots)
    layer_ops;
  let svar v = Hashtbl.find start_var v in
  (* (9): dependencies inside the layer *)
  Array.iter
    (fun u ->
      List.iter
        (fun v ->
          if in_layer v then
            M.add_constr lp
              ~name:(Printf.sprintf "dep_%d_%d" u v)
              (E.add (E.var (svar u)) (E.of_int (dur_t spec u)))
              M.Le (E.var (svar v)))
        (G.succ spec.graph u))
    layer_ops;
  (* conflict pairs: unordered, no dependency path between them *)
  let reach = Hashtbl.create 16 in
  Array.iter
    (fun v -> Hashtbl.replace reach v (Flowgraph.Dag.reachable_set spec.graph v))
    layer_ops;
  let independent a b =
    (not (Hashtbl.find reach a).(b)) && not (Hashtbl.find reach b).(a)
  in
  let shared_slots a b =
    Array.to_list
      (Array.mapi
         (fun j _ ->
           match (bvar a j, bvar b j) with Some ba, Some bb -> Some (ba, bb) | _ -> None)
         spec.slots)
    |> List.filter_map Fun.id
  in
  let is_indet v = Operation.is_indeterminate spec.ops.(v) in
  (* [x] provably finishes before [y] can start, from the start windows. *)
  let always_before x y = prune && ub_start x + dur_t spec x <= lb_start y in
  (* The tightest big-M that still deactivates [s_x + dur_x <= s_y + M q]:
     the worst violation is ub_x + dur_x - lb_y. Presolve would rediscover
     it, but emitting it directly keeps even the first relaxation tight. *)
  let pair_m x y =
    if prune then max 1 (ub_start x + dur_t spec x - lb_start y) else big_m
  in
  let pairs_skipped = ref 0 in
  let distinct_device ~tag a b shared =
    List.iteri
      (fun k (ba, bb) ->
        M.add_constr lp
          ~name:(Printf.sprintf "%s_%d_%d_%d" tag a b k)
          (E.add (E.var ba) (E.var bb))
          M.Le (E.of_int 1))
      shared
  in
  let add_pair a b =
    let shared = shared_slots a b in
    match (is_indet a, is_indet b) with
    | true, true ->
      (* indeterminate operations execute in parallel on distinct devices *)
      distinct_device ~tag:"ind2" a b shared
    | false, false ->
      (* When the windows already order the pair, the disjunction is
         resolved for free: the forced ordering satisfies (10)/(11) with
         q0 = 1, q1 = 0 (or symmetrically) for every point in the box, and
         (13) then never binds — so the pair needs no variables at all. *)
      if shared <> [] && not (always_before a b || always_before b a) then begin
        let q0 = M.add_var lp ~kind:M.Binary (Printf.sprintf "q0_%d_%d" a b) in
        let q1 = M.add_var lp ~kind:M.Binary (Printf.sprintf "q1_%d_%d" a b) in
        let q2 = M.add_var lp ~kind:M.Binary (Printf.sprintf "q2_%d_%d" a b) in
        Hashtbl.replace conflict_aux (a, b) [ q0; q1; q2 ];
        (* (10): q0 = 0 -> a starts after b finishes *)
        M.add_constr lp
          ~name:(Printf.sprintf "c10_%d_%d" a b)
          (E.add (E.var (svar a)) (E.iterm (pair_m b a) q0))
          M.Ge
          (E.add (E.var (svar b)) (E.of_int (dur_t spec b)));
        (* (11): q1 = 0 -> a finishes before b starts *)
        M.add_constr lp
          ~name:(Printf.sprintf "c11_%d_%d" a b)
          (E.add (E.var (svar a)) (E.of_int (dur_t spec a)))
          M.Le
          (E.add (E.var (svar b)) (E.iterm (pair_m a b) q1));
        (* (12): q2 = 0 -> never on the same device *)
        List.iteri
          (fun k (ba, bb) ->
            M.add_constr lp
              ~name:(Printf.sprintf "c12_%d_%d_%d" a b k)
              (E.sub (E.add (E.var ba) (E.var bb)) (E.var q2))
              M.Le (E.of_int 1))
          shared;
        (* (13) *)
        M.add_constr lp
          ~name:(Printf.sprintf "c13_%d_%d" a b)
          (E.sum [ E.var q0; E.var q1; E.var q2 ])
          M.Le (E.of_int 2)
      end
      else if shared <> [] then incr pairs_skipped
    | true, false | false, true ->
      (* one indeterminate: the determinate op must fully precede it when
         they share a device (an indeterminate op is last on its device) *)
      let det, ind = if is_indet a then (b, a) else (a, b) in
      if shared <> [] then
        if always_before det ind then
          (* the required ordering holds everywhere: nothing to encode *)
          incr pairs_skipped
        else if prune && lb_start det + dur_t spec det > ub_start ind then
          (* det can never precede ind, so sharing a device is impossible *)
          distinct_device ~tag:"ind1" det ind (shared_slots det ind)
        else begin
          let q1 = M.add_var lp ~kind:M.Binary (Printf.sprintf "qi1_%d_%d" det ind) in
          let q2 = M.add_var lp ~kind:M.Binary (Printf.sprintf "qi2_%d_%d" det ind) in
          Hashtbl.replace conflict_aux (a, b) [ q1; q2 ];
          M.add_constr lp
            ~name:(Printf.sprintf "ci1_%d_%d" det ind)
            (E.add (E.var (svar det)) (E.of_int (dur_t spec det)))
            M.Le
            (E.add (E.var (svar ind)) (E.iterm (pair_m det ind) q1));
          let shared_di = shared_slots det ind in
          List.iteri
            (fun k (bd, bi) ->
              M.add_constr lp
                ~name:(Printf.sprintf "ci2_%d_%d_%d" det ind k)
                (E.sub (E.add (E.var bd) (E.var bi)) (E.var q2))
                M.Le (E.of_int 1))
            shared_di;
          M.add_constr lp
            ~name:(Printf.sprintf "ci3_%d_%d" det ind)
            (E.add (E.var q1) (E.var q2))
            M.Le (E.of_int 1)
        end
  in
  Array.iteri
    (fun i a ->
      for k = i + 1 to n_ops - 1 do
        let b = layer_ops.(k) in
        if independent a b then add_pair a b
      done)
    layer_ops;
  (* (14): everything starts before each indeterminate op's minimum end *)
  List.iter
    (fun i ->
      Array.iter
        (fun a ->
          if a <> i then
            M.add_constr lp
              ~name:(Printf.sprintf "c14_%d_%d" i a)
              (E.var (svar a))
              M.Le
              (E.add (E.var (svar i)) (E.of_int (Operation.min_duration spec.ops.(i)))))
        layer_ops)
    spec.layer.Layering.indeterminate;
  (* (15): makespan *)
  Array.iter
    (fun v ->
      M.add_constr lp
        ~name:(Printf.sprintf "c15_%d" v)
        (E.add (E.var (svar v)) (E.of_int (dur_t spec v)))
        M.Le (E.var makespan_var))
    layer_ops;
  if prune then begin
    (* Machine-load cuts: any two ops that share a slot are serialized by
       (10)-(13) (and the indeterminate rules), so the summed duration
       bound to one slot fits inside the makespan. Implied for integer
       points but a strong strengthening of the LP relaxation, which could
       otherwise overlap fractionally-ordered ops for free. *)
    Array.iteri
      (fun j _slot ->
        let terms =
          Array.to_list layer_ops
          |> List.filter_map (fun v ->
                 Option.map (fun bv -> E.iterm (dur_t spec v) bv) (bvar v j))
        in
        match terms with
        | [] | [ _ ] -> ()
        | _ ->
          M.add_constr lp
            ~name:(Printf.sprintf "load_%d" j)
            (E.sum terms) M.Le (E.var makespan_var))
      spec.slots;
    (* critical-path lower bound on the makespan *)
    let cp =
      Array.fold_left (fun acc v -> max acc (asap v + tail v)) 0 layer_ops
    in
    M.add_constr lp ~name:"critical_path" (E.var makespan_var) M.Ge (E.of_int cp)
  end;
  (* (16)-(20): area and processing cost of newly configured slots *)
  let area_expr = ref E.zero and proc_expr = ref E.zero in
  Hashtbl.iter
    (fun _j fv ->
      List.iter
        (fun ((cont, cap), yv) ->
          area_expr := E.add !area_expr (E.iterm (Cost.area spec.cost cont cap) yv);
          proc_expr :=
            E.add !proc_expr (E.iterm (Cost.container_processing spec.cost cont cap) yv))
        fv.config;
      List.iter
        (fun (a, av) ->
          proc_expr := E.add !proc_expr (E.iterm (Cost.accessory_processing spec.cost a) av))
        fv.acc)
    free_vars;
  (* (21): transportation paths between distinct devices *)
  let get_path_var ida idb =
    let k = path_key ida idb in
    if List.mem k spec.existing_paths then None
    else begin
      match Hashtbl.find_opt path_var k with
      | Some p -> Some p
      | None ->
        let p = M.add_var lp ~kind:M.Binary (Printf.sprintf "p_%d_%d" ida idb) in
        Hashtbl.replace path_var k p;
        Some p
    end
  in
  let add_path_constraints u v =
    (* u -> v reagent transfer; u in an earlier layer or in this one *)
    if in_layer u then
      Array.iteri
        (fun j slot_j ->
          match bvar u j with
          | None -> ()
          | Some bu ->
            Array.iteri
              (fun j' slot_j' ->
                if j <> j' then begin
                  match bvar v j' with
                  | None -> ()
                  | Some bv -> begin
                    match get_path_var (slot_id slot_j) (slot_id slot_j') with
                    | None -> ()
                    | Some p ->
                      M.add_constr lp
                        ~name:(Printf.sprintf "c21_%d_%d_%d_%d" u v j j')
                        (E.sub (E.add (E.var bu) (E.var bv)) (E.var p))
                        M.Le (E.of_int 1)
                  end
                end)
              spec.slots)
        spec.slots
    else begin
      match spec.bound_before u with
      | None -> ()
      | Some du ->
        Array.iteri
          (fun j' slot_j' ->
            if slot_id slot_j' <> du then begin
              match bvar v j' with
              | None -> ()
              | Some bv -> begin
                match get_path_var du (slot_id slot_j') with
                | None -> ()
                | Some p ->
                  M.add_constr lp
                    ~name:(Printf.sprintf "c21x_%d_%d_%d" u v j')
                    (E.var bv) M.Le (E.var p)
              end
            end)
          spec.slots
    end
  in
  Array.iter
    (fun v ->
      List.iter (fun u -> if in_layer u || spec.layer_of_op.(u) < spec.layer.Layering.index then add_path_constraints u v) (G.pred spec.graph v))
    layer_ops;
  (* objective *)
  let path_sum =
    Hashtbl.fold (fun _ p acc -> E.add acc (E.var p)) path_var E.zero
  in
  let w = spec.weights in
  let obj =
    E.sum
      [
        E.scale_int w.Schedule.w_time (E.var makespan_var);
        E.scale_int w.Schedule.w_area !area_expr;
        E.scale_int w.Schedule.w_processing !proc_expr;
        E.scale_int w.Schedule.w_paths path_sum;
      ]
  in
  M.set_objective lp `Minimize obj;
  Telemetry.count ~by:!pairs_skipped "ilp.model.pairs_skipped";
  Telemetry.count ~by:(M.var_count lp) "ilp.model.vars";
  Telemetry.count ~by:(M.constr_count lp) "ilp.model.constrs";
  {
    spec;
    lp;
    horizon;
    big_m;
    layer_ops;
    start_var;
    bind_var;
    free_vars;
    makespan_var;
    path_var;
    conflict_aux;
  }

(* ---------- warm start ---------- *)

let warm_start b entries =
  let spec = b.spec in
  let values = Array.make (M.var_count b.lp) 0.0 in
  let set var x = values.(var) <- x in
  (* map devices to slots: fixed slots by id; heuristic-created devices are
     matched to free slots by order of first appearance *)
  let slot_of_device = Hashtbl.create 8 in
  Array.iteri
    (fun j slot ->
      match slot with
      | Fixed d -> Hashtbl.replace slot_of_device d.Device.id j
      | Free _ -> ())
    spec.slots;
  let free_slots =
    Array.to_list (Array.mapi (fun j s -> (j, s)) spec.slots)
    |> List.filter_map (fun (j, s) -> match s with Free _ -> Some j | Fixed _ -> None)
  in
  let device_config = Hashtbl.create 8 in
  (* created devices carry their configuration via Binding.minimal_device;
     recompute it from the op that caused creation is unreliable, so infer
     the config from the ops bound to the device *)
  let ok = ref true in
  (* Heuristic-created devices take free slots ordered by the layer
     position of their earliest op: the pruned bind grid and the used_j
     monotonicity rows of {!build} assume exactly that canonical
     arrangement of the interchangeable free slots. *)
  let pos_of = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace pos_of v i) b.layer_ops;
  let created_min_pos = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem slot_of_device e.Schedule.device) then begin
        let p =
          match Hashtbl.find_opt pos_of e.Schedule.op with
          | Some p -> p
          | None -> max_int
        in
        let cur =
          match Hashtbl.find_opt created_min_pos e.Schedule.device with
          | Some c -> c
          | None -> max_int
        in
        Hashtbl.replace created_min_pos e.Schedule.device (min cur p)
      end)
    entries;
  let rec assign devices slots =
    match (devices, slots) with
    | [], _ -> ()
    | _ :: _, [] -> ok := false
    | (_, d) :: devices', j :: slots' ->
      Hashtbl.replace slot_of_device d j;
      assign devices' slots'
  in
  assign
    (List.sort compare
       (Hashtbl.fold (fun d p acc -> (p, d) :: acc) created_min_pos []))
    free_slots;
  let slot_of e =
    match Hashtbl.find_opt slot_of_device e.Schedule.device with
    | Some j -> j
    | None ->
      ok := false;
      -1
  in
  List.iter
    (fun e ->
      let v = e.Schedule.op in
      let j = slot_of e in
      if j >= 0 then begin
        (match Hashtbl.find_opt b.start_var v with
         | Some s -> set s (float_of_int e.Schedule.start)
         | None -> ok := false);
        (match Hashtbl.find_opt b.bind_var (v, j) with
         | Some bv -> set bv 1.0
         | None -> ok := false);
        (* accumulate requirements to configure free slots *)
        match spec.slots.(j) with
        | Free _ ->
          let o = spec.ops.(v) in
          let prev =
            match Hashtbl.find_opt device_config j with
            | Some (c, cap, accs) -> (c, cap, accs)
            | None ->
              (Binding.resolved_container o, Binding.resolved_capacity o,
               Components.Accessory.Set.empty)
          in
          let c, cap, accs = prev in
          Hashtbl.replace device_config j
            (c, cap, Components.Accessory.Set.union accs o.Operation.accessories)
        | Fixed _ -> ()
      end)
    entries;
  if not !ok then None
  else begin
    (* free slot configurations *)
    Hashtbl.iter
      (fun j (c, cap, accs) ->
        match Hashtbl.find_opt b.free_vars j with
        | None -> ()
        | Some fv ->
          set fv.used 1.0;
          (match List.assoc_opt (c, cap) fv.config with
           | Some yv -> set yv 1.0
           | None -> ok := false);
          Components.Accessory.Set.iter
            (fun a -> match List.assoc_opt a fv.acc with
               | Some av -> set av 1.0
               | None -> ok := false)
            accs)
      device_config;
    (* conflict auxiliaries *)
    let entry_of = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace entry_of e.Schedule.op e) entries;
    let dt e = e.Schedule.min_duration + e.Schedule.transport in
    Hashtbl.iter
      (fun (a, bo) qs ->
        match (Hashtbl.find_opt entry_of a, Hashtbl.find_opt entry_of bo) with
        | Some ea, Some eb -> begin
          let same = ea.Schedule.device = eb.Schedule.device in
          match qs with
          | [ q0; q1; q2 ] ->
            set q0 (if ea.Schedule.start >= eb.Schedule.start + dt eb then 0.0 else 1.0);
            set q1 (if ea.Schedule.start + dt ea <= eb.Schedule.start then 0.0 else 1.0);
            set q2 (if same then 1.0 else 0.0)
          | [ q1; q2 ] ->
            let det, ind =
              if Operation.is_indeterminate spec.ops.(a) then (eb, ea) else (ea, eb)
            in
            set q1 (if det.Schedule.start + dt det <= ind.Schedule.start then 0.0 else 1.0);
            set q2 (if same then 1.0 else 0.0)
          | _ -> ok := false
        end
        | _, _ -> ok := false)
      b.conflict_aux;
    (* paths *)
    let note u v =
      match (Hashtbl.find_opt entry_of u, Hashtbl.find_opt entry_of v) with
      | Some eu, Some ev when eu.Schedule.device <> ev.Schedule.device ->
        (match Hashtbl.find_opt b.path_var (path_key eu.Schedule.device ev.Schedule.device) with
         | Some p -> set p 1.0
         | None -> ())
      | Some _, Some _ | None, _ | _, None -> begin
        (* cross-layer transfer into this layer *)
        match (spec.bound_before u, Hashtbl.find_opt entry_of v) with
        | Some du, Some ev when du <> ev.Schedule.device ->
          (match Hashtbl.find_opt b.path_var (path_key du ev.Schedule.device) with
           | Some p -> set p 1.0
           | None -> ())
        | _, _ -> ()
      end
    in
    G.iter_edges note spec.graph;
    (* makespan *)
    let mk =
      List.fold_left (fun acc e -> max acc (e.Schedule.start + dt e)) 0 entries
    in
    set b.makespan_var (float_of_int mk);
    if !ok then Some values else None
  end

(* ---------- extraction ---------- *)

let extract b ~values =
  let spec = b.spec in
  let truthy var = values.(var) > 0.5 in
  let intval var = int_of_float (Float.round values.(var)) in
  (* devices for used free slots *)
  let devices = ref [] in
  let device_of_slot = Array.make (Array.length spec.slots) None in
  Array.iteri
    (fun j slot ->
      match slot with
      | Fixed d -> device_of_slot.(j) <- Some d
      | Free { id } -> begin
        match Hashtbl.find_opt b.free_vars j with
        | None -> ()
        | Some fv ->
          if truthy fv.used then begin
            let cfg =
              List.find_opt (fun (_, yv) -> truthy yv) fv.config
            in
            match cfg with
            | None -> failwith "Ilp_model.extract: used slot without configuration"
            | Some ((cont, cap), _) ->
              let accs =
                List.filter_map (fun (a, av) -> if truthy av then Some a else None) fv.acc
              in
              let d = Device.make ~id ~container:cont ~capacity:cap ~accessories:accs in
              device_of_slot.(j) <- Some d;
              devices := d :: !devices
          end
      end)
    spec.slots;
  let entries =
    Array.to_list b.layer_ops
    |> List.map (fun v ->
           let j =
             let found = ref (-1) in
             Array.iteri
               (fun j _ ->
                 match Hashtbl.find_opt b.bind_var (v, j) with
                 | Some bv when truthy bv -> found := j
                 | Some _ | None -> ())
               spec.slots;
             if !found < 0 then failwith "Ilp_model.extract: unbound operation";
             !found
           in
           let device =
             match device_of_slot.(j) with
             | Some d -> d.Device.id
             | None -> failwith "Ilp_model.extract: op bound to unused slot"
           in
           {
             Schedule.op = v;
             device;
             start = intval (Hashtbl.find b.start_var v);
             min_duration = Operation.min_duration spec.ops.(v);
             transport = spec.transport v;
             indeterminate = Operation.is_indeterminate spec.ops.(v);
           })
    |> List.sort (fun a bb ->
           compare (a.Schedule.start, a.Schedule.op) (bb.Schedule.start, bb.Schedule.op))
  in
  (entries, List.rev !devices)
