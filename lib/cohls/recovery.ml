open Microfluidics

type reason =
  | No_feasible_binding of { op : int }
  | Invalid_schedule of string
  | Execution_error of string
  | Too_many_faults of { attempts : int }

type error = {
  at_global_layer : int;
  dead_devices : int list;
  failure : reason;
}

type attempt = {
  at_global_layer : int;
  dead_device : int;
  escalated : bool;
  suffix_ops : int;
  resynth_layers : int;
  surviving_devices : int;
  fresh_devices : int;
  degraded_to_heuristic : bool;
  resynth_seconds : float;
}

type outcome = {
  trace : Runtime.trace;
  attempts : attempt list;
  recovered_schedules : Schedule.t list;
  stats : Runtime.fault_stats;
}

let add_stats (a : Runtime.fault_stats) (b : Runtime.fault_stats) =
  {
    Runtime.faults_injected = a.Runtime.faults_injected + b.Runtime.faults_injected;
    transient_retries = a.Runtime.transient_retries + b.Runtime.transient_retries;
    transients_escalated =
      a.Runtime.transients_escalated + b.Runtime.transients_escalated;
  }

let zero_stats =
  { Runtime.faults_injected = 0; transient_retries = 0; transients_escalated = 0 }

(* Rewrite a segment trace into global terms: operation ids back to the
   original assay's, layer indices to global execution steps. *)
let remap_segment ~to_orig ~global0 (t : Runtime.trace) =
  {
    Runtime.events =
      List.map
        (fun (e : Runtime.event) -> { e with Runtime.op = to_orig e.Runtime.op })
        t.Runtime.events;
    layer_boundaries = List.map (fun (l, at) -> (global0 + l, at)) t.Runtime.layer_boundaries;
    total_minutes = t.Runtime.total_minutes;
    waits = List.map (fun (l, w) -> (global0 + l, w)) t.Runtime.waits;
  }

let merge_segments segments =
  (* chronological segment list; clocks are absolute, so concatenation plus
     one global sort reproduces a single-run trace *)
  let events = List.concat_map (fun (t : Runtime.trace) -> t.Runtime.events) segments in
  let events =
    List.sort
      (fun (a : Runtime.event) (b : Runtime.event) ->
        compare (a.Runtime.time, a.Runtime.op, a.Runtime.kind) (b.Runtime.time, b.Runtime.op, b.Runtime.kind))
      events
  in
  {
    Runtime.events;
    layer_boundaries =
      List.concat_map (fun (t : Runtime.trace) -> t.Runtime.layer_boundaries) segments;
    total_minutes =
      (match List.rev segments with
       | last :: _ -> last.Runtime.total_minutes
       | [] -> 0);
    waits = List.concat_map (fun (t : Runtime.trace) -> t.Runtime.waits) segments;
  }

(* The unexecuted suffix as a fresh dense assay. Dependencies on executed
   operations are dropped — their reagents were already delivered — while
   intra-suffix dependencies survive. Returns the sub-assay and the
   sub-id -> parent-id mapping. *)
let suffix_assay assay keep =
  let sub = Assay.create ~name:(Assay.name assay ^ "+recovery") in
  let orig_of_sub = Array.of_list keep in
  let sub_of_orig = Hashtbl.create (Array.length orig_of_sub) in
  Array.iteri (fun i o -> Hashtbl.replace sub_of_orig o i) orig_of_sub;
  let ops = Assay.operations assay in
  List.iter
    (fun o ->
      let (op : Operation.t) = ops.(o) in
      ignore
        (Assay.add_operation sub ?container:op.Operation.container
           ?capacity:op.Operation.capacity
           ~accessories:(Components.Accessory.Set.elements op.Operation.accessories)
           ~duration:op.Operation.duration op.Operation.name))
    keep;
  List.iter
    (fun o ->
      let child = Hashtbl.find sub_of_orig o in
      List.iter
        (fun p ->
          match Hashtbl.find_opt sub_of_orig p with
          | Some parent -> Assay.add_dependency sub ~parent ~child
          | None -> ())
        (Assay.parents assay o))
    keep;
  (sub, orig_of_sub)

let execute ?(config = Synthesis.default_config) ?(allow_new_devices = false)
    ?(max_recoveries = 16) ?max_transient_retries ?backoff_minutes ~plan ~oracle
    (schedule : Schedule.t) =
  let fail ~at ~dead failure =
    Telemetry.count "recovery.failed";
    Error { at_global_layer = at; dead_devices = List.rev dead; failure }
  in
  let rec loop ~(current : Schedule.t) ~to_orig ~clock ~global0 ~dead ~segments
      ~attempts ~recovered ~stats ~fresh_floor =
    let wrapped op = oracle (to_orig op) in
    match
      Runtime.execute_under_faults ~start_clock:clock ~first_global_layer:global0
        ?max_transient_retries ?backoff_minutes ~plan current wrapped
    with
    | Error msg -> fail ~at:global0 ~dead (Execution_error msg)
    | Ok (Runtime.Completed { trace; stats = seg_stats }) ->
      let segments = remap_segment ~to_orig ~global0 trace :: segments in
      Ok
        {
          trace = merge_segments (List.rev segments);
          attempts = List.rev attempts;
          recovered_schedules = List.rev recovered;
          stats = add_stats stats seg_stats;
        }
    | Ok
        (Runtime.Faulted
           { partial; failed_layer; global_layer; device; escalated; stats = seg_stats })
      ->
      let stats = add_stats stats seg_stats in
      let segments = remap_segment ~to_orig ~global0 partial :: segments in
      let dead = device :: dead in
      if List.length attempts >= max_recoveries then
        fail ~at:global_layer ~dead (Too_many_faults { attempts = List.length attempts })
      else begin
        Telemetry.count "recovery.invocations";
        (* everything from the faulted layer on is unexecuted *)
        let keep =
          let acc = ref [] in
          Array.iter
            (fun (l : Schedule.layer_schedule) ->
              if l.Schedule.layer_index >= failed_layer then
                List.iter
                  (fun (e : Schedule.entry) -> acc := e.Schedule.op :: !acc)
                  l.Schedule.entries)
            current.Schedule.layers;
          List.sort_uniq compare !acc
        in
        let sub, orig_of_sub = suffix_assay current.Schedule.assay keep in
        let to_orig' i = to_orig orig_of_sub.(i) in
        let survivors =
          List.filter
            (fun (d : Device.t) -> not (List.mem d.Device.id dead))
            (Chip.devices current.Schedule.chip)
        in
        let cfg =
          if allow_new_devices then config
          else { config with Synthesis.max_devices = List.length survivors }
        in
        (* fresh devices must not reuse a dead device's id: the fault plan
           is keyed by id, so a reused id would inherit the dead device's
           fault destiny (and look excluded from future survivor sets) *)
        let fresh_floor =
          List.fold_left
            (fun acc (d : Device.t) -> max acc (d.Device.id + 1))
            (List.fold_left (fun acc id -> max acc (id + 1)) fresh_floor dead)
            (Chip.devices current.Schedule.chip)
        in
        let aborts_before = Telemetry.counter_value "lp.simplex.deadline_aborts" in
        match
          Telemetry.span "recovery.resynthesis"
            ~attrs:[ ("global_layer", string_of_int global_layer) ] (fun () ->
              Synthesis.run_with_pool ~config:cfg ~first_fresh_id:fresh_floor
                ~pool:survivors sub)
        with
        | exception List_scheduler.No_device op ->
          fail ~at:global_layer ~dead (No_feasible_binding { op = to_orig' op })
        | r -> begin
          match Schedule.validate r.Synthesis.final with
          | Error e -> fail ~at:global_layer ~dead (Invalid_schedule e)
          | Ok () ->
            let degraded =
              (match config.Synthesis.engine with
               | Layer_solver.Ilp _ ->
                 Telemetry.counter_value "lp.simplex.deadline_aborts" > aborts_before
               | Layer_solver.Heuristic -> false)
            in
            if degraded then Telemetry.count "recovery.degraded_to_heuristic";
            let resynth_layers = Array.length r.Synthesis.final.Schedule.layers in
            Telemetry.count ~by:resynth_layers "recovery.resynth_layers";
            Telemetry.observe "recovery.resynth_seconds" r.Synthesis.runtime_seconds;
            let fresh_devices =
              List.length
                (List.filter
                   (fun (d : Device.t) ->
                     not
                       (List.exists
                          (fun (s : Device.t) -> s.Device.id = d.Device.id)
                          survivors))
                   (Chip.devices r.Synthesis.final.Schedule.chip))
            in
            let attempt =
              {
                at_global_layer = global_layer;
                dead_device = device;
                escalated;
                suffix_ops = List.length keep;
                resynth_layers;
                surviving_devices = List.length survivors;
                fresh_devices;
                degraded_to_heuristic = degraded;
                resynth_seconds = r.Synthesis.runtime_seconds;
              }
            in
            loop ~current:r.Synthesis.final ~to_orig:to_orig'
              ~clock:partial.Runtime.total_minutes ~global0:global_layer ~dead
              ~segments ~attempts:(attempt :: attempts)
              ~recovered:(r.Synthesis.final :: recovered) ~stats ~fresh_floor
        end
      end
  in
  loop ~current:schedule
    ~to_orig:(fun i -> i)
    ~clock:0 ~global0:0 ~dead:[] ~segments:[] ~attempts:[] ~recovered:[]
    ~stats:zero_stats ~fresh_floor:0

let pp_reason ppf = function
  | No_feasible_binding { op } ->
    Format.fprintf ppf "no surviving device can execute operation %d" op
  | Invalid_schedule e -> Format.fprintf ppf "re-synthesised schedule invalid: %s" e
  | Execution_error e -> Format.fprintf ppf "execution error: %s" e
  | Too_many_faults { attempts } ->
    Format.fprintf ppf "gave up after %d recoveries" attempts

let pp_error ppf (e : error) =
  Format.fprintf ppf "Recovery_failed at layer boundary %d (dead devices: %s): %a"
    e.at_global_layer
    (String.concat ", " (List.map string_of_int e.dead_devices))
    pp_reason e.failure
