open Microfluidics

type config = {
  rule : Binding.rule;
  threshold : int;
  max_devices : int;
  engine : Layer_solver.engine;
  cost : Cost.t;
  weights : Schedule.weights;
  initial_transport : int;
  progression : Transport.progression;
  max_iterations : int;
  improvement_threshold : float;
  refine_by_layout : bool;
}

let default_config =
  {
    rule = Binding.Component_oriented;
    threshold = 10;
    max_devices = 25;
    engine = Layer_solver.Heuristic;
    cost = Cost.default;
    weights = Schedule.default_weights;
    initial_transport = 10;
    progression = Transport.default_progression;
    max_iterations = 5;
    improvement_threshold = 0.02;
    refine_by_layout = false;
  }

let conventional_config = { default_config with rule = Binding.Exact_signature }

type iteration = {
  iteration_index : int;
  schedule : Schedule.t;
  breakdown : Schedule.breakdown;
}

type result = {
  config : config;
  layering : Layering.t;
  iterations : iteration list;
  final : Schedule.t;
  final_breakdown : Schedule.breakdown;
  runtime_seconds : float;
}

(* One full pass over all layers. [pool] are the devices every layer may
   bind to from the start (the previous pass's chip in re-synthesis, with
   stable identities); [penalty i id] is the weighted first-use surcharge a
   layer pays for devices it must re-justify (its own previous D'_i). *)
let run_pass cfg assay layering transport ~pool ~penalty ~fresh_id =
  let ops = Assay.operations assay in
  let graph = Assay.dependency_graph assay in
  let layer_of_op = layering.Layering.layer_of_op in
  let n_layers = Array.length layering.Layering.layers in
  let device_of_op = Hashtbl.create 32 in
  let devices_so_far = ref [] in (* created in this pass, chronological *)
  let created_by_layer = Array.make n_layers [] in
  let layer_schedules = ref [] in
  let existing_paths = ref [] in
  let note_paths entries =
    (* record the device pairs used by transfers seen so far, so later
       layers reuse routed channels for free *)
    let dev op = Hashtbl.find_opt device_of_op op in
    List.iter
      (fun (e : Schedule.entry) ->
        List.iter
          (fun p ->
            match dev p with
            | Some dp when dp <> e.Schedule.device ->
              let k = (min dp e.Schedule.device, max dp e.Schedule.device) in
              if not (List.mem k !existing_paths) then
                existing_paths := k :: !existing_paths
            | Some _ | None -> ())
          (Assay.parents assay e.Schedule.op))
      entries
  in
  (* |D| is one shared budget for the whole pass: the pool plus every
     device created by any layer counts against it, so the union of
     per-layer device sets can never exceed the cap. *)
  let referenced = Hashtbl.create 32 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace referenced d.Device.id ()) pool;
  let used_this_pass = Hashtbl.create 32 in
  for i = 0 to n_layers - 1 do
    let layer = layering.Layering.layers.(i) in
    let created_earlier = List.concat (List.rev !devices_so_far) in
    let available =
      (* dedupe by id, this pass's creations first *)
      let seen = Hashtbl.create 16 in
      List.filter
        (fun (d : Device.t) ->
          if Hashtbl.mem seen d.Device.id then false
          else begin
            Hashtbl.replace seen d.Device.id ();
            true
          end)
        (created_earlier @ pool)
    in
    let new_budget = max 0 (cfg.max_devices - Hashtbl.length referenced) in
    let device_penalty id =
      if Hashtbl.mem used_this_pass id then 0 else penalty i id
    in
    let input =
      {
        Layer_solver.ops;
        graph;
        layer;
        layer_of_op;
        bound_before = (fun op -> Hashtbl.find_opt device_of_op op);
        available;
        rule = cfg.rule;
        max_devices = List.length available + new_budget;
        device_penalty;
        transport = Transport.time transport;
        cost = cfg.cost;
        weights = cfg.weights;
        existing_paths = !existing_paths;
      }
    in
    let out = Layer_solver.solve cfg.engine input ~fresh_id in
    created_by_layer.(i) <- out.Layer_solver.created;
    devices_so_far := out.Layer_solver.created :: !devices_so_far;
    List.iter
      (fun (d : Device.t) -> Hashtbl.replace referenced d.Device.id ())
      out.Layer_solver.created;
    List.iter
      (fun (e : Schedule.entry) ->
        Hashtbl.replace device_of_op e.Schedule.op e.Schedule.device;
        Hashtbl.replace used_this_pass e.Schedule.device ())
      out.Layer_solver.entries;
    note_paths out.Layer_solver.entries;
    layer_schedules :=
      {
        Schedule.layer_index = i;
        entries = out.Layer_solver.entries;
        fixed_makespan = out.Layer_solver.fixed_makespan;
      }
      :: !layer_schedules
  done;
  let layers = Array.of_list (List.rev !layer_schedules) in
  (* chip = devices actually used + paths from all inter-device transfers *)
  let chip = Chip.create () in
  let used_ids = Hashtbl.create 16 in
  Array.iter
    (fun (l : Schedule.layer_schedule) ->
      List.iter
        (fun (e : Schedule.entry) -> Hashtbl.replace used_ids e.Schedule.device ())
        l.Schedule.entries)
    layers;
  let all_created = List.concat (List.rev !devices_so_far) in
  let add_if_used (d : Device.t) =
    if Hashtbl.mem used_ids d.Device.id && Chip.find_device chip d.Device.id = None
    then Chip.add_device chip d
  in
  List.iter add_if_used all_created;
  List.iter add_if_used pool;
  Flowgraph.Digraph.iter_edges
    (fun u v ->
      match (Hashtbl.find_opt device_of_op u, Hashtbl.find_opt device_of_op v) with
      | Some du, Some dv when du <> dv -> Chip.note_transport chip ~src:du ~dst:dv
      | Some _, Some _ | None, _ | _, None -> ())
    graph;
  let schedule =
    Schedule.make ~assay ~rule:cfg.rule ~layering ~chip ~layers
      ~transport_times:transport
  in
  (schedule, created_by_layer)

let run_with_pool ?(config = default_config) ?(first_fresh_id = 0) ~pool assay =
  Telemetry.span "synthesis.run" ~attrs:[ ("assay", Assay.name assay) ]
  @@ fun () ->
  let started = Telemetry.Clock.now_s () in
  (match Assay.validate assay with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Synthesis.run: " ^ msg));
  let layering = Layering.compute ~threshold:config.threshold assay in
  (* fresh ids must not collide with inherited pool devices (nor with ids
     the caller has retired, e.g. recovery's dead devices) *)
  let next_id =
    ref
      (List.fold_left
         (fun acc (d : Device.t) -> max acc (d.Device.id + 1))
         first_fresh_id pool)
  in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let op_count = Assay.operation_count assay in
  let graph = Assay.dependency_graph assay in
  let children op = Flowgraph.Digraph.succ graph op in
  (* first pass: forward inheritance only, constant transportation times *)
  let transport0 = Transport.constant ~op_count config.initial_transport in
  let schedule0, created0 =
    Telemetry.span "synthesis.pass" ~attrs:[ ("pass", "0") ] (fun () ->
        run_pass config assay layering transport0 ~pool
          ~penalty:(fun _ _ -> 0)
          ~fresh_id)
  in
  Telemetry.count "synthesis.passes";
  let breakdown0 = Schedule.evaluate ~weights:config.weights config.cost schedule0 in
  let iterations = ref [ { iteration_index = 0; schedule = schedule0; breakdown = breakdown0 } ] in
  let continue = ref (config.max_iterations > 1) in
  let prev = ref (schedule0, created0) in
  while !continue do
    let prev_schedule, prev_created = !prev in
    let prev_breakdown =
      match !iterations with
      | { breakdown; _ } :: _ -> breakdown
      | [] -> assert false
    in
    (* refine transportation from the previous pass *)
    let binding op = Schedule.binding prev_schedule op in
    let usage = Chip.path_usage prev_schedule.Schedule.chip in
    let transport =
      if config.refine_by_layout then begin
        let device_ids =
          List.map (fun (d : Device.t) -> d.Device.id)
            (Chip.devices prev_schedule.Schedule.chip)
        in
        let layout = Layout.place ~device_ids ~path_usage:usage in
        Transport.of_layout config.progression ~op_count ~binding ~children ~layout
      end
      else Transport.refine config.progression ~op_count ~binding ~children ~path_usage:usage
    in
    (* §3.2 re-synthesis inheritance: the whole previous chip D is visible
       to every layer; a layer pays the integration cost again on first use
       of its own previous devices D'_i, so it re-justifies them against the
       devices other layers account for (Fig. 6) *)
    let prev_devices = Chip.devices prev_schedule.Schedule.chip in
    let own_of_layer =
      Array.map
        (fun created -> List.map (fun (d : Device.t) -> d.Device.id) created)
        prev_created
    in
    let penalty i id =
      if i < Array.length own_of_layer && List.mem id own_of_layer.(i) then begin
        match Chip.find_device prev_schedule.Schedule.chip id with
        | Some d ->
          (config.weights.Schedule.w_area * Cost.device_area config.cost d)
          + (config.weights.Schedule.w_processing * Cost.device_processing config.cost d)
        | None -> 0
      end
      else 0
    in
    let k = List.length !iterations in
    let schedule, created =
      Telemetry.span "synthesis.pass" ~attrs:[ ("pass", string_of_int k) ]
        (fun () ->
          run_pass config assay layering transport ~pool:prev_devices ~penalty
            ~fresh_id)
    in
    let breakdown = Schedule.evaluate ~weights:config.weights config.cost schedule in
    Telemetry.count "synthesis.passes";
    (* accept a pass only when the full weighted objective improves (a pure
       time gain bought with extra devices or channels is no improvement);
       stop when the execution-time gain becomes marginal *)
    if breakdown.Schedule.weighted < prev_breakdown.Schedule.weighted then begin
      Telemetry.count "synthesis.passes_accepted";
      iterations := { iteration_index = k; schedule; breakdown } :: !iterations;
      prev := (schedule, created);
      let improvement =
        float_of_int
          (prev_breakdown.Schedule.fixed_minutes - breakdown.Schedule.fixed_minutes)
        /. float_of_int (max 1 prev_breakdown.Schedule.fixed_minutes)
      in
      Telemetry.observe "synthesis.pass_improvement" improvement;
      if improvement <= config.improvement_threshold || k + 1 >= config.max_iterations
      then continue := false
    end
    else begin
      Telemetry.count "synthesis.passes_rejected";
      continue := false
    end
  done;
  let iterations = List.rev !iterations in
  let final_iteration = List.nth iterations (List.length iterations - 1) in
  {
    config;
    layering;
    iterations;
    final = final_iteration.schedule;
    final_breakdown = final_iteration.breakdown;
    runtime_seconds = Telemetry.Clock.now_s () -. started;
  }

let run ?config assay = run_with_pool ?config ~pool:[] assay

let improvement_history result =
  let rec pairs k = function
    | a :: (b :: _ as rest) ->
      let impr =
        float_of_int
          (a.breakdown.Schedule.fixed_minutes - b.breakdown.Schedule.fixed_minutes)
        /. float_of_int (max 1 a.breakdown.Schedule.fixed_minutes)
      in
      (k, impr) :: pairs (k + 1) rest
    | [ _ ] | [] -> []
  in
  pairs 1 result.iterations
