open Microfluidics
module G = Flowgraph.Digraph
module Dag = Flowgraph.Dag
module Flow = Flowgraph.Maxflow

type layer = {
  index : int;
  ops : int list;
  indeterminate : int list;
  stored_transfers : (int * int) list;
}

type t = {
  assay : Assay.t;
  threshold : int;
  layers : layer array;
  layer_of_op : int array;
}

module Iset = Set.Make (Int)

(* Descendants of [v] within the vertex set [inside], computed on the full
   dependency graph. *)
let descendants_within g inside v =
  let n = G.vertex_count g in
  let seen = Array.make n false in
  let rec dfs u =
    let visit w =
      if (not seen.(w)) && Iset.mem w inside then begin
        seen.(w) <- true;
        dfs w
      end
    in
    List.iter visit (G.succ g u)
  in
  dfs v;
  let acc = ref Iset.empty in
  Array.iteri (fun u s -> if s then acc := Iset.add u !acc) seen;
  !acc

let ancestors_within g inside v =
  let n = G.vertex_count g in
  let seen = Array.make n false in
  let rec dfs u =
    let visit w =
      if (not seen.(w)) && Iset.mem w inside then begin
        seen.(w) <- true;
        dfs w
      end
    in
    List.iter visit (G.pred g u)
  in
  dfs v;
  let acc = ref Iset.empty in
  Array.iteri (fun u s -> if s then acc := Iset.add u !acc) seen;
  !acc

type choice = Smallest_id | Seeded of int

(* Phase 1 of Algorithm 1 (Fig. 4): keep every indeterminate operation that
   has no indeterminate ancestor in the working set, pushing its descendants
   to later layers; then keep all untouched operations. The paper picks the
   next eligible operation "randomly"; [choice] makes that pick either
   deterministic (smallest id) or seeded pseudo-random. Returns
   (kept, selected_indeterminates). *)
let dependency_based_allocation g is_indet ~choice working =
  let pushed = ref Iset.empty in
  let selected = ref Iset.empty in
  let pick_round = ref 0 in
  let candidate () =
    let in_graph v = Iset.mem v working && (not (Iset.mem v !pushed)) && not (Iset.mem v !selected) in
    let viable v =
      in_graph v && is_indet v
      && begin
        let anc = ancestors_within g (Iset.diff working !pushed) v in
        not (Iset.exists (fun a -> is_indet a && not (Iset.mem a !selected)) anc)
      end
    in
    let eligible = List.filter viable (Iset.elements working) in
    match (eligible, choice) with
    | [], (Smallest_id | Seeded _) -> None
    | v :: _, Smallest_id -> Some v
    | vs, Seeded seed ->
      incr pick_round;
      let h = ref (seed * 0x9E3779B1 + (!pick_round * 0x85EBCA77)) in
      h := !h lxor (!h lsr 13);
      h := !h * 0xC2B2AE35;
      h := !h lxor (!h lsr 16);
      Some (List.nth vs (abs !h mod List.length vs))
  in
  let rec loop () =
    match candidate () with
    | None -> ()
    | Some v ->
      selected := Iset.add v !selected;
      let inside = Iset.diff working (Iset.union !pushed !selected) in
      pushed := Iset.union !pushed (descendants_within g inside v);
      loop ()
  in
  loop ();
  Telemetry.count "layering.mis_rounds";
  Telemetry.count ~by:(Iset.cardinal !selected) "layering.mis_selected";
  (Iset.diff working !pushed, !selected)

(* Eviction cost of indeterminate [v] from the layer [kept] (Fig. 5): a
   min-cut between a virtual source standing for the previous layers and
   [v], over [v]'s ancestor subgraph inside the layer. Crossing edges are
   reagents stored at the boundary; the nearest-sink cut moves the fewest
   ancestors out. Returns (storage_cost, moved_set including v). *)
let eviction_cut g kept v =
  Telemetry.count "layering.min_cuts";
  let anc = ancestors_within g kept v in
  if Iset.is_empty anc then (0, Iset.singleton v)
  else begin
    let verts = Iset.elements anc in
    let index = Hashtbl.create 16 in
    List.iteri (fun i u -> Hashtbl.replace index u (i + 1)) verts;
    let nverts = List.length verts in
    let src = 0 and sink = nverts + 1 in
    let net = Flow.create (nverts + 2) in
    let idx u = if u = v then sink else Hashtbl.find index u in
    let add_dep_edges u =
      let to_inside w =
        if w = v || Iset.mem w anc then
          Flow.add_edge net ~src:(idx u) ~dst:(idx w) ~cap:1
      in
      List.iter to_inside (G.succ g u)
    in
    Iset.iter add_dep_edges anc;
    (* the virtual operation of Fig. 5(d) feeds the roots of the ancestor
       subgraph (ancestors with no parent inside it) *)
    let feed_root u =
      let has_inside_parent = List.exists (fun p -> Iset.mem p anc) (G.pred g u) in
      if not has_inside_parent then Flow.add_edge net ~src ~dst:(idx u) ~cap:1
    in
    Iset.iter feed_root anc;
    let value, side = Flow.min_cut_nearest_sink net ~source:src ~sink in
    let moved = ref (Iset.singleton v) in
    List.iteri (fun i u -> if not side.(i + 1) then moved := Iset.add u !moved) verts;
    (value, !moved)
  end

(* Phase 2 of Algorithm 1: while the layer holds more indeterminate
   operations than the threshold, evict the cheapest one together with the
   sink side of its cut, closed under in-layer descendants. *)
let resource_based_allocation g is_indet threshold kept selected =
  ignore is_indet;
  let kept = ref kept and selected = ref selected in
  (* Descendant closure inside the layer: nothing kept may depend on an
     evicted operation. *)
  let closure_of moved =
    let closure = ref moved in
    let grew = ref true in
    while !grew do
      grew := false;
      let expand u =
        let inside = Iset.remove u !kept in
        let desc = descendants_within g inside u in
        let fresh = Iset.diff desc !closure in
        if not (Iset.is_empty fresh) then begin
          closure := Iset.union !closure fresh;
          grew := true
        end
      in
      Iset.iter expand !closure
    done;
    !closure
  in
  let stop = ref false in
  while (not !stop) && Iset.cardinal !selected > threshold do
    let cost v =
      let c, moved = eviction_cut g !kept v in
      let closure = closure_of moved in
      (c, Iset.cardinal closure - 1, v, closure)
    in
    let candidates =
      (* an eviction whose cascade would wipe out every indeterminate
         operation of the layer is rejected: each non-final layer must keep
         one for the cyber-physical boundary *)
      List.filter
        (fun (_, _, _, closure) -> not (Iset.subset !selected closure))
        (List.map cost (Iset.elements !selected))
    in
    let best =
      List.fold_left
        (fun acc cand ->
          match acc with
          | None -> Some cand
          | Some (c0, m0, v0, _) ->
            let c, m, v, _ = cand in
            if (c, m, v) < (c0, m0, v0) then Some cand else acc)
        None candidates
    in
    match best with
    | None -> stop := true
    | Some (c, _, _, closure) ->
      Telemetry.count "layering.evictions";
      Telemetry.observe "layering.eviction_storage_cost" (float_of_int c);
      kept := Iset.diff !kept closure;
      selected := Iset.diff !selected closure
  done;
  (!kept, !selected)

let compute ?(threshold = 10) ?(choice = Smallest_id) assay =
  if threshold < 1 then invalid_arg "Layering.compute: threshold must be >= 1";
  (match Assay.validate assay with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Layering.compute: " ^ msg));
  Telemetry.span "layering.compute" ~attrs:[ ("assay", Assay.name assay) ]
  @@ fun () ->
  let g = Assay.dependency_graph assay in
  let ops = Assay.operations assay in
  let n = Array.length ops in
  let is_indet v = Operation.is_indeterminate ops.(v) in
  let remaining = ref (Iset.of_list (List.init n Fun.id)) in
  let layers = ref [] in
  let layer_of_op = Array.make n (-1) in
  let index = ref 0 in
  while not (Iset.is_empty !remaining) do
    let kept, selected = dependency_based_allocation g is_indet ~choice !remaining in
    let kept, selected = resource_based_allocation g is_indet threshold kept selected in
    assert (not (Iset.is_empty kept));
    Iset.iter (fun v -> layer_of_op.(v) <- !index) kept;
    remaining := Iset.diff !remaining kept;
    let stored =
      let crossing u acc =
        List.fold_left
          (fun acc w -> if Iset.mem w !remaining then (u, w) :: acc else acc)
          acc (G.succ g u)
      in
      List.sort compare (Iset.fold crossing kept [])
    in
    layers :=
      {
        index = !index;
        ops = Iset.elements kept;
        indeterminate = Iset.elements selected;
        stored_transfers = stored;
      }
      :: !layers;
    incr index
  done;
  Telemetry.count ~by:!index "layering.layers";
  { assay; threshold; layers = Array.of_list (List.rev !layers); layer_of_op }

let layer_count t = Array.length t.layers

let storage_units t =
  Array.fold_left (fun acc l -> acc + List.length l.stored_transfers) 0 t.layers

let check ?(strict = true) t =
  let ops = Assay.operations t.assay in
  let n = Array.length ops in
  let g = Assay.dependency_graph t.assay in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* partition *)
  let seen = Array.make n 0 in
  Array.iter (fun l -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) l.ops) t.layers;
  Array.iteri (fun v c -> if c <> 1 then err "op %d appears in %d layers" v c) seen;
  (* dependencies are monotone; indeterminate parents strictly earlier *)
  let check_edge u v =
    let lu = t.layer_of_op.(u) and lv = t.layer_of_op.(v) in
    if lu > lv then err "dependency %d->%d goes backwards (%d > %d)" u v lu lv;
    if Operation.is_indeterminate ops.(u) && lu >= lv then
      err "indeterminate %d has descendant %d in same layer" u v
  in
  G.iter_edges check_edge g;
  (* threshold and non-last layers have an indeterminate op *)
  Array.iteri
    (fun i l ->
      if strict && List.length l.indeterminate > t.threshold then
        err "layer %d exceeds indeterminate threshold" i;
      if strict && i < Array.length t.layers - 1 && l.indeterminate = [] then
        err "non-final layer %d has no indeterminate operation" i;
      List.iter
        (fun v ->
          if not (Operation.is_indeterminate ops.(v)) then
            err "op %d marked indeterminate in layer %d but is determinate" v i)
        l.indeterminate)
    t.layers;
  match !errors with [] -> Ok () | e -> Error (String.concat "; " (List.rev e))

let pp fmt t =
  Format.fprintf fmt "@[<v>layering of %s (threshold %d): %d layers@,"
    (Assay.name t.assay) t.threshold (Array.length t.layers);
  Array.iter
    (fun l ->
      Format.fprintf fmt "  L%d: %d ops, %d indeterminate, %d stored@," l.index
        (List.length l.ops)
        (List.length l.indeterminate)
        (List.length l.stored_transfers))
    t.layers;
  Format.fprintf fmt "@]"
