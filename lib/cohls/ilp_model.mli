(** Per-layer ILP construction (paper §4, constraints (1)–(21)).

    One model schedules and binds a single layer against a set of device
    {e slots}: inherited devices arrive as [Fixed] slots (their configuration
    is given and their integration cost is sunk, per the §3.2 inheritance
    rule); [Free] slots may be configured by the model, paying area and
    processing cost.

    Faithfulness notes (documented deviations, see DESIGN.md):
    - constraints (1)–(4) are reformulated with one binary per
      (container, capacity) pair, which is required to price a medium ring
      differently from a medium chamber in (16)–(17) — the two formulations
      are otherwise equivalent, and unused slots are not forced to pick a
      container;
    - (15) includes the transportation time in the makespan, matching the
      schedule validator (the device stays monopolised during transport, as
      (10)–(11) already assume);
    - indeterminate operations additionally get "last on their device" and
      "pairwise distinct devices" constraints: (10)–(14) alone would allow a
      determinate operation to start exactly at an indeterminate one's
      minimum end on the same device, which breaks when it overruns. *)

open Microfluidics

type slot = Fixed of Device.t | Free of { id : int }
(** [Free {id}] pre-allocates the global device id the slot will take if
    used. *)

type spec = {
  ops : Operation.t array;  (** the whole assay's operations *)
  graph : Flowgraph.Digraph.t;
  layer : Layering.layer;
  layer_of_op : int array;
  bound_before : int -> int option;
      (** device of an operation from an earlier layer (for cross-layer
          transportation paths) *)
  slots : slot array;
  rule : Binding.rule;
  transport : int -> int;
  cost : Cost.t;
  weights : Schedule.weights;
  existing_paths : (int * int) list;
      (** already-routed device pairs; reusing them is free *)
}

type built
(** The constructed model plus the variable maps needed for extraction. *)

val model : built -> Lp.Model.t
val horizon : built -> int

val build : ?prune:bool -> spec -> built
(** Constructs the layer model. With [prune] (the default) the variable and
    constraint grid is cut down before the solver ever sees it, preserving
    the optimal objective value:

    - ASAP/ALAP start windows from the layer's dependency DAG become
      variable bounds (implied by the dependency and makespan constraints);
    - conflict pairs whose windows already force an ordering are dropped,
      and the surviving disjunctions get the tightest pair-specific big-M
      instead of the global one;
    - free slots, being interchangeable, are canonically ordered: op number
      [i] (in layer order) may only use free slots of ordinal [<= i], and a
      free slot may only be used if its predecessor is.

    [prune:false] reproduces the full §4 grid (used by the equivalence
    property tests). Reductions are reported on the [ilp.model.*] counters.
    @raise Invalid_argument when an operation of the layer fits no slot
    under the given rule (the caller should add free slots). *)

val warm_start : built -> Schedule.entry list -> float array option
(** Translate a heuristic layer schedule into an assignment of the model's
    variables, mapping freshly created devices onto free slots. Returns
    [None] when the entries use devices that cannot be mapped. *)

val extract :
  built -> values:float array -> Schedule.entry list * Device.t list
(** Entries (ascending start) and the devices instantiated in free slots.
    @raise Failure on a malformed solution vector. *)
