(** Device-fault models for fault-tolerant execution.

    The paper's hybrid schedules exist so a cyber-physical controller can
    intervene at layer boundaries; the dominant field intervention is a
    device fault (a failed pump, a stuck valve, a dead heating pad — see
    the FPVA-testing line of work in PAPERS.md). A {e fault plan} decides,
    deterministically per [(seed, device, layer)], whether a device fails
    when the executor reaches a layer boundary, and how:

    - {e permanent}: the device is dead for the rest of the assay; the
      executor must hand the unexecuted suffix to {!Recovery};
    - {e transient}: an accessory glitch that clears after a bounded number
      of retries at the boundary (the executor pays backoff minutes and
      continues, or escalates to permanent when its retry cap is smaller).

    Plans are pure values: probing is side-effect free and reproducible, in
    the style of {!Runtime.seeded_oracle}, so a replay of the same seed
    yields the same faults — including inside recovery, where a re-bound
    surviving device keeps its fault destiny for later layers. *)

type kind =
  | Permanent
  | Transient of { retries_needed : int }
      (** the fault clears on the [retries_needed]-th retry (>= 1) *)

type plan

val none : plan
(** Never injects a fault. [probe none] is always [None]; executing under
    [none] reproduces the fault-free trace exactly. *)

val seeded : seed:int -> rate:float -> plan
(** A device fails at a layer boundary with probability [rate], decided by
    a splitmix-style hash of [(seed, device, layer)]. Injected faults are
    split roughly evenly between permanent and transient; transient faults
    need 1–4 retries to clear.
    @raise Invalid_argument unless [0.0 <= rate <= 1.0]. *)

val probe : plan -> device:int -> layer:int -> kind option
(** Does [device] fault at the boundary opening global layer [layer]?
    Deterministic: probing the same plan twice gives the same answer and
    records nothing. [layer] is the {e global} execution-step index
    (boundaries crossed since assay start), not an index into any one
    schedule, so recovered suffix schedules probe consistently. *)

val rate : plan -> float
(** The configured fault probability ([0.0] for {!none}). *)

val describe : plan -> string
(** One-line human-readable form, e.g. ["seeded fault plan (seed 7, rate 0.10)"]. *)
