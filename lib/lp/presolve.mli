(** Root-node presolve, iterated to a fixed point.

    Each round runs three passes over the model, mutating it in place:

    - {b row pass}: constant rows are checked and dropped, singleton rows
      become variable bounds, rows whose activity range cannot violate them
      are removed, and coefficients of binary variables in inequality rows
      are tightened (generic big-M reduction — the integer feasible set is
      unchanged but the LP relaxation gets strictly tighter);
    - {b bound propagation}: the minimum/maximum activity implied by current
      variable bounds yields tighter implied bounds per variable, with
      integer bounds rounded inwards;
    - {b duality fixing}: a variable whose movement towards one finite bound
      can never violate a constraint nor worsen the objective is fixed
      there (dominated column; preserves the optimal value, possibly not
      every optimal solution).

    All reductions remain valid below the root: branch-and-bound only
    shrinks bounds, which only shrinks activity ranges, and it never
    branches on a fixed variable. Big-M scheduling models benefit
    substantially: fixed binaries collapse whole disjunctions before the
    search starts. Progress is reported on the [lp.presolve.*] telemetry
    counters ([rows_removed], [singleton_rows], [coeffs_tightened],
    [cols_fixed], [tightenings], [rounds]). *)

type outcome =
  | Ok of int  (** number of changes applied (bounds, rows, coefficients) *)
  | Proved_infeasible

val run : ?max_rounds:int -> Model.t -> outcome
(** Default [max_rounds = 10]. *)
