(** Branch-and-bound MILP solver over the floating-point simplex.

    Depth-first search with best-bound pruning; branching on the most
    fractional integer variable, exploring the child nearer the relaxation
    value first. Supports warm-start incumbents (used by the synthesis flow,
    which seeds the search with a greedy list schedule), wall-clock time
    limits and node limits, making it an *anytime* solver like the paper's
    Gurobi runs. Candidate incumbents are re-checked against the model at
    tolerance before acceptance.

    Each node re-solves its relaxation warm: it inherits the parent's
    simplex basis (a {!Simplex.basis} cell, copied on branching) and the
    bound change of the branch is repaired by a dual-simplex phase, falling
    back to a cold primal solve when the warm solve goes stale
    ([lp.bb.warm_hits] / [lp.bb.warm_fallbacks] count the split).

    The search runs on [options.domains] OCaml domains with per-domain
    work-stealing deques ([lp.bb.steals]) and a shared atomic incumbent.
    Results are deterministic regardless of domain count: when optimality
    is proved, the reported solution is re-derived by a fixed-order
    sequential dive bounded by the proven objective, so equal runs return
    byte-identical values; budget-stopped runs report the best incumbent
    found (deterministically tie-broken on equal objectives, but which
    incumbents were *reached* under a budget is timing-dependent — such
    results are best-effort by nature). When byte-stable budget-stopped
    results are required, [options.deterministic] trades the work-stealing
    pool for a synchronous-wave search whose outcome depends only on the
    node budget. *)

type status =
  | Optimal  (** search space exhausted; incumbent is proved optimal *)
  | Feasible  (** stopped at a limit with an incumbent in hand *)
  | Infeasible
  | Unbounded
  | Unknown  (** stopped at a limit with no incumbent *)

type result = {
  status : status;
  objective : float option;  (** natural objective value of the incumbent *)
  values : float array option;  (** incumbent, indexed by model variable *)
  nodes : int;
  elapsed : float;
  gap : float option;  (** relative optimality gap when known *)
}

type options = {
  time_limit : float option;  (** seconds of wall-clock *)
  node_limit : int option;
  int_tol : float;  (** integrality tolerance, default [1e-6] *)
  presolve : bool;  (** run {!Presolve} at the root, default [true] *)
  int_objective : bool;
      (** the objective only takes integer values on integer solutions:
          prune nodes whose relaxation bound is within [int_obj_step] of the
          incumbent, default [false] *)
  int_obj_step : float;
      (** granularity of the objective on integer solutions (the gcd of the
          objective coefficients), default [1.0]; only read when
          [int_objective] is set *)
  log : bool;
  domains : int;
      (** worker domains for the parallel tree search, default
          [max 1 (min 4 (Domain.recommended_domain_count () - 1))]; [1]
          runs the whole search on the calling domain *)
  deterministic : bool;
      (** default [false]: work-stealing search, fastest but — under a
          budget — the set of explored nodes depends on timing. [true]
          switches to a synchronous-wave search: one global node stack,
          fixed-width waves of relaxations solved by up to [domains]
          workers, all shared-state updates applied at the wave barrier in
          stack order (the wave width is a constant so the explored tree
          depends only on the node budget, never on [domains]).
          Results (status, objective, values, nodes) are then
          byte-identical across domain counts even when stopped by
          [node_limit] — pair it with a node budget, not a wall-clock one,
          for machine-independent artifacts (the benchmark JSON the CI
          determinism gate diffs is produced this way) *)
}

val default_options : options

val solve : ?options:options -> ?warm_start:float array -> Model.t -> result
(** The model is never mutated during the search: each node carries an
    immutable bound overlay (handed to the relaxation solver via
    [Simplex.solve_relaxation_float ~bounds]), which is what makes nodes
    safe to process on any domain concurrently. The only mutation is root
    presolve (before the search starts), whose tightenings are kept: they
    are valid for the model. *)
