(** Branch-and-bound MILP solver over the floating-point simplex.

    Depth-first search with best-bound pruning; branching on the most
    fractional integer variable, exploring the child nearer the relaxation
    value first. Supports warm-start incumbents (used by the synthesis flow,
    which seeds the search with a greedy list schedule), wall-clock time
    limits and node limits, making it an *anytime* solver like the paper's
    Gurobi runs. Candidate incumbents are re-checked against the model at
    tolerance before acceptance. *)

type status =
  | Optimal  (** search space exhausted; incumbent is proved optimal *)
  | Feasible  (** stopped at a limit with an incumbent in hand *)
  | Infeasible
  | Unbounded
  | Unknown  (** stopped at a limit with no incumbent *)

type result = {
  status : status;
  objective : float option;  (** natural objective value of the incumbent *)
  values : float array option;  (** incumbent, indexed by model variable *)
  nodes : int;
  elapsed : float;
  gap : float option;  (** relative optimality gap when known *)
}

type options = {
  time_limit : float option;  (** seconds of wall-clock *)
  node_limit : int option;
  int_tol : float;  (** integrality tolerance, default [1e-6] *)
  presolve : bool;  (** run {!Presolve} at the root, default [true] *)
  int_objective : bool;
      (** the objective only takes integer values on integer solutions:
          prune nodes whose relaxation bound is within 1 of the incumbent,
          default [false] *)
  log : bool;
}

val default_options : options

val solve : ?options:options -> ?warm_start:float array -> Model.t -> result
(** The model's variable bounds are mutated during the search but restored
    before returning (except for root presolve tightenings, which are kept:
    they are valid for the model). *)
