(** Dense two-phase primal simplex on standard-form problems

    {[ minimise  c . x   subject to   A x = b,  x >= 0 ]}

    with [b >= 0] (the caller flips row signs beforehand). Artificial
    variables are managed internally; Bland's rule guarantees termination.
    This is the kernel under both {!Simplex} front-ends. *)

type 'num result =
  | Optimal of 'num * 'num array
      (** objective value, values of the [n] structural variables *)
  | Infeasible
  | Unbounded

exception Deadline_exceeded
(** Raised (from inside the pivot loop) when a [deadline] passes before the
    solve finishes, so time-limited callers are not at the mercy of one
    long-running relaxation. *)

module Make (F : Field.S) : sig
  val solve :
    ?max_iters:int ->
    ?deadline:float ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** [solve ~a ~b ~c ()] with [a] of shape [m x n], [b] length [m]
      (all entries [>= 0]), [c] length [n]. [deadline] is an absolute
      {!Telemetry.Clock} time checked every few pivots.
      @raise Invalid_argument on shape mismatch or negative [b] entries.
      @raise Failure if [max_iters] (default [50_000]) pivots are exceeded.
      @raise Deadline_exceeded if [deadline] passes mid-solve. *)
end
