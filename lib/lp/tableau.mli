(** Sparse revised two-phase primal simplex on bounded standard-form
    problems

    {[ minimise  c . x   subject to   A x = b,  0 <= x <= u ]}

    with [b >= 0] (the caller flips row signs beforehand) and [u] optional
    per column. The constraint matrix is held column-wise sparse and the
    basis inverse as a periodically-refactorised product-form eta file, so
    the per-iteration cost is proportional to the number of nonzeros rather
    than [m * n]. Upper bounds are enforced inside the ratio test (nonbasic
    variables rest at either bound; a step may end in a bound flip with no
    basis change) instead of as explicit rows, which roughly halves the row
    count on the branch-and-bound relaxations this kernel exists for.
    Artificial variables are managed internally; pricing is
    steepest-edge-lite (reduced costs scaled by static column norms) with a
    Bland fallback that guarantees termination. This is the kernel under
    both {!Simplex} front-ends. *)

type 'num result =
  | Optimal of 'num * 'num array
      (** objective value, values of the [n] structural variables *)
  | Infeasible
  | Unbounded

exception Deadline_exceeded
(** Raised (from inside the pivot loop) when a [deadline] passes before the
    solve finishes, so time-limited callers are not at the mercy of one
    long-running relaxation. *)

type snapshot = { s_basis : int array; s_at_ub : bool array }
(** A basis snapshot: which column is basic in each row ([s_basis], entries
    [>= n] are artificial) and which nonbasic structural columns rest at
    their upper bound ([s_at_ub]). The snapshot is field-independent, so a
    parent node's basis from either the functorised or the float kernel can
    warm-start a re-solve in the other. *)

type 'num resolve =
  | Resolved of 'num result * snapshot option
      (** the inherited basis was repaired by the dual simplex; the new
          snapshot is present whenever the re-solve ended [Optimal] *)
  | Stale of string
      (** the warm solve cycled, went singular or lost numerical accuracy —
          the caller should fall back to a cold primal solve *)

module Make (F : Field.S) : sig
  val solve_cols :
    ?max_iters:int ->
    ?deadline:float ->
    ?ubs:F.t option array ->
    ?snapshot_out:snapshot option ref ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** [solve_cols ~nrows ~cols ~b ~c ()] with [cols.(j)] the sparse column
      of structural variable [j] as (row, coefficient) pairs (each row at
      most once per column), [b] length [nrows] (all entries [>= 0]), [c]
      length [Array.length cols]. [ubs.(j)], when present, is a strictly
      positive upper bound on structural variable [j] (default: none — the
      classic [x >= 0] form); fixed variables must be substituted out by
      the caller. [deadline] is an absolute {!Telemetry.Clock} time checked
      every few pivots.
      @raise Invalid_argument on shape mismatch, a row index out of range,
      negative [b] entries or a non-positive upper bound.
      @raise Failure if [max_iters] (default [50_000]) pivots are exceeded.
      @raise Deadline_exceeded if [deadline] passes mid-solve.

      When [snapshot_out] is supplied it is filled with a {!snapshot} of the
      final basis whenever the solve ends [Optimal], for later reuse through
      {!resolve_with_basis}. *)

  val resolve_with_basis :
    ?max_iters:int ->
    ?deadline:float ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    ubs:F.t option array ->
    snapshot:snapshot ->
    unit ->
    F.t resolve
  (** Warm re-solve: repair [snapshot] — taken from an optimal solve of a
      problem with the same columns and costs but different [b] / [ubs]
      (the rhs shift and span changes of a branch-and-bound child node) —
      with dual-simplex pivots (bound-ratio pricing of the most infeasible
      basic variable, dual ratio test over the nonbasic structural columns,
      bound flips when the entering span is the binding limit), then polish
      with primal phase-2 pivots. Unlike {!solve_cols}, [b] entries may be
      negative and [ubs] entries may be zero (a variable fixed by
      branching). A [Resolved (Infeasible, _)] from an exhausted dual ratio
      test is a genuine infeasibility certificate. For the approximate
      field the resolved point is cross-checked against the bound system
      and [A x = b] before being trusted; any accuracy loss, cycling or
      singular refactorisation is reported as [Stale] so the caller can
      fall back to a cold primal solve.
      @raise Invalid_argument on shape mismatch.
      @raise Deadline_exceeded if [deadline] passes mid-solve. *)

  val solve :
    ?max_iters:int ->
    ?deadline:float ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** Dense-input convenience wrapper over {!solve_cols}: [a] of shape
      [m x n] is converted to sparse columns first. Same contract. *)
end
