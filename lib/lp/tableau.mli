(** Sparse revised two-phase primal simplex on bounded standard-form
    problems

    {[ minimise  c . x   subject to   A x = b,  0 <= x <= u ]}

    with [b >= 0] (the caller flips row signs beforehand) and [u] optional
    per column. The constraint matrix is held column-wise sparse and the
    basis inverse as a periodically-refactorised product-form eta file, so
    the per-iteration cost is proportional to the number of nonzeros rather
    than [m * n]. Upper bounds are enforced inside the ratio test (nonbasic
    variables rest at either bound; a step may end in a bound flip with no
    basis change) instead of as explicit rows, which roughly halves the row
    count on the branch-and-bound relaxations this kernel exists for.
    Artificial variables are managed internally; pricing is
    steepest-edge-lite (reduced costs scaled by static column norms) with a
    Bland fallback that guarantees termination. This is the kernel under
    both {!Simplex} front-ends. *)

type 'num result =
  | Optimal of 'num * 'num array
      (** objective value, values of the [n] structural variables *)
  | Infeasible
  | Unbounded

exception Deadline_exceeded
(** Raised (from inside the pivot loop) when a [deadline] passes before the
    solve finishes, so time-limited callers are not at the mercy of one
    long-running relaxation. *)

module Make (F : Field.S) : sig
  val solve_cols :
    ?max_iters:int ->
    ?deadline:float ->
    ?ubs:F.t option array ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** [solve_cols ~nrows ~cols ~b ~c ()] with [cols.(j)] the sparse column
      of structural variable [j] as (row, coefficient) pairs (each row at
      most once per column), [b] length [nrows] (all entries [>= 0]), [c]
      length [Array.length cols]. [ubs.(j)], when present, is a strictly
      positive upper bound on structural variable [j] (default: none — the
      classic [x >= 0] form); fixed variables must be substituted out by
      the caller. [deadline] is an absolute {!Telemetry.Clock} time checked
      every few pivots.
      @raise Invalid_argument on shape mismatch, a row index out of range,
      negative [b] entries or a non-positive upper bound.
      @raise Failure if [max_iters] (default [50_000]) pivots are exceeded.
      @raise Deadline_exceeded if [deadline] passes mid-solve. *)

  val solve :
    ?max_iters:int ->
    ?deadline:float ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** Dense-input convenience wrapper over {!solve_cols}: [a] of shape
      [m x n] is converted to sparse columns first. Same contract. *)
end
