module Q = Numeric.Rat

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type result = {
  status : status;
  objective : float option;
  values : float array option;
  nodes : int;
  elapsed : float;
  gap : float option;
}

type options = {
  time_limit : float option;
  node_limit : int option;
  int_tol : float;
  presolve : bool;
  int_objective : bool;
  int_obj_step : float;
  log : bool;
  domains : int;
  deterministic : bool;
}

let default_domains () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

let default_options =
  {
    time_limit = None;
    node_limit = None;
    int_tol = 1e-6;
    presolve = true;
    int_objective = false;
    int_obj_step = 1.0;
    log = false;
    domains = default_domains ();
    deterministic = false;
  }

(* A search node: the full per-variable bound vector (an immutable overlay —
   the shared model is never mutated during the search, so nodes are safe to
   process on any domain), the warm-start basis cell inherited from the
   parent (copy-on-branch: sibling solves must not clobber each other's
   snapshots) and the parent's relaxation bound (a valid lower bound on the
   whole subtree, merged into [best_bound] when the node is discarded at a
   limit). *)
type node = {
  nd_bounds : (Q.t option * Q.t option) array;
  nd_basis : Simplex.basis;
  nd_depth : int;
  nd_bound : float;
}

(* Per-worker deque: the owner pushes and pops at the head (LIFO, so each
   worker runs depth-first), a thief steals from the tail (the shallowest —
   largest — open subtree, which keeps steals rare). A mutex per deque is
   plenty: pushes and pops are a few dozen nanoseconds against
   relaxation solves of tens of microseconds and up. *)
type deque = { dq_lock : Mutex.t; mutable dq_nodes : node list }

type shared = {
  opts : options;
  model : Model.t;
  dir_sign : float; (* +1 minimize, -1 maximize: internal obj = natural * dir_sign *)
  int_vars : int array;
  started : float;
  deadline : float option;
  incumbent : (float * float array) option Atomic.t;
      (* internal-sense objective + rounded values *)
  best_bound : float Atomic.t; (* lowest open relaxation bound at a cut-off *)
  nodes : int Atomic.t;
  inflight : int Atomic.t; (* nodes queued or being processed *)
  proven : bool Atomic.t; (* search space fully explored *)
  stop : bool Atomic.t;
  unbounded : bool Atomic.t;
  deques : deque array;
}

let now () = Telemetry.Clock.now_s ()

let atomic_min cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

let push dq nd =
  Mutex.lock dq.dq_lock;
  dq.dq_nodes <- nd :: dq.dq_nodes;
  Mutex.unlock dq.dq_lock

let pop dq =
  Mutex.lock dq.dq_lock;
  let r =
    match dq.dq_nodes with
    | [] -> None
    | nd :: rest ->
      dq.dq_nodes <- rest;
      Some nd
  in
  Mutex.unlock dq.dq_lock;
  r

let steal dq =
  Mutex.lock dq.dq_lock;
  let r =
    match List.rev dq.dq_nodes with
    | [] -> None
    | nd :: rest_rev ->
      dq.dq_nodes <- List.rev rest_rev;
      Some nd
  in
  Mutex.unlock dq.dq_lock;
  r

let limits_hit sh =
  (match sh.opts.time_limit with
   | Some t -> now () -. sh.started > t
   | None -> false)
  ||
  match sh.opts.node_limit with
  | Some n -> Atomic.get sh.nodes >= n
  | None -> false

let fractionality x = Float.abs (x -. Float.round x)

(* Branching variable, or None when integral: the most fractional binary
   if any (fixing a disjunction/assignment binary collapses its big-M rows,
   while branching on a general integer barely moves the relaxation), else
   the most fractional general integer. *)
let pick_branch sh values =
  let best_bin = ref (-1) and best_bin_frac = ref sh.opts.int_tol in
  let best_gen = ref (-1) and best_gen_frac = ref sh.opts.int_tol in
  let consider v =
    let f = fractionality values.(v) in
    if Model.var_kind sh.model v = Model.Binary then begin
      if f > !best_bin_frac then begin
        best_bin := v;
        best_bin_frac := f
      end
    end
    else if f > !best_gen_frac then begin
      best_gen := v;
      best_gen_frac := f
    end
  in
  Array.iter consider sh.int_vars;
  if !best_bin >= 0 then Some !best_bin
  else if !best_gen >= 0 then Some !best_gen
  else None

(* Deterministic tie-break for equal-objective incumbents, so the shared
   incumbent does not depend on which domain reported first. *)
let lex_lt a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then false
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let round_integral sh values =
  let rounded = Array.copy values in
  Array.iter
    (fun v ->
      if fractionality rounded.(v) <= sh.opts.int_tol then
        rounded.(v) <- Float.round rounded.(v))
    sh.int_vars;
  rounded

let try_incumbent sh values internal_obj =
  (* Round near-integral values exactly before the feasibility re-check. *)
  let rounded = round_integral sh values in
  let violations =
    Model.check_feasible sh.model ~tol:1e-5 (fun v -> rounded.(v))
  in
  if violations = [] then begin
    let rec attempt () =
      let cur = Atomic.get sh.incumbent in
      let better =
        match cur with
        | None -> true
        | Some (obj, vals) ->
          internal_obj < obj -. 1e-9
          || (Float.abs (internal_obj -. obj) <= 1e-9 && lex_lt rounded vals)
      in
      if better then
        if Atomic.compare_and_set sh.incumbent cur (Some (internal_obj, rounded))
        then begin
          Telemetry.count "lp.bb.incumbents";
          Telemetry.observe "lp.bb.incumbent_obj" (sh.dir_sign *. internal_obj);
          if sh.opts.log then
            Printf.eprintf "[bb] node %d: incumbent %.6g\n%!"
              (Atomic.get sh.nodes)
              (sh.dir_sign *. internal_obj)
        end
        else attempt ()
    in
    attempt ();
    true
  end
  else false

let incumbent_obj sh =
  match Atomic.get sh.incumbent with Some (o, _) -> o | None -> infinity

let cutoff sh =
  let inc = incumbent_obj sh in
  (* With an integer-valued objective, a node whose bound is within one
     objective step of the incumbent cannot contain a strictly better
     integer point; [int_obj_step] is the gcd of the objective coefficients
     (e.g. 50 for the paper's weight vector), which prunes the endgame far
     harder than the generic step of 1. *)
  if sh.opts.int_objective then
    inc -. Float.max 1.0 sh.opts.int_obj_step +. 1e-6
  else inc -. 1e-9

(* Bounds of the two children of branching [v] at fractional value [x]. *)
let branch_bounds nd v x =
  let fl = Float.of_int (int_of_float (Float.floor x)) in
  let lb_v, ub_v = nd.nd_bounds.(v) in
  let down = Array.copy nd.nd_bounds in
  down.(v) <- (lb_v, Some (Q.of_float_approx fl));
  let up = Array.copy nd.nd_bounds in
  up.(v) <- (Some (Q.of_float_approx (fl +. 1.0)), ub_v);
  let lo_first = x -. fl <= 0.5 in
  if lo_first then (down, up) else (up, down)

(* Process one node on worker [wid]; children go onto the worker's own
   deque, near child on top so each worker keeps the sequential solver's
   dive-towards-the-relaxation order. *)
let process sh wid relax_ema nd =
  if Atomic.get sh.stop then atomic_min sh.best_bound nd.nd_bound
  else if limits_hit sh then begin
    Atomic.set sh.proven false;
    Atomic.set sh.stop true;
    atomic_min sh.best_bound nd.nd_bound
  end
  else begin
    (* Stop cleanly when the remaining budget cannot fit another relaxation
       of typical size: the kernel deadline below then only fires on a
       genuinely runaway relaxation — the pathology
       [lp.simplex.deadline_aborts] exists to count — not on routine budget
       exhaustion mid-pivot. *)
    let budget_tight =
      match sh.opts.time_limit with
      | Some t ->
        let margin = Float.max 0.05 (4.0 *. !relax_ema) in
        sh.started +. t -. now () < margin
      | None -> false
    in
    if budget_tight then begin
      Atomic.set sh.proven false;
      Atomic.set sh.stop true;
      atomic_min sh.best_bound nd.nd_bound
    end
    else if nd.nd_bound >= cutoff sh then begin
      (* the parent's relaxation bound already rules this child out — the
         incumbent improved since it was queued; skip the relaxation *)
      Telemetry.count "lp.bb.pruned_by_bound";
      atomic_min sh.best_bound nd.nd_bound
    end
    else begin
      Atomic.incr sh.nodes;
      match
        let t0 = now () in
        let outcome =
          Simplex.solve_relaxation_float ?deadline:sh.deadline
            ~bounds:nd.nd_bounds ~basis:nd.nd_basis sh.model
        in
        let dt = now () -. t0 in
        relax_ema :=
          (if !relax_ema <= 0.0 then dt
           else (0.8 *. !relax_ema) +. (0.2 *. dt));
        outcome
      with
      | exception Tableau.Deadline_exceeded ->
        (* one relaxation outlived the whole time budget: abandon the search
           but keep any incumbent (e.g. the warm start) *)
        Atomic.set sh.proven false;
        Atomic.set sh.stop true;
        atomic_min sh.best_bound nd.nd_bound
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* An unbounded relaxation at the root means the MILP is unbounded
           or infeasible; deeper down it cannot happen if the root was
           bounded. *)
        if nd.nd_depth = 0 then begin
          Atomic.set sh.unbounded true;
          Atomic.set sh.stop true
        end
      | Simplex.Optimal { objective; values } ->
        let internal = sh.dir_sign *. objective in
        if internal >= cutoff sh then begin
          (* pruned by bound; remember the tightest open bound for the gap *)
          Telemetry.count "lp.bb.pruned_by_bound";
          atomic_min sh.best_bound internal
        end
        else begin
          match pick_branch sh values with
          | None ->
            if not (try_incumbent sh values internal) then
              (* Numerically integral but infeasible on re-check: give up on
                 this node. *)
              Atomic.set sh.proven false
          | Some v ->
            let near, far = branch_bounds nd v values.(v) in
            let child bounds =
              {
                nd_bounds = bounds;
                nd_basis = Simplex.copy_basis nd.nd_basis;
                nd_depth = nd.nd_depth + 1;
                nd_bound = internal;
              }
            in
            let dq = sh.deques.(wid) in
            (* inflight is raised before the push so a racing worker never
               observes an empty pool while children are in hand *)
            Atomic.incr sh.inflight;
            Atomic.incr sh.inflight;
            push dq (child far);
            push dq (child near)
        end
    end
  end

(* Claim the next node: own deque first, then steal round-robin. Returns
   None only when no node is queued anywhere and none is being processed —
   the pool-wide termination condition. *)
let rec next_node sh wid =
  match pop sh.deques.(wid) with
  | Some nd -> Some nd
  | None ->
    let d = Array.length sh.deques in
    let rec try_steal k =
      if k >= d then None
      else
        match steal sh.deques.((wid + k) mod d) with
        | Some nd ->
          Telemetry.count "lp.bb.steals";
          Some nd
        | None -> try_steal (k + 1)
    in
    (match try_steal 1 with
     | Some nd -> Some nd
     | None ->
       if Atomic.get sh.inflight = 0 then None
       else begin
         (* nodes are in flight elsewhere and may yet spawn children: back
            off briefly (sleeping, not spinning — with more domains than
            cores a spin here would starve the workers that have work) *)
         Unix.sleepf 2e-4;
         next_node sh wid
       end)

let worker sh wid =
  let relax_ema = ref 0.0 in
  let processed = ref 0 in
  let t0 = now () in
  let rec loop () =
    match next_node sh wid with
    | None -> ()
    | Some nd ->
      process sh wid relax_ema nd;
      incr processed;
      Atomic.decr sh.inflight;
      loop ()
  in
  loop ();
  let dt = now () -. t0 in
  if !processed > 0 && dt > 0.0 then
    Telemetry.observe "lp.bb.nodes_per_sec" (float_of_int !processed /. dt)

(* Deterministic synchronous-wave driver ([options.deterministic]): one
   global stack of open nodes, processed in fixed-width waves, with every
   shared-state update — wave membership, incumbent updates, child order —
   applied at the wave barrier in stack order. The wave width is a
   constant, NOT the domain count: the set of nodes explored under a
   [node_limit] budget must depend only on the budget, so [ndomains] may
   only decide how many workers share one wave, never which nodes are in
   it. Nothing depends on timing or interleaving, so a run is
   byte-identical across domain counts. The price is a barrier per wave
   and pruning against the cutoff as of the wave start. Pair this mode
   with a [node_limit] budget: a wall-clock limit still stops the search
   but reintroduces machine-dependent stopping points. *)
let wave_width = 8
type wave_outcome =
  | W_abort
  | W_infeasible
  | W_unbounded
  | W_solved of float * float array

let solve_deterministic sh ndomains root =
  let solve_node nd =
    Atomic.incr sh.nodes;
    match
      Simplex.solve_relaxation_float ?deadline:sh.deadline
        ~bounds:nd.nd_bounds ~basis:nd.nd_basis sh.model
    with
    | exception Tableau.Deadline_exceeded -> W_abort
    | Simplex.Infeasible -> W_infeasible
    | Simplex.Unbounded -> W_unbounded
    | Simplex.Optimal { objective; values } ->
      W_solved (sh.dir_sign *. objective, values)
  in
  let stack = ref [ root ] in
  let t0 = now () in
  let budget =
    ref (match sh.opts.node_limit with Some n -> n | None -> max_int)
  in
  let abandon () =
    Atomic.set sh.proven false;
    Atomic.set sh.stop true;
    List.iter (fun nd -> atomic_min sh.best_bound nd.nd_bound) !stack;
    stack := []
  in
  while !stack <> [] && not (Atomic.get sh.stop) do
    if !budget <= 0 || limits_hit sh then abandon ()
    else begin
      (* assemble the wave: account nodes the incumbent already rules out,
         then take up to [wave_width] of the rest, within budget *)
      let wave = ref [] and nwave = ref 0 in
      let cap = min wave_width !budget in
      while !nwave < cap && !stack <> [] do
        let nd = List.hd !stack in
        stack := List.tl !stack;
        if nd.nd_bound >= cutoff sh then begin
          Telemetry.count "lp.bb.pruned_by_bound";
          atomic_min sh.best_bound nd.nd_bound
        end
        else begin
          wave := nd :: !wave;
          incr nwave
        end
      done;
      let wave = Array.of_list (List.rev !wave) in
      budget := !budget - Array.length wave;
      let outcomes = Array.make (Array.length wave) W_infeasible in
      (* [ndomains] workers share the wave round-robin by index; each slot
         is written by exactly one worker, so the only synchronisation is
         the join *)
      let nwork = max 1 (min ndomains (Array.length wave)) in
      let solve_share w =
        let i = ref w in
        while !i < Array.length wave do
          outcomes.(!i) <- solve_node wave.(!i);
          i := !i + nwork
        done
      in
      if Array.length wave > 0 then begin
        let helpers =
          Array.init (nwork - 1) (fun w ->
              Domain.spawn (fun () -> solve_share (w + 1)))
        in
        solve_share 0;
        Array.iter Domain.join helpers
      end;
      (* barrier: fold the outcomes back in wave order *)
      let children = ref [] in
      Array.iteri
        (fun i outcome ->
          let nd = wave.(i) in
          match outcome with
          | W_abort ->
            atomic_min sh.best_bound nd.nd_bound;
            abandon ()
          | W_infeasible -> ()
          | W_unbounded ->
            if nd.nd_depth = 0 then begin
              Atomic.set sh.unbounded true;
              Atomic.set sh.stop true
            end
          | W_solved (internal, values) ->
            if internal >= cutoff sh then begin
              Telemetry.count "lp.bb.pruned_by_bound";
              atomic_min sh.best_bound internal
            end
            else begin
              match pick_branch sh values with
              | None ->
                if not (try_incumbent sh values internal) then
                  Atomic.set sh.proven false
              | Some v ->
                let near, far = branch_bounds nd v values.(v) in
                let child bounds =
                  {
                    nd_bounds = bounds;
                    nd_basis = Simplex.copy_basis nd.nd_basis;
                    nd_depth = nd.nd_depth + 1;
                    nd_bound = internal;
                  }
                in
                children := child far :: child near :: !children
            end)
        outcomes;
      if Atomic.get sh.stop then
        List.iter (fun nd -> atomic_min sh.best_bound nd.nd_bound) !children
      else stack := List.rev_append !children !stack
    end
  done;
  let dt = now () -. t0 in
  let n = Atomic.get sh.nodes in
  if n > 0 && dt > 0.0 then
    Telemetry.observe "lp.bb.nodes_per_sec" (float_of_int n /. dt)

(* Deterministic result extraction: once the parallel search has *proved*
   the optimal internal objective [w], re-derive the reported solution with
   a fixed-order sequential dive so the values are byte-identical whatever
   the domain count or work-stealing interleaving was. The dive prunes at
   [w + 1e-6] (keeping every optimal leaf alive) and returns the first
   integral feasible solution it reaches — first-in-fixed-DFS-order is a
   canonical choice; with warm-started re-solves the dive costs a small
   fraction of the search that proved [w]. *)
exception Found of float * float array

let extract_solution sh root_bounds w =
  let limit = w +. 1e-6 in
  let basis = Simplex.new_basis () in
  let rec dive bounds basis depth =
    (match sh.deadline with
     | Some t when now () > t -> raise Exit
     | _ -> ());
    match
      Simplex.solve_relaxation_float ?deadline:sh.deadline ~bounds ~basis
        sh.model
    with
    | exception Tableau.Deadline_exceeded -> raise Exit
    | Simplex.Infeasible | Simplex.Unbounded -> ()
    | Simplex.Optimal { objective; values } ->
      let internal = sh.dir_sign *. objective in
      if internal <= limit then begin
        match pick_branch sh values with
        | None ->
          let rounded = round_integral sh values in
          if
            Model.check_feasible sh.model ~tol:1e-5 (fun v -> rounded.(v))
            = []
          then raise (Found (internal, rounded))
        | Some v ->
          let nd = { nd_bounds = bounds; nd_basis = basis; nd_depth = depth; nd_bound = internal } in
          let near, far = branch_bounds nd v values.(v) in
          dive near (Simplex.copy_basis basis) (depth + 1);
          dive far (Simplex.copy_basis basis) (depth + 1)
      end
  in
  match dive root_bounds basis 0 with
  | () -> None
  | exception Found (obj, values) -> Some (obj, values)
  | exception Exit -> None

let solve ?(options = default_options) ?warm_start model =
  Telemetry.span "lp.bb.solve" @@ fun () ->
  let started = now () in
  let dir, _ = Model.objective model in
  let dir_sign = match dir with `Minimize -> 1.0 | `Maximize -> -1.0 in
  let int_vars =
    Array.of_list
      (List.filter
         (fun v -> Model.is_integer_var model v)
         (List.init (Model.var_count model) Fun.id))
  in
  let ndomains = max 1 options.domains in
  let sh =
    {
      opts = options;
      model;
      dir_sign;
      int_vars;
      started;
      deadline =
        (match options.time_limit with
         | Some t -> Some (started +. t)
         | None -> None);
      incumbent = Atomic.make None;
      best_bound = Atomic.make infinity;
      nodes = Atomic.make 0;
      inflight = Atomic.make 0;
      proven = Atomic.make true;
      stop = Atomic.make false;
      unbounded = Atomic.make false;
      deques =
        Array.init ndomains (fun _ ->
            { dq_lock = Mutex.create (); dq_nodes = [] });
    }
  in
  (match warm_start with
   | Some values ->
     let obj = Model.eval_objective model (fun v -> values.(v)) in
     ignore (try_incumbent sh values (dir_sign *. obj))
   | None -> ());
  let presolve_outcome =
    if options.presolve then Presolve.run model else Presolve.Ok 0
  in
  match presolve_outcome with
  | Presolve.Proved_infeasible ->
    let inc = Atomic.get sh.incumbent in
    {
      status = (if inc = None then Infeasible else Feasible);
      objective = Option.map (fun (o, _) -> dir_sign *. o) inc;
      values = Option.map snd inc;
      nodes = 0;
      elapsed = now () -. started;
      gap = None;
    }
  | Presolve.Ok _ -> begin
    let nvars = Model.var_count model in
    let root_bounds =
      Array.init nvars (fun v -> (Model.var_lb model v, Model.var_ub model v))
    in
    let root =
      {
        nd_bounds = root_bounds;
        nd_basis = Simplex.new_basis ();
        nd_depth = 0;
        nd_bound = neg_infinity;
      }
    in
    if options.deterministic then solve_deterministic sh ndomains root
    else begin
      Atomic.set sh.inflight 1;
      push sh.deques.(0) root;
      let helpers =
        Array.init (ndomains - 1) (fun i ->
            Domain.spawn (fun () -> worker sh (i + 1)))
      in
      worker sh 0;
      Array.iter Domain.join helpers
    end;
    let elapsed = now () -. started in
    (* Canonical reported solution: re-derived deterministically when
       optimality was proved (see [extract_solution]); the racing shared
       incumbent otherwise (budget-stopped runs are best-effort anyway, and
       documented as such). *)
    let incumbent =
      match (Atomic.get sh.incumbent, Atomic.get sh.proven) with
      | Some (w, _), true -> (
        match extract_solution sh root_bounds w with
        | Some (obj, values) -> Some (obj, values)
        | None -> Atomic.get sh.incumbent)
      | inc, _ -> inc
    in
    let objective = Option.map (fun (o, _) -> dir_sign *. o) incumbent in
    let proven = Atomic.get sh.proven in
    let best_bound = Atomic.get sh.best_bound in
    let gap =
      match (incumbent, proven) with
      | Some _, true -> Some 0.0
      | Some (i, _), false when best_bound < infinity ->
        Some (Float.abs (i -. best_bound) /. Float.max 1e-9 (Float.abs i))
      | Some _, false | None, _ -> None
    in
    let status =
      if Atomic.get sh.unbounded then Unbounded
      else
        match (incumbent, proven) with
        | Some _, true -> Optimal
        | Some _, false -> Feasible
        | None, true -> Infeasible
        | None, false -> Unknown
    in
    let nodes = Atomic.get sh.nodes in
    Telemetry.count ~by:nodes "lp.bb.nodes";
    (match gap with Some g -> Telemetry.observe "lp.bb.gap" g | None -> ());
    {
      status;
      objective;
      values = Option.map snd incumbent;
      nodes;
      elapsed;
      gap;
    }
  end
