module Q = Numeric.Rat

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type result = {
  status : status;
  objective : float option;
  values : float array option;
  nodes : int;
  elapsed : float;
  gap : float option;
}

type options = {
  time_limit : float option;
  node_limit : int option;
  int_tol : float;
  presolve : bool;
  int_objective : bool;
  log : bool;
}

let default_options =
  {
    time_limit = None;
    node_limit = None;
    int_tol = 1e-6;
    presolve = true;
    int_objective = false;
    log = false;
  }

exception Stop_search

type search_state = {
  opts : options;
  model : Model.t;
  dir_sign : float; (* +1 minimize, -1 maximize: internal obj = natural * dir_sign *)
  int_vars : int array;
  started : float;
  mutable incumbent : float array option;
  mutable incumbent_obj : float; (* internal sense (minimise) *)
  mutable nodes : int;
  mutable proven : bool; (* search space fully explored *)
  mutable best_bound : float; (* lowest open relaxation bound seen at cut-off *)
  mutable relax_ema : float; (* running estimate of one relaxation's wall time *)
}

let now () = Telemetry.Clock.now_s ()

let limits_hit st =
  (match st.opts.time_limit with
   | Some t -> now () -. st.started > t
   | None -> false)
  || match st.opts.node_limit with Some n -> st.nodes >= n | None -> false

let fractionality x = Float.abs (x -. Float.round x)

(* Branching variable, or None when integral: the most fractional binary
   if any (fixing a disjunction/assignment binary collapses its big-M rows,
   while branching on a general integer barely moves the relaxation), else
   the most fractional general integer. *)
let pick_branch st values =
  let best_bin = ref (-1) and best_bin_frac = ref st.opts.int_tol in
  let best_gen = ref (-1) and best_gen_frac = ref st.opts.int_tol in
  let consider v =
    let f = fractionality values.(v) in
    if Model.var_kind st.model v = Model.Binary then begin
      if f > !best_bin_frac then begin
        best_bin := v;
        best_bin_frac := f
      end
    end
    else if f > !best_gen_frac then begin
      best_gen := v;
      best_gen_frac := f
    end
  in
  Array.iter consider st.int_vars;
  if !best_bin >= 0 then Some !best_bin
  else if !best_gen >= 0 then Some !best_gen
  else None

let try_incumbent st values internal_obj =
  (* Round near-integral values exactly before the feasibility re-check. *)
  let rounded = Array.copy values in
  let round v =
    if fractionality rounded.(v) <= st.opts.int_tol then
      rounded.(v) <- Float.round rounded.(v)
  in
  Array.iter round st.int_vars;
  let violations = Model.check_feasible st.model ~tol:1e-5 (fun v -> rounded.(v)) in
  if violations = [] then begin
    if internal_obj < st.incumbent_obj -. 1e-9 then begin
      st.incumbent <- Some rounded;
      st.incumbent_obj <- internal_obj;
      Telemetry.count "lp.bb.incumbents";
      Telemetry.observe "lp.bb.incumbent_obj" (st.dir_sign *. internal_obj);
      if st.opts.log then
        Printf.eprintf "[bb] node %d: incumbent %.6g\n%!" st.nodes
          (st.dir_sign *. internal_obj)
    end;
    true
  end
  else false

let rec search st depth =
  if limits_hit st then begin
    st.proven <- false;
    raise Stop_search
  end;
  st.nodes <- st.nodes + 1;
  let deadline =
    match st.opts.time_limit with Some t -> Some (st.started +. t) | None -> None
  in
  (* Stop cleanly when the remaining budget cannot fit another relaxation of
     typical size: the kernel deadline below then only fires on a genuinely
     runaway relaxation — the pathology [lp.simplex.deadline_aborts] exists
     to count — not on routine budget exhaustion mid-pivot. *)
  (match st.opts.time_limit with
   | Some t ->
     let margin = Float.max 0.05 (4.0 *. st.relax_ema) in
     if st.started +. t -. now () < margin then begin
       st.proven <- false;
       raise Stop_search
     end
   | None -> ());
  match
    let t0 = now () in
    let outcome = Simplex.solve_relaxation_float ?deadline st.model in
    let dt = now () -. t0 in
    st.relax_ema <-
      (if st.relax_ema <= 0.0 then dt else (0.8 *. st.relax_ema) +. (0.2 *. dt));
    outcome
  with
  | exception Tableau.Deadline_exceeded ->
    (* one relaxation outlived the whole time budget: abandon the search but
       keep any incumbent (e.g. the warm start) *)
    st.proven <- false;
    raise Stop_search
  | Simplex.Infeasible -> ()
  | Simplex.Unbounded ->
    (* An unbounded relaxation at the root means the MILP is unbounded or
       infeasible; deeper down it cannot happen if the root was bounded. *)
    if depth = 0 then raise Exit
  | Simplex.Optimal { objective; values } ->
    let internal = st.dir_sign *. objective in
    (* With an integer-valued objective, a node whose bound is within 1 of
       the incumbent cannot contain a strictly better integer point. *)
    let cutoff =
      if st.opts.int_objective then st.incumbent_obj -. 1.0 +. 1e-6
      else st.incumbent_obj -. 1e-9
    in
    if internal >= cutoff then begin
      (* pruned by bound; remember the tightest open bound for gap report *)
      Telemetry.count "lp.bb.pruned_by_bound";
      if internal < st.best_bound then st.best_bound <- internal
    end
    else begin
      match pick_branch st values with
      | None ->
        if not (try_incumbent st values internal) then begin
          (* Numerically integral but infeasible on re-check: branch on the
             integer var with the largest tiny fractionality to make
             progress; if none, give up on this node. *)
          st.proven <- false
        end
      | Some v ->
        let x = values.(v) in
        let fl = Float.of_int (int_of_float (Float.floor x)) in
        let old_lb = Model.var_lb st.model v and old_ub = Model.var_ub st.model v in
        let lo_first = x -. fl <= 0.5 in
        let down () =
          Model.set_bounds st.model v old_lb (Some (Q.of_float_approx fl));
          search st (depth + 1);
          Model.set_bounds st.model v old_lb old_ub
        in
        let up () =
          Model.set_bounds st.model v (Some (Q.of_float_approx (fl +. 1.0))) old_ub;
          search st (depth + 1);
          Model.set_bounds st.model v old_lb old_ub
        in
        if lo_first then begin down (); up () end else begin up (); down () end
    end

let solve ?(options = default_options) ?warm_start model =
  Telemetry.span "lp.bb.solve" @@ fun () ->
  let started = now () in
  let dir, _ = Model.objective model in
  let dir_sign = match dir with `Minimize -> 1.0 | `Maximize -> -1.0 in
  let int_vars =
    Array.of_list
      (List.filter
         (fun v -> Model.is_integer_var model v)
         (List.init (Model.var_count model) Fun.id))
  in
  let st =
    {
      opts = options;
      model;
      dir_sign;
      int_vars;
      started;
      incumbent = None;
      incumbent_obj = infinity;
      nodes = 0;
      proven = true;
      best_bound = infinity;
      relax_ema = 0.0;
    }
  in
  (match warm_start with
   | Some values ->
     let obj = Model.eval_objective model (fun v -> values.(v)) in
     ignore (try_incumbent st values (dir_sign *. obj))
   | None -> ());
  let presolve_outcome =
    if options.presolve then Presolve.run model else Presolve.Ok 0
  in
  match presolve_outcome with
  | Presolve.Proved_infeasible ->
    {
      status = (if st.incumbent = None then Infeasible else Feasible);
      objective = Option.map (fun _ -> st.dir_sign *. st.incumbent_obj) st.incumbent;
      values = st.incumbent;
      nodes = 0;
      elapsed = now () -. started;
      gap = None;
    }
  | Presolve.Ok _ -> begin
    let unbounded = ref false in
    (try search st 0 with
     | Stop_search -> ()
     | Exit -> unbounded := true);
    let elapsed = now () -. started in
    let objective = Option.map (fun _ -> st.dir_sign *. st.incumbent_obj) st.incumbent in
    let gap =
      match (st.incumbent, st.proven) with
      | Some _, true -> Some 0.0
      | Some _, false when st.best_bound < infinity ->
        let i = st.incumbent_obj and b = st.best_bound in
        Some (Float.abs (i -. b) /. Float.max 1e-9 (Float.abs i))
      | Some _, false | None, _ -> None
    in
    let status =
      if !unbounded then Unbounded
      else
        match (st.incumbent, st.proven) with
        | Some _, true -> Optimal
        | Some _, false -> Feasible
        | None, true -> Infeasible
        | None, false -> Unknown
    in
    Telemetry.count ~by:st.nodes "lp.bb.nodes";
    (match gap with Some g -> Telemetry.observe "lp.bb.gap" g | None -> ());
    { status; objective; values = st.incumbent; nodes = st.nodes; elapsed; gap }
  end
