module Q = Numeric.Rat

type 'num outcome =
  | Optimal of { objective : 'num; values : 'num array }
  | Infeasible
  | Unbounded

(* How each model variable maps onto standard-form columns. *)
type mapping =
  | Shifted of int * Q.t (* x = col + lb *)
  | Flipped of int * Q.t (* x = ub - col  (upper bound only) *)
  | Split of int * int (* x = pos - neg   (free) *)
  | Fixed of Q.t (* lb = ub *)

(* The driver is shared between fields; the kernel is not — the float
   instance runs the hand-specialised {!Tableau_float} (unboxed arrays, no
   per-op indirection), the exact instance the functorised {!Tableau}. *)
module type Kernel = sig
  module F : Field.S

  val solve_cols :
    ?max_iters:int ->
    ?deadline:float ->
    ?ubs:F.t option array ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t Tableau.result
end

module Make_driver (K : Kernel) = struct
  module F = K.F

  let solve ?max_iters ?deadline model =
    Telemetry.span "lp.simplex.solve" @@ fun () ->
    Telemetry.count "lp.simplex.relaxations";
    let nvars = Model.var_count model in
    let mapping = Array.make nvars (Fixed Q.zero) in
    let ncols = ref 0 in
    let fresh () =
      let c = !ncols in
      incr ncols;
      c
    in
    (* rows under construction: (terms over columns, sense, rhs) *)
    let rows = ref [] in
    let nrows = ref 0 in
    let push_row terms sense rhs =
      rows := (terms, sense, rhs) :: !rows;
      incr nrows
    in
    let infeasible_bounds = ref false in
    (* Doubly-bounded variables get an implicit column bound handled by the
       bounded-variable kernel, not an explicit [x <= u - l] row: on the
       branch-and-bound relaxations nearly every variable is boxed, so this
       roughly halves the row count. *)
    let col_ubs = ref [] in
    for v = 0 to nvars - 1 do
      let lb = Model.var_lb model v and ub = Model.var_ub model v in
      match (lb, ub) with
      | Some l, Some u when Q.compare l u > 0 -> infeasible_bounds := true
      | Some l, Some u when Q.equal l u -> mapping.(v) <- Fixed l
      | Some l, Some u ->
        let c = fresh () in
        mapping.(v) <- Shifted (c, l);
        col_ubs := (c, Q.sub u l) :: !col_ubs
      | Some l, None -> mapping.(v) <- Shifted (fresh (), l)
      | None, Some u -> mapping.(v) <- Flipped (fresh (), u)
      | None, None ->
        let p = fresh () in
        let q = fresh () in
        mapping.(v) <- Split (p, q)
    done;
    if !infeasible_bounds then Infeasible
    else begin
      (* Translate a model expression into (column terms, constant).
         [Linexpr] is canonical (one term per variable) and distinct
         variables map to distinct columns, so terms need no merging. *)
      let translate expr =
        let konst = ref (Linexpr.const_part expr) in
        let acc = ref [] in
        let bump col q = if not (Q.is_zero q) then acc := (col, q) :: !acc in
        Linexpr.fold
          (fun v c () ->
            match mapping.(v) with
            | Fixed k -> konst := Q.add !konst (Q.mul c k)
            | Shifted (col, l) ->
              bump col c;
              konst := Q.add !konst (Q.mul c l)
            | Flipped (col, u) ->
              bump col (Q.neg c);
              konst := Q.add !konst (Q.mul c u)
            | Split (p, q) ->
              bump p c;
              bump q (Q.neg c))
          expr ();
        (!acc, !konst)
      in
      Model.iter_constraints model (fun _name expr sense rhs ->
          let terms, k = translate expr in
          push_row terms sense (Q.sub rhs k));
      (* Slack / surplus columns; normalise rhs signs afterwards. *)
      let dir, obj_expr = Model.objective model in
      let obj_terms, obj_const = translate obj_expr in
      let struct_cols = !ncols in
      let slack_of_row = Array.make !nrows (-1) in
      let row_list = List.rev !rows in
      List.iteri
        (fun i (_, sense, _) ->
          match sense with
          | Model.Le | Model.Ge -> slack_of_row.(i) <- fresh ()
          | Model.Eq -> ())
        row_list;
      let n = !ncols in
      let m = !nrows in
      (* Column-wise sparse assembly: [translate] merges duplicate variables
         per row, so each (row, col) pair occurs at most once. *)
      let col_entries = Array.make n [] in
      let b = Array.make m F.zero in
      let nnz = ref 0 in
      List.iteri
        (fun i (terms, sense, rhs) ->
          let flip = Q.sign rhs < 0 in
          let put col q =
            let q = if flip then Q.neg q else q in
            col_entries.(col) <- (i, F.of_rat q) :: col_entries.(col);
            incr nnz
          in
          List.iter (fun (col, q) -> put col q) terms;
          (match sense with
           | Model.Le -> put slack_of_row.(i) Q.one
           | Model.Ge -> put slack_of_row.(i) Q.minus_one
           | Model.Eq -> ());
          b.(i) <- F.of_rat (if flip then Q.neg rhs else rhs))
        row_list;
      let cols = Array.map (fun l -> Array.of_list (List.rev l)) col_entries in
      let c = Array.make n F.zero in
      let obj_sign = match dir with `Minimize -> Q.one | `Maximize -> Q.minus_one in
      List.iter
        (fun (col, q) -> c.(col) <- F.add c.(col) (F.of_rat (Q.mul obj_sign q)))
        obj_terms;
      ignore struct_cols;
      let ubs = Array.make n None in
      List.iter (fun (col, u) -> ubs.(col) <- Some (F.of_rat u)) !col_ubs;
      Telemetry.count ~by:m "lp.simplex.rows";
      Telemetry.count ~by:n "lp.simplex.cols";
      Telemetry.count ~by:!nnz "lp.simplex.nnz";
      match
        Telemetry.span "lp.simplex.kernel" (fun () ->
            K.solve_cols ?max_iters ?deadline ~ubs ~nrows:m ~cols ~b ~c ())
      with
      | Tableau.Infeasible -> Infeasible
      | Tableau.Unbounded -> Unbounded
      | Tableau.Optimal (value, x) ->
        let value_of v =
          match mapping.(v) with
          | Fixed k -> F.of_rat k
          | Shifted (col, l) -> F.add x.(col) (F.of_rat l)
          | Flipped (col, u) -> F.sub (F.of_rat u) x.(col)
          | Split (p, q) -> F.sub x.(p) x.(q)
        in
        let values = Array.init nvars value_of in
        (* Undo the max->min sign flip and re-add the objective constant. *)
        let natural =
          let base = F.add value (F.of_rat (Q.mul obj_sign obj_const)) in
          match dir with `Minimize -> base | `Maximize -> F.neg base
        in
        Optimal { objective = natural; values }
    end
end

module Float_kernel = struct
  module F = Field.Approx

  let solve_cols = Tableau_float.solve_cols
end

module Exact_kernel = struct
  module F = Field.Exact
  include Tableau.Make (Field.Exact)
end

module Float_driver = Make_driver (Float_kernel)
module Exact_driver = Make_driver (Exact_kernel)

let solve_relaxation_float ?max_iters ?deadline model =
  Float_driver.solve ?max_iters ?deadline model

let solve_relaxation_exact ?max_iters ?deadline model =
  Exact_driver.solve ?max_iters ?deadline model
