module Q = Numeric.Rat

type 'num outcome =
  | Optimal of { objective : 'num; values : 'num array }
  | Infeasible
  | Unbounded

(* How each model variable maps onto standard-form columns. *)
type mapping =
  | Shifted of int * Q.t (* x = col + lb *)
  | Flipped of int * Q.t (* x = ub - col  (upper bound only) *)
  | Split of int * int (* x = pos - neg   (free) *)
  | Fixed of Q.t (* lb = ub *)

(* The driver is shared between fields; the kernel is not — the float
   instance runs the hand-specialised {!Tableau_float} (unboxed arrays, no
   per-op indirection), the exact instance the functorised {!Tableau}. *)
module type Kernel = sig
  module F : Field.S

  val solve_cols :
    ?max_iters:int ->
    ?deadline:float ->
    ?ubs:F.t option array ->
    ?snapshot_out:Tableau.snapshot option ref ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t Tableau.result

  val resolve_with_basis :
    ?max_iters:int ->
    ?deadline:float ->
    nrows:int ->
    cols:(int * F.t) array array ->
    b:F.t array ->
    c:F.t array ->
    ubs:F.t option array ->
    snapshot:Tableau.snapshot ->
    unit ->
    F.t Tableau.resolve
end

module Make_driver (K : Kernel) = struct
  module F = K.F

  (* The standard form translated from one set of variable bounds. Nodes of
     a branch-and-bound tree reuse it: a child's changed bounds are absorbed
     as per-column (lo, span) pairs — the kernel keeps its [0, ub] column
     form, the lower offset is folded into the rhs ([b - A lo]) and the span
     becomes the column's implicit upper bound — so the constraint matrix,
     costs and column identities never change and the parent's basis
     snapshot stays structurally valid for a dual-simplex re-solve. Only a
     bound change the column form cannot express (a [Fixed] variable coming
     unfixed, a [Split] free variable acquiring a bound, a [Shifted] /
     [Flipped] variable losing the bound that anchored it) forces a full
     re-translation. *)
  type prepared = {
    p_nvars : int;
    p_mapping : mapping array;
    p_nrows : int;
    p_cols : (int * F.t) array array;
    p_b : F.t array;
    p_c : F.t array;
    p_ubs : F.t option array;
    p_obj_sign : Q.t;
    p_obj_const : Q.t;
    p_dir : [ `Minimize | `Maximize ];
  }

  (* In/out warm-start cell threaded through {!solve}: filled from the final
     basis of an [Optimal] solve, consumed (and refreshed) by the next solve
     holding it. Branch-and-bound hands each child a {!copy_basis} of its
     parent's cell. *)
  type basis = {
    mutable bs_prepared : prepared option;
    mutable bs_snapshot : Tableau.snapshot option;
  }

  let new_basis () = { bs_prepared = None; bs_snapshot = None }

  let copy_basis b =
    { bs_prepared = b.bs_prepared; bs_snapshot = b.bs_snapshot }

  let effective_bounds ?bounds model =
    let nvars = Model.var_count model in
    match bounds with
    | Some bs ->
      if Array.length bs <> nvars then
        invalid_arg "Simplex.solve: bounds length";
      (Array.map fst bs, Array.map snd bs)
    | None ->
      ( Array.init nvars (fun v -> Model.var_lb model v),
        Array.init nvars (fun v -> Model.var_ub model v) )

  (* Full translation and cold primal solve; [lb] / [ub] are the effective
     per-variable bounds. When [capture] is given the final basis and the
     translated form are stored into it for later warm re-solves. *)
  let cold_solve ?max_iters ?deadline ?capture ~lb ~ub model =
    let nvars = Model.var_count model in
    let mapping = Array.make nvars (Fixed Q.zero) in
    let ncols = ref 0 in
    let fresh () =
      let c = !ncols in
      incr ncols;
      c
    in
    (* rows under construction: (terms over columns, sense, rhs) *)
    let rows = ref [] in
    let nrows = ref 0 in
    let push_row terms sense rhs =
      rows := (terms, sense, rhs) :: !rows;
      incr nrows
    in
    let infeasible_bounds = ref false in
    (* Doubly-bounded variables get an implicit column bound handled by the
       bounded-variable kernel, not an explicit [x <= u - l] row: on the
       branch-and-bound relaxations nearly every variable is boxed, so this
       roughly halves the row count. *)
    let col_ubs = ref [] in
    for v = 0 to nvars - 1 do
      match (lb.(v), ub.(v)) with
      | Some l, Some u when Q.compare l u > 0 -> infeasible_bounds := true
      | Some l, Some u when Q.equal l u -> mapping.(v) <- Fixed l
      | Some l, Some u ->
        let c = fresh () in
        mapping.(v) <- Shifted (c, l);
        col_ubs := (c, Q.sub u l) :: !col_ubs
      | Some l, None -> mapping.(v) <- Shifted (fresh (), l)
      | None, Some u -> mapping.(v) <- Flipped (fresh (), u)
      | None, None ->
        let p = fresh () in
        let q = fresh () in
        mapping.(v) <- Split (p, q)
    done;
    if !infeasible_bounds then Infeasible
    else begin
      (* Translate a model expression into (column terms, constant).
         [Linexpr] is canonical (one term per variable) and distinct
         variables map to distinct columns, so terms need no merging. *)
      let translate expr =
        let konst = ref (Linexpr.const_part expr) in
        let acc = ref [] in
        let bump col q = if not (Q.is_zero q) then acc := (col, q) :: !acc in
        Linexpr.fold
          (fun v c () ->
            match mapping.(v) with
            | Fixed k -> konst := Q.add !konst (Q.mul c k)
            | Shifted (col, l) ->
              bump col c;
              konst := Q.add !konst (Q.mul c l)
            | Flipped (col, u) ->
              bump col (Q.neg c);
              konst := Q.add !konst (Q.mul c u)
            | Split (p, q) ->
              bump p c;
              bump q (Q.neg c))
          expr ();
        (!acc, !konst)
      in
      Model.iter_constraints model (fun _name expr sense rhs ->
          let terms, k = translate expr in
          push_row terms sense (Q.sub rhs k));
      (* Slack / surplus columns; normalise rhs signs afterwards. *)
      let dir, obj_expr = Model.objective model in
      let obj_terms, obj_const = translate obj_expr in
      let slack_of_row = Array.make (max 1 !nrows) (-1) in
      let row_list = List.rev !rows in
      List.iteri
        (fun i (_, sense, _) ->
          match sense with
          | Model.Le | Model.Ge -> slack_of_row.(i) <- fresh ()
          | Model.Eq -> ())
        row_list;
      let n = !ncols in
      let m = !nrows in
      (* Column-wise sparse assembly: [translate] merges duplicate variables
         per row, so each (row, col) pair occurs at most once. *)
      let col_entries = Array.make n [] in
      let b = Array.make m F.zero in
      let nnz = ref 0 in
      List.iteri
        (fun i (terms, sense, rhs) ->
          let flip = Q.sign rhs < 0 in
          let put col q =
            let q = if flip then Q.neg q else q in
            col_entries.(col) <- (i, F.of_rat q) :: col_entries.(col);
            incr nnz
          in
          List.iter (fun (col, q) -> put col q) terms;
          (match sense with
           | Model.Le -> put slack_of_row.(i) Q.one
           | Model.Ge -> put slack_of_row.(i) Q.minus_one
           | Model.Eq -> ());
          b.(i) <- F.of_rat (if flip then Q.neg rhs else rhs))
        row_list;
      let cols = Array.map (fun l -> Array.of_list (List.rev l)) col_entries in
      let c = Array.make n F.zero in
      let obj_sign =
        match dir with `Minimize -> Q.one | `Maximize -> Q.minus_one
      in
      List.iter
        (fun (col, q) -> c.(col) <- F.add c.(col) (F.of_rat (Q.mul obj_sign q)))
        obj_terms;
      let ubs = Array.make n None in
      List.iter (fun (col, u) -> ubs.(col) <- Some (F.of_rat u)) !col_ubs;
      Telemetry.count ~by:m "lp.simplex.rows";
      Telemetry.count ~by:n "lp.simplex.cols";
      Telemetry.count ~by:!nnz "lp.simplex.nnz";
      let snapshot_out =
        match capture with Some _ -> Some (ref None) | None -> None
      in
      match
        Telemetry.span "lp.simplex.kernel" (fun () ->
            K.solve_cols ?max_iters ?deadline ~ubs ?snapshot_out ~nrows:m
              ~cols ~b ~c ())
      with
      | Tableau.Infeasible -> Infeasible
      | Tableau.Unbounded -> Unbounded
      | Tableau.Optimal (value, x) ->
        (match (capture, snapshot_out) with
         | Some cell, Some { contents = Some snap } ->
           cell.bs_prepared <-
             Some
               {
                 p_nvars = nvars;
                 p_mapping = mapping;
                 p_nrows = m;
                 p_cols = cols;
                 p_b = b;
                 p_c = c;
                 p_ubs = ubs;
                 p_obj_sign = obj_sign;
                 p_obj_const = obj_const;
                 p_dir = dir;
               };
           cell.bs_snapshot <- Some snap
         | _ -> ());
        let value_of v =
          match mapping.(v) with
          | Fixed k -> F.of_rat k
          | Shifted (col, l) -> F.add x.(col) (F.of_rat l)
          | Flipped (col, u) -> F.sub (F.of_rat u) x.(col)
          | Split (p, q) -> F.sub x.(p) x.(q)
        in
        let values = Array.init nvars value_of in
        (* Undo the max->min sign flip and re-add the objective constant. *)
        let natural =
          let base = F.add value (F.of_rat (Q.mul obj_sign obj_const)) in
          match dir with `Minimize -> base | `Maximize -> F.neg base
        in
        Optimal { objective = natural; values }
    end

  exception Remap of string

  (* Express the node bounds [lb] / [ub] in the prepared form's column space
     as (lo, span) per column, or raise {!Remap} when the mapping cannot
     carry them (see {!prepared}). *)
  let overlay p ~lb ~ub =
    let ncols = Array.length p.p_cols in
    let lo = Array.make ncols Q.zero in
    (* slack / surplus / split columns keep their prepared spans; every
       mapped column below is overwritten from the node bounds *)
    let span = Array.copy p.p_ubs in
    for v = 0 to p.p_nvars - 1 do
      match p.p_mapping.(v) with
      | Fixed k -> (
        match (lb.(v), ub.(v)) with
        | Some l, Some u when Q.equal l k && Q.equal u k -> ()
        | _ -> raise (Remap "fixed variable came unfixed"))
      | Shifted (col, l_root) -> (
        match lb.(v) with
        | None -> raise (Remap "shifted variable lost its lower bound")
        | Some l' ->
          lo.(col) <- Q.sub l' l_root;
          span.(col) <-
            Option.map (fun u' -> F.of_rat (Q.sub u' l')) ub.(v))
      | Flipped (col, u_root) -> (
        match ub.(v) with
        | None -> raise (Remap "flipped variable lost its upper bound")
        | Some u' ->
          lo.(col) <- Q.sub u_root u';
          span.(col) <-
            Option.map (fun l' -> F.of_rat (Q.sub u' l')) lb.(v))
      | Split (_, _) ->
        if lb.(v) <> None || ub.(v) <> None then
          raise (Remap "free variable acquired a bound")
    done;
    (lo, span)

  let warm_solve ?max_iters ?deadline ~(basis : basis) p snap ~lb ~ub =
    match overlay p ~lb ~ub with
    | exception Remap reason -> Error reason
    | lo, span -> (
      let b_node = Array.copy p.p_b in
      Array.iteri
        (fun col l ->
          if Q.sign l <> 0 then begin
            let lf = F.of_rat l in
            Array.iter
              (fun (i, a) -> b_node.(i) <- F.sub b_node.(i) (F.mul a lf))
              p.p_cols.(col)
          end)
        lo;
      (* A warm repair normally needs a handful of dual pivots; one still
         going after a quarter of the pivots a cold solve would need is
         degenerate-stalling, and the cold solve is the cheaper way out —
         cap the budget and let the [`Cycled] -> [Stale] path fall back
         rather than burn the node deadline. *)
      let warm_cap =
        min (Option.value max_iters ~default:50_000)
          (max 100 (p.p_nrows / 4))
      in
      match
        Telemetry.span "lp.simplex.kernel" (fun () ->
            K.resolve_with_basis ~max_iters:warm_cap ?deadline ~nrows:p.p_nrows
              ~cols:p.p_cols ~b:b_node ~c:p.p_c ~ubs:span ~snapshot:snap ())
      with
      | Tableau.Stale reason -> Error reason
      | Tableau.Resolved (res, snap') ->
        (match snap' with
         | Some s -> basis.bs_snapshot <- Some s
         | None -> ());
        Ok
          (match res with
          | Tableau.Infeasible -> Infeasible
          | Tableau.Unbounded -> Unbounded
          | Tableau.Optimal (value, x) ->
            let value_of v =
              match p.p_mapping.(v) with
              | Fixed k -> F.of_rat k
              | Shifted (col, l) ->
                F.add (F.add x.(col) (F.of_rat lo.(col))) (F.of_rat l)
              | Flipped (col, u) ->
                F.sub (F.of_rat u) (F.add x.(col) (F.of_rat lo.(col)))
              | Split (pc, qc) -> F.sub x.(pc) x.(qc)
            in
            let values = Array.init p.p_nvars value_of in
            (* the kernel solved in shifted column space: undo the shift's
               contribution to the objective, then the max->min sign flip *)
            let shift_cost = ref F.zero in
            Array.iteri
              (fun col l ->
                if Q.sign l <> 0 then
                  shift_cost :=
                    F.add !shift_cost (F.mul p.p_c.(col) (F.of_rat l)))
              lo;
            let base =
              F.add
                (F.add value !shift_cost)
                (F.of_rat (Q.mul p.p_obj_sign p.p_obj_const))
            in
            let natural =
              match p.p_dir with `Minimize -> base | `Maximize -> F.neg base
            in
            Optimal { objective = natural; values }))

  let solve ?max_iters ?deadline ?bounds ?basis model =
    Telemetry.span "lp.simplex.solve" @@ fun () ->
    Telemetry.count "lp.simplex.relaxations";
    let lb, ub = effective_bounds ?bounds model in
    let nvars = Model.var_count model in
    let empty = ref false in
    for v = 0 to nvars - 1 do
      match (lb.(v), ub.(v)) with
      | Some l, Some u when Q.compare l u > 0 -> empty := true
      | _ -> ()
    done;
    if !empty then Infeasible
    else begin
      let cold capture =
        cold_solve ?max_iters ?deadline ?capture ~lb ~ub model
      in
      match basis with
      | None -> cold None
      | Some cell -> (
        match (cell.bs_prepared, cell.bs_snapshot) with
        | Some p, Some snap when p.p_nvars = nvars -> (
          match warm_solve ?max_iters ?deadline ~basis:cell p snap ~lb ~ub with
          | Ok outcome ->
            Telemetry.count "lp.bb.warm_hits";
            outcome
          | Error _reason ->
            (* stale basis or an overlay-incompatible bound change: full
               cold re-solve, refreshing the cell for the subtree below *)
            Telemetry.count "lp.bb.warm_fallbacks";
            cold (Some cell))
        | _ ->
          (* fresh cell: first solve just fills it, no fallback counted *)
          cold (Some cell))
    end
end

module Float_kernel = struct
  module F = Field.Approx

  let solve_cols = Tableau_float.solve_cols
  let resolve_with_basis = Tableau_float.resolve_with_basis
end

module Exact_kernel = struct
  module F = Field.Exact
  include Tableau.Make (Field.Exact)
end

module Float_driver = Make_driver (Float_kernel)
module Exact_driver = Make_driver (Exact_kernel)

type basis = Float_driver.basis

let new_basis = Float_driver.new_basis
let copy_basis = Float_driver.copy_basis

let solve_relaxation_float ?max_iters ?deadline ?bounds ?basis model =
  Float_driver.solve ?max_iters ?deadline ?bounds ?basis model

let solve_relaxation_exact ?max_iters ?deadline ?bounds model =
  Exact_driver.solve ?max_iters ?deadline ?bounds model
