module Q = Numeric.Rat

type outcome = Ok of int | Proved_infeasible

type bound = Finite of Q.t | Inf

let add_bound a b =
  match (a, b) with Finite x, Finite y -> Finite (Q.add x y) | _ -> Inf

(* Activity bounds of [expr] under current variable bounds: (min, max),
   where [Inf] means -inf for the min component and +inf for the max. *)
let activity model expr =
  let term v c (mn, mx) =
    let lb = Model.var_lb model v and ub = Model.var_ub model v in
    let lo, hi =
      if Q.sign c >= 0 then
        ( (match lb with Some l -> Finite (Q.mul c l) | None -> Inf),
          match ub with Some u -> Finite (Q.mul c u) | None -> Inf )
      else
        ( (match ub with Some u -> Finite (Q.mul c u) | None -> Inf),
          match lb with Some l -> Finite (Q.mul c l) | None -> Inf )
    in
    (add_bound mn lo, add_bound mx hi)
  in
  Linexpr.fold term expr (Finite Q.zero, Finite Q.zero)

exception Infeasible_found

let run ?(max_rounds = 10) model =
  let changes = ref 0 in
  let tighten_lb v cand =
    let cand = if Model.is_integer_var model v then Q.of_bigint (Q.ceil cand) else cand in
    let cur_lb = Model.var_lb model v and cur_ub = Model.var_ub model v in
    let better = match cur_lb with None -> true | Some l -> Q.compare cand l > 0 in
    if better then begin
      (match cur_ub with
       | Some u when Q.compare cand u > 0 -> raise Infeasible_found
       | Some _ | None -> ());
      Model.set_bounds model v (Some cand) cur_ub;
      incr changes
    end
  in
  let tighten_ub v cand =
    let cand = if Model.is_integer_var model v then Q.of_bigint (Q.floor cand) else cand in
    let cur_lb = Model.var_lb model v and cur_ub = Model.var_ub model v in
    let better = match cur_ub with None -> true | Some u -> Q.compare cand u < 0 in
    if better then begin
      (match cur_lb with
       | Some l when Q.compare cand l < 0 -> raise Infeasible_found
       | Some _ | None -> ());
      Model.set_bounds model v cur_lb (Some cand);
      incr changes
    end
  in
  (* Propagate one inequality [expr <= rhs]. For variable v with coeff c:
     c*x_v <= rhs - min_activity(expr - c*x_v). *)
  let propagate_le expr rhs =
    let mn_all, _ = activity model expr in
    (match mn_all with
     | Finite mn when Q.compare mn rhs > 0 -> raise Infeasible_found
     | Finite _ | Inf -> ());
    let handle v c () =
      let lb = Model.var_lb model v and ub = Model.var_ub model v in
      (* min activity of the rest = mn_all - contribution_min(v), valid only
         when v's own min contribution is finite. *)
      let own_min =
        if Q.sign c >= 0 then (match lb with Some l -> Some (Q.mul c l) | None -> None)
        else match ub with Some u -> Some (Q.mul c u) | None -> None
      in
      match (mn_all, own_min) with
      | Finite mn, Some own ->
        let rest = Q.sub mn own in
        let slack = Q.sub rhs rest in
        if Q.sign c > 0 then tighten_ub v (Q.div slack c)
        else if Q.sign c < 0 then tighten_lb v (Q.div slack c)
      | (Inf | Finite _), _ -> ()
    in
    Linexpr.fold (fun v c () -> handle v c ()) expr ()
  in
  let propagate _name expr sense rhs =
    match sense with
    | Model.Le -> propagate_le expr rhs
    | Model.Ge -> propagate_le (Linexpr.neg expr) (Q.neg rhs)
    | Model.Eq ->
      propagate_le expr rhs;
      propagate_le (Linexpr.neg expr) (Q.neg rhs)
  in
  try
    let round = ref 0 in
    let continue = ref true in
    while !continue && !round < max_rounds do
      incr round;
      let before = !changes in
      Model.iter_constraints model propagate;
      if !changes = before then continue := false
    done;
    Telemetry.count "lp.presolve.runs";
    Telemetry.count ~by:!round "lp.presolve.rounds";
    Telemetry.count ~by:!changes "lp.presolve.tightenings";
    Ok !changes
  with Infeasible_found ->
    Telemetry.count "lp.presolve.proved_infeasible";
    Proved_infeasible
