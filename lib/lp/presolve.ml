module Q = Numeric.Rat

type outcome = Ok of int | Proved_infeasible

type bound = Finite of Q.t | Inf

let add_bound a b =
  match (a, b) with Finite x, Finite y -> Finite (Q.add x y) | _ -> Inf

(* Activity bounds of [expr] under current variable bounds: (min, max),
   where [Inf] means -inf for the min component and +inf for the max. *)
let activity model expr =
  let term v c (mn, mx) =
    let lb = Model.var_lb model v and ub = Model.var_ub model v in
    let lo, hi =
      if Q.sign c >= 0 then
        ( (match lb with Some l -> Finite (Q.mul c l) | None -> Inf),
          match ub with Some u -> Finite (Q.mul c u) | None -> Inf )
      else
        ( (match ub with Some u -> Finite (Q.mul c u) | None -> Inf),
          match lb with Some l -> Finite (Q.mul c l) | None -> Inf )
    in
    (add_bound mn lo, add_bound mx hi)
  in
  Linexpr.fold term expr (Finite Q.zero, Finite Q.zero)

exception Infeasible_found

let run ?(max_rounds = 10) model =
  let changes = ref 0 in
  let rows_removed = ref 0 in
  let singleton_rows = ref 0 in
  let coeffs_tightened = ref 0 in
  let cols_fixed = ref 0 in
  let tighten_lb v cand =
    let cand = if Model.is_integer_var model v then Q.of_bigint (Q.ceil cand) else cand in
    let cur_lb = Model.var_lb model v and cur_ub = Model.var_ub model v in
    let better = match cur_lb with None -> true | Some l -> Q.compare cand l > 0 in
    if better then begin
      (match cur_ub with
       | Some u when Q.compare cand u > 0 -> raise Infeasible_found
       | Some _ | None -> ());
      Model.set_bounds model v (Some cand) cur_ub;
      incr changes
    end
  in
  let tighten_ub v cand =
    let cand = if Model.is_integer_var model v then Q.of_bigint (Q.floor cand) else cand in
    let cur_lb = Model.var_lb model v and cur_ub = Model.var_ub model v in
    let better = match cur_ub with None -> true | Some u -> Q.compare cand u < 0 in
    if better then begin
      (match cur_lb with
       | Some l when Q.compare cand l < 0 -> raise Infeasible_found
       | Some _ | None -> ());
      Model.set_bounds model v cur_lb (Some cand);
      incr changes
    end
  in
  (* [0, 1] integer variable that is not yet fixed — the only shape the
     coefficient-tightening argument below covers. *)
  let is_binary v =
    Model.is_integer_var model v
    && (match Model.var_lb model v with Some l -> Q.sign l = 0 | None -> false)
    && (match Model.var_ub model v with Some u -> Q.equal u Q.one | None -> false)
  in
  (* Row pass: constant and singleton rows become (nothing | a bound) and are
     dropped; rows whose activity range cannot violate them are dropped; on
     inequality rows, coefficients of binary variables are tightened.

     Removal stays valid for the whole branch-and-bound search because
     branching only shrinks bounds, which only shrinks activity ranges. *)
  let row_pass () =
    Model.filter_map_constraints model (fun _name expr sense rhs ->
        match Linexpr.terms expr with
        | [] ->
          let sat =
            match sense with
            | Model.Le -> Q.sign rhs >= 0
            | Model.Ge -> Q.sign rhs <= 0
            | Model.Eq -> Q.sign rhs = 0
          in
          if not sat then raise Infeasible_found;
          incr rows_removed;
          incr changes;
          None
        | [ (v, c) ] ->
          let q = Q.div rhs c in
          (match sense with
           | Model.Le -> if Q.sign c > 0 then tighten_ub v q else tighten_lb v q
           | Model.Ge -> if Q.sign c > 0 then tighten_lb v q else tighten_ub v q
           | Model.Eq ->
             tighten_lb v q;
             tighten_ub v q);
          incr singleton_rows;
          incr rows_removed;
          incr changes;
          None
        | _ ->
          let mn, mx = activity model expr in
          let le_redundant =
            match mx with Finite x -> Q.compare x rhs <= 0 | Inf -> false
          in
          let ge_redundant =
            match mn with Finite x -> Q.compare x rhs >= 0 | Inf -> false
          in
          let redundant =
            match sense with
            | Model.Le -> le_redundant
            | Model.Ge -> ge_redundant
            | Model.Eq -> le_redundant && ge_redundant
          in
          if redundant then begin
            incr rows_removed;
            incr changes;
            None
          end
          else begin
            match sense with
            | Model.Eq -> Some (expr, sense, rhs)
            | Model.Le | Model.Ge ->
              (* Work in <= form: [e <= b] with max activity [mx]. For a
                 binary x with coefficient a and gap = mx - b > 0:
                 - a > gap > 0: replace (a, b) by (gap, mx - a). At x = 1
                   both forms say rest <= b - a; at x = 0 the new row says
                   rest <= mx - a, which every point within bounds already
                   satisfies — so no integer point is cut, but the LP
                   relaxation is strictly tighter (big-M reduction).
                 - a < -gap < 0: the same rule on the complement 1 - x
                   gives (-(gap), b) with the rhs unchanged. *)
              let e0, b0, mx0 =
                match sense with
                | Model.Le -> (expr, rhs, mx)
                | Model.Ge -> (Linexpr.neg expr, Q.neg rhs, match mn with
                    | Finite x -> Finite (Q.neg x)
                    | Inf -> Inf)
                | Model.Eq -> assert false
              in
              (match mx0 with
               | Inf -> Some (expr, sense, rhs)
               | Finite mx0 ->
                 let e = ref e0 and b = ref b0 and mx = ref mx0 in
                 let changed = ref false in
                 List.iter
                   (fun (v, _) ->
                     if is_binary v then begin
                       let a = Linexpr.coeff !e v in
                       let gap = Q.sub !mx !b in
                       if Q.sign gap > 0 then
                         if Q.sign a > 0 && Q.compare gap a < 0 then begin
                           let b' = Q.sub !mx a in
                           e := Linexpr.add_term !e (Q.sub gap a) v;
                           mx := Q.add b' gap;
                           b := b';
                           changed := true;
                           incr coeffs_tightened;
                           incr changes
                         end
                         else if Q.sign a < 0 && Q.compare gap (Q.neg a) < 0
                         then begin
                           e := Linexpr.add_term !e (Q.sub (Q.neg gap) a) v;
                           changed := true;
                           incr coeffs_tightened;
                           incr changes
                         end
                     end)
                   (Linexpr.terms e0);
                 if not !changed then Some (expr, sense, rhs)
                 else
                   match sense with
                   | Model.Le -> Some (!e, Model.Le, !b)
                   | Model.Ge -> Some (Linexpr.neg !e, Model.Ge, Q.neg !b)
                   | Model.Eq -> assert false)
          end)
  in
  (* Propagate one inequality [expr <= rhs]. For variable v with coeff c:
     c*x_v <= rhs - min_activity(expr - c*x_v). *)
  let propagate_le expr rhs =
    let mn_all, _ = activity model expr in
    (match mn_all with
     | Finite mn when Q.compare mn rhs > 0 -> raise Infeasible_found
     | Finite _ | Inf -> ());
    let handle v c () =
      let lb = Model.var_lb model v and ub = Model.var_ub model v in
      (* min activity of the rest = mn_all - contribution_min(v), valid only
         when v's own min contribution is finite. *)
      let own_min =
        if Q.sign c >= 0 then (match lb with Some l -> Some (Q.mul c l) | None -> None)
        else match ub with Some u -> Some (Q.mul c u) | None -> None
      in
      match (mn_all, own_min) with
      | Finite mn, Some own ->
        let rest = Q.sub mn own in
        let slack = Q.sub rhs rest in
        if Q.sign c > 0 then tighten_ub v (Q.div slack c)
        else if Q.sign c < 0 then tighten_lb v (Q.div slack c)
      | (Inf | Finite _), _ -> ()
    in
    Linexpr.fold (fun v c () -> handle v c ()) expr ()
  in
  let propagate _name expr sense rhs =
    match sense with
    | Model.Le -> propagate_le expr rhs
    | Model.Ge -> propagate_le (Linexpr.neg expr) (Q.neg rhs)
    | Model.Eq ->
      propagate_le expr rhs;
      propagate_le (Linexpr.neg expr) (Q.neg rhs)
  in
  (* Duality fixing (one-sided dominated columns): if moving a variable
     towards one of its finite bounds can never violate any constraint and
     never worsens the objective, fix it there. The optimal value is
     preserved (some alternative optima may be cut), and branch-and-bound
     never branches on a fixed variable, so the fixing survives the whole
     search. *)
  let duality_pass () =
    let nv = Model.var_count model in
    let can_up = Array.make nv true and can_down = Array.make nv true in
    Model.iter_constraints model (fun _ expr sense _ ->
        Linexpr.fold
          (fun v c () ->
            match sense with
            | Model.Le ->
              if Q.sign c > 0 then can_up.(v) <- false
              else if Q.sign c < 0 then can_down.(v) <- false
            | Model.Ge ->
              if Q.sign c > 0 then can_down.(v) <- false
              else if Q.sign c < 0 then can_up.(v) <- false
            | Model.Eq ->
              if Q.sign c <> 0 then begin
                can_up.(v) <- false;
                can_down.(v) <- false
              end)
          expr ());
    let dir, obj = Model.objective model in
    for v = 0 to nv - 1 do
      let lb = Model.var_lb model v and ub = Model.var_ub model v in
      let fixed =
        match (lb, ub) with Some l, Some u -> Q.equal l u | _ -> false
      in
      if not fixed then begin
        let c =
          let c = Linexpr.coeff obj v in
          match dir with `Minimize -> c | `Maximize -> Q.neg c
        in
        if Q.sign c >= 0 && can_down.(v) then (
          match lb with
          | Some l ->
            Model.set_bounds model v (Some l) (Some l);
            incr cols_fixed;
            incr changes
          | None -> ())
        else if Q.sign c <= 0 && can_up.(v) then
          match ub with
          | Some u ->
            Model.set_bounds model v (Some u) (Some u);
            incr cols_fixed;
            incr changes
          | None -> ()
      end
    done
  in
  try
    let round = ref 0 in
    let continue_ = ref true in
    while !continue_ && !round < max_rounds do
      incr round;
      let before = !changes in
      row_pass ();
      Model.iter_constraints model propagate;
      duality_pass ();
      if !changes = before then continue_ := false
    done;
    Telemetry.count "lp.presolve.runs";
    Telemetry.count ~by:!round "lp.presolve.rounds";
    Telemetry.count ~by:!changes "lp.presolve.tightenings";
    Telemetry.count ~by:!rows_removed "lp.presolve.rows_removed";
    Telemetry.count ~by:!singleton_rows "lp.presolve.singleton_rows";
    Telemetry.count ~by:!coeffs_tightened "lp.presolve.coeffs_tightened";
    Telemetry.count ~by:!cols_fixed "lp.presolve.cols_fixed";
    Ok !changes
  with Infeasible_found ->
    Telemetry.count "lp.presolve.proved_infeasible";
    Proved_infeasible
