(** Mixed-integer linear program builder.

    A model owns a growing set of variables (continuous, integer or binary,
    with optional bounds), a list of linear constraints and one objective.
    It is the interface between the synthesis front-end ({!Cohls.Ilp_model})
    and the solver back-ends ({!Simplex}, {!Branch_bound}). *)

type sense = Le | Ge | Eq

type var_kind = Continuous | Integer | Binary

type t

type var = int
(** Dense variable ids, as used by {!Linexpr}. *)

val create : ?name:string -> unit -> t

val add_var :
  t ->
  ?lb:Numeric.Rat.t ->
  ?ub:Numeric.Rat.t ->
  ?kind:var_kind ->
  string ->
  var
(** Defaults: [lb = 0], [ub] absent (+∞), [kind = Continuous]. A [Binary]
    variable forces bounds [0, 1] and integrality. *)

val add_constr : t -> ?name:string -> Linexpr.t -> sense -> Linexpr.t -> unit
(** [add_constr m lhs sense rhs]; constants on both sides are folded. *)

val set_objective : t -> [ `Minimize | `Maximize ] -> Linexpr.t -> unit
(** Default objective is [Minimize 0]. *)

val var_count : t -> int
val constr_count : t -> int
val var_name : t -> var -> string
val var_kind : t -> var -> var_kind
val var_lb : t -> var -> Numeric.Rat.t option
val var_ub : t -> var -> Numeric.Rat.t option
val set_bounds : t -> var -> Numeric.Rat.t option -> Numeric.Rat.t option -> unit
val is_integer_var : t -> var -> bool

val objective : t -> [ `Minimize | `Maximize ] * Linexpr.t

val constraints : t -> (string * Linexpr.t * sense * Numeric.Rat.t) list
(** Normalised to [expr sense rhs-constant] with the expression carrying no
    constant part. *)

val iter_constraints : t -> (string -> Linexpr.t -> sense -> Numeric.Rat.t -> unit) -> unit

val filter_map_constraints :
  t ->
  (string ->
  Linexpr.t ->
  sense ->
  Numeric.Rat.t ->
  (Linexpr.t * sense * Numeric.Rat.t) option) ->
  unit
(** In-place constraint rewrite: the callback returns [None] to drop a row
    or [Some (expr, sense, rhs)] to replace it (name kept). Used by
    {!Presolve} for redundant-row removal and coefficient tightening. *)

val check_feasible :
  t -> ?tol:float -> (var -> float) -> (string * float) list
(** Violated constraints/bounds for a candidate assignment ([name, amount]);
    empty means feasible within [tol] (default 1e-6). Integrality of integer
    variables is checked too. *)

val eval_objective : t -> (var -> float) -> float
(** Objective value of an assignment, sign-adjusted so that *smaller is
    better* regardless of min/max sense is NOT applied: returns the natural
    objective value. *)

val name : t -> string
val pp_stats : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
(** CPLEX-LP-style textual dump, for debugging and golden tests. *)
