(* Float-specialised copy of the bounded-variable simplex kernel in
   {!Tableau.Make}.

   The functorised kernel pays an indirect call and a float box per
   arithmetic operation (this switch has no flambda, so [Field.S] calls are
   never inlined and ['a array] never unboxes), which dominates the
   per-pivot cost on the branch-and-bound relaxations. This copy hardcodes
   [t = float] so every hot array is an unboxed [float array] and every
   comparison is inline, and is what {!Simplex.Float_driver} actually runs;
   the exact-rational driver stays on the functor. The algorithm — crash
   basis, two phases, bounded-variable ratio test with bound flips,
   fill-avoiding refactorisation, steepest-edge-lite pricing with Bland
   fallback — mirrors [tableau.ml] statement for statement; keep the two in
   sync (the exact-vs-float property test in [test_lp.ml] cross-checks
   them on random models). Tolerances match {!Field.Approx} ([eps = 1e-9]). *)

let eps = 1e-9

type eta = {
  e_row : int;
  e_pivot : float;  (* 1 / alpha_r *)
  e_idx : int array;  (* rows i <> e_row with nonzero alpha_i *)
  e_val : float array;  (* -alpha_i / alpha_r, parallel to [e_idx] *)
}

let dummy_eta = { e_row = 0; e_pivot = 1.0; e_idx = [||]; e_val = [||] }

type state = {
  m : int;
  n : int;
  cidx : int array array;  (* structural columns: row indices *)
  cval : float array array;  (* structural columns: coefficients *)
  ubs : float array;  (* upper bound per structural column, [infinity] = none *)
  at_ub : bool array;
  weight : float array;
  basis : int array;
  pos : int array;
  x_b : float array;
  b : float array;
  mutable etas : eta array;
  mutable n_etas : int;
  mutable factor_etas : int;
}

let clamp x = if Float.abs x <= eps then 0.0 else x
let fcmp a b = if Float.abs (a -. b) <= eps then 0 else Float.compare a b
let ub_of st j = if j < st.n then st.ubs.(j) else infinity

let push_eta st e =
  if st.n_etas = Array.length st.etas then begin
    let bigger = Array.make (max 16 (2 * st.n_etas)) e in
    Array.blit st.etas 0 bigger 0 st.n_etas;
    st.etas <- bigger
  end;
  st.etas.(st.n_etas) <- e;
  st.n_etas <- st.n_etas + 1

let ftran st v =
  for t = 0 to st.n_etas - 1 do
    let e = st.etas.(t) in
    let x = v.(e.e_row) in
    if Float.abs x > eps then begin
      v.(e.e_row) <- e.e_pivot *. x;
      let idx = e.e_idx and vl = e.e_val in
      for k = 0 to Array.length idx - 1 do
        v.(idx.(k)) <- v.(idx.(k)) +. (vl.(k) *. x)
      done
    end
  done

let btran st y =
  for t = st.n_etas - 1 downto 0 do
    let e = st.etas.(t) in
    let acc = ref (e.e_pivot *. y.(e.e_row)) in
    let idx = e.e_idx and vl = e.e_val in
    for k = 0 to Array.length idx - 1 do
      acc := !acc +. (vl.(k) *. y.(idx.(k)))
    done;
    y.(e.e_row) <- clamp !acc
  done

let scatter st j v =
  if j < st.n then begin
    let idx = st.cidx.(j) and vl = st.cval.(j) in
    for k = 0 to Array.length idx - 1 do
      v.(idx.(k)) <- vl.(k)
    done
  end
  else v.(j - st.n) <- 1.0

let eta_of_alpha ~row alpha =
  let ar = alpha.(row) in
  let m = Array.length alpha in
  let cnt = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs alpha.(i) > eps then incr cnt
  done;
  let idx = Array.make !cnt 0 and vl = Array.make !cnt 0.0 in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs alpha.(i) > eps then begin
      idx.(!k) <- i;
      vl.(!k) <- -.(alpha.(i) /. ar);
      incr k
    end
  done;
  { e_row = row; e_pivot = 1.0 /. ar; e_idx = idx; e_val = vl }

let pivot st ~row ~col ~t ~dir ~enter_val alpha =
  let step = t *. dir in
  push_eta st (eta_of_alpha ~row alpha);
  for i = 0 to st.m - 1 do
    if i <> row && Float.abs alpha.(i) > eps then
      st.x_b.(i) <- clamp (st.x_b.(i) -. (step *. alpha.(i)))
  done;
  st.x_b.(row) <- clamp (enter_val +. step);
  st.pos.(st.basis.(row)) <- -1;
  st.basis.(row) <- col;
  st.pos.(col) <- row

(* See [Tableau.Make.refactor]: identity-like columns first, then dynamic
   row-singleton elimination, then a dense sweep over the residual bump. *)
let refactor st refactorisations =
  let rt0 = Telemetry.Clock.now_s () in
  st.n_etas <- 0;
  incr refactorisations;
  let order = Array.copy st.basis in
  let taken = Array.make st.m false in
  let placed = Array.make st.m false in
  let v = Array.make st.m 0.0 in
  let place t col row =
    taken.(row) <- true;
    placed.(t) <- true;
    st.basis.(row) <- col
  in
  let pivot_full t col ~row_hint =
    Array.fill v 0 st.m 0.0;
    scatter st col v;
    ftran st v;
    let row =
      match row_hint with
      | Some r when Float.abs v.(r) > eps -> r
      | _ ->
        let best = ref (-1) and best_mag = ref 0.0 in
        for i = 0 to st.m - 1 do
          if (not taken.(i)) && Float.abs v.(i) > eps then begin
            let mag = Float.abs v.(i) in
            if !best < 0 || mag > !best_mag then begin
              best := i;
              best_mag := mag
            end
          end
        done;
        if !best < 0 then failwith "Tableau_float: singular basis on refactorisation";
        !best
    in
    push_eta st (eta_of_alpha ~row v);
    place t col row
  in
  Array.iteri
    (fun t col ->
      if col >= st.n then begin
        let r = col - st.n in
        if not taken.(r) then place t col r
      end
      else if Array.length st.cidx.(col) = 1 then begin
        let r = st.cidx.(col).(0) in
        if not taken.(r) then begin
          let a = st.cval.(col).(0) in
          if fcmp a 1.0 <> 0 then
            push_eta st { e_row = r; e_pivot = 1.0 /. a; e_idx = [||]; e_val = [||] };
          place t col r
        end
      end)
    order;
  let row_count = Array.make st.m 0 in
  let row_cols = Array.make st.m [] in
  Array.iteri
    (fun t col ->
      if not placed.(t) then
        Array.iter
          (fun i ->
            if not taken.(i) then begin
              row_count.(i) <- row_count.(i) + 1;
              row_cols.(i) <- t :: row_cols.(i)
            end)
          st.cidx.(col))
    order;
  let queue = Queue.create () in
  for i = 0 to st.m - 1 do
    if (not taken.(i)) && row_count.(i) = 1 then Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let r = Queue.take queue in
    if (not taken.(r)) && row_count.(r) = 1 then
      match List.find_opt (fun t -> not placed.(t)) row_cols.(r) with
      | None -> ()
      | Some t ->
        let col = order.(t) in
        pivot_full t col ~row_hint:(Some r);
        Array.iter
          (fun i ->
            if not taken.(i) then begin
              row_count.(i) <- row_count.(i) - 1;
              if row_count.(i) = 1 then Queue.add i queue
            end)
          st.cidx.(col)
  done;
  let bump = ref [] in
  Array.iteri (fun t _ -> if not placed.(t) then bump := t :: !bump) order;
  let bump =
    List.sort
      (fun t1 t2 ->
        compare (Array.length st.cidx.(order.(t1))) (Array.length st.cidx.(order.(t2))))
      !bump
  in
  List.iter (fun t -> pivot_full t order.(t) ~row_hint:None) bump;
  Array.fill st.pos 0 (st.n + st.m) (-1);
  Array.iteri (fun i col -> st.pos.(col) <- i) st.basis;
  Array.blit st.b 0 st.x_b 0 st.m;
  for j = 0 to st.n - 1 do
    if st.pos.(j) < 0 && st.at_ub.(j) then begin
      let u = st.ubs.(j) in
      let idx = st.cidx.(j) and vl = st.cval.(j) in
      for k = 0 to Array.length idx - 1 do
        st.x_b.(idx.(k)) <- st.x_b.(idx.(k)) -. (vl.(k) *. u)
      done
    end
  done;
  ftran st st.x_b;
  for i = 0 to st.m - 1 do
    st.x_b.(i) <- clamp st.x_b.(i)
  done;
  st.factor_etas <- st.n_etas;
  Telemetry.observe "lp.simplex.refactor_s" (Telemetry.Clock.now_s () -. rt0)

(* See [Tableau.Make.entering]; [c_of] is split into the structural cost
   array and the phase flag so the reduced-cost loop stays allocation-free. *)
let entering st ~c ~phase2 ~bland ~y alpha =
  for i = 0 to st.m - 1 do
    let bv = st.basis.(i) in
    y.(i) <-
      (if phase2 then if bv < st.n then c.(bv) else 0.0
       else if bv >= st.n then 1.0
       else 0.0)
  done;
  btran st y;
  let reduced j =
    let s = ref (if phase2 then c.(j) else 0.0) in
    let idx = st.cidx.(j) and vl = st.cval.(j) in
    for k = 0 to Array.length idx - 1 do
      s := !s -. (vl.(k) *. y.(idx.(k)))
    done;
    !s
  in
  (* Zero-span columns (variables fixed by a branching bound change in a
     warm re-solve) can neither step nor flip, so they never enter. *)
  let eligible j d =
    st.ubs.(j) > eps && if st.at_ub.(j) then d > eps else d < -.eps
  in
  let chosen =
    if bland then begin
      let rec go j =
        if j >= st.n then -1
        else if st.pos.(j) < 0 && eligible j (reduced j) then j
        else go (j + 1)
      in
      go 0
    end
    else begin
      let best = ref (-1) and best_score = ref 0.0 in
      for j = 0 to st.n - 1 do
        if st.pos.(j) < 0 then begin
          let d = reduced j in
          if eligible j d then begin
            let score = d *. d /. st.weight.(j) in
            if score > !best_score then begin
              best := j;
              best_score := score
            end
          end
        end
      done;
      !best
    end
  in
  if chosen < 0 then None
  else begin
    Array.fill alpha 0 st.m 0.0;
    scatter st chosen alpha;
    ftran st alpha;
    Some (chosen, if st.at_ub.(chosen) then -1.0 else 1.0)
  end

type step =
  | Flip
  | Leave of { row : int; t : float; to_ub : bool }
  | Unbounded_dir

(* See [Tableau.Make.ratio_test]. *)
let ratio_test st alpha ~dir ~span ~phase2 =
  let best = ref (-1) in
  let best_ratio = ref 0.0 in
  let best_to_ub = ref false in
  let best_art = ref false in
  for i = 0 to st.m - 1 do
    let aeff = dir *. alpha.(i) in
    if Float.abs aeff > eps then begin
      let bv = st.basis.(i) in
      let art = bv >= st.n in
      let candidate ratio to_ub =
        let better =
          !best < 0
          || fcmp ratio !best_ratio < 0
          || (fcmp ratio !best_ratio = 0
              && ((art && not !best_art)
                  || (art = !best_art && bv < st.basis.(!best))))
        in
        if better then begin
          best := i;
          best_ratio := ratio;
          best_to_ub := to_ub;
          best_art := art
        end
      in
      if aeff > eps then candidate (st.x_b.(i) /. aeff) false
      else begin
        let u = ub_of st bv in
        if u < infinity then candidate ((u -. st.x_b.(i)) /. -.aeff) true
        else if phase2 && art && Float.abs st.x_b.(i) <= eps then candidate 0.0 false
      end
    end
  done;
  if !best < 0 then if span < infinity then Flip else Unbounded_dir
  else if span < infinity && fcmp span !best_ratio <= 0 then Flip
  else Leave { row = !best; t = !best_ratio; to_ub = !best_to_ub }

let run_phase st ~c ~phase2 ~max_iters ~iter_count ~deadline ~pivots
    ~bland_pivots ~flips ~refactorisations alpha =
  let switch = 3 * (st.m + st.n) in
  let refactor_limit = min 150 (50 + (st.m / 4)) in
  let y = Array.make st.m 0.0 in
  let rec loop () =
    if !iter_count > max_iters then failwith "Tableau: iteration limit exceeded";
    (match deadline with
     | Some t when !iter_count land 15 = 0 && Telemetry.Clock.now_s () > t ->
       Telemetry.count "lp.simplex.deadline_aborts";
       raise Tableau.Deadline_exceeded
     | Some _ | None -> ());
    incr iter_count;
    if st.n_etas - st.factor_etas > refactor_limit then refactor st refactorisations;
    let bland = !iter_count > switch in
    match entering st ~c ~phase2 ~bland ~y alpha with
    | None -> `Optimal
    | Some (col, dir) -> begin
      let span = st.ubs.(col) in
      match ratio_test st alpha ~dir ~span ~phase2 with
      | Unbounded_dir -> `Unbounded
      | Flip ->
        let step = span *. dir in
        for i = 0 to st.m - 1 do
          if Float.abs alpha.(i) > eps then
            st.x_b.(i) <- clamp (st.x_b.(i) -. (step *. alpha.(i)))
        done;
        st.at_ub.(col) <- not st.at_ub.(col);
        incr flips;
        loop ()
      | Leave { row; t; to_ub } ->
        let leaving = st.basis.(row) in
        let enter_val = if st.at_ub.(col) then st.ubs.(col) else 0.0 in
        pivot st ~row ~col ~t ~dir ~enter_val alpha;
        st.at_ub.(col) <- false;
        if leaving < st.n then st.at_ub.(leaving) <- to_ub;
        incr pivots;
        if bland then incr bland_pivots;
        loop ()
    end
  in
  loop ()

(* See [Tableau.Make.drive_out_artificials]. *)
let drive_out_artificials st ~pivots =
  let rho = Array.make st.m 0.0 in
  let alpha = Array.make st.m 0.0 in
  for i = 0 to st.m - 1 do
    if st.basis.(i) >= st.n then begin
      Array.fill rho 0 st.m 0.0;
      rho.(i) <- 1.0;
      btran st rho;
      let row_entry j =
        let s = ref 0.0 in
        let idx = st.cidx.(j) and vl = st.cval.(j) in
        for k = 0 to Array.length idx - 1 do
          s := !s +. (vl.(k) *. rho.(idx.(k)))
        done;
        !s
      in
      let rec find j =
        if j >= st.n then -1
        else if st.pos.(j) < 0 && Float.abs (row_entry j) > eps then j
        else find (j + 1)
      in
      let col = find 0 in
      if col >= 0 then begin
        Array.fill alpha 0 st.m 0.0;
        scatter st col alpha;
        ftran st alpha;
        if Float.abs alpha.(i) > eps then begin
          let enter_val = if st.at_ub.(col) then st.ubs.(col) else 0.0 in
          pivot st ~row:i ~col ~t:0.0 ~dir:1.0 ~enter_val alpha;
          st.at_ub.(col) <- false;
          incr pivots
        end
      end
    end
  done

(* See [Tableau.Make.dual_phase]: bound-ratio pricing of the most infeasible
   basic variable, then a bound-flipping (long-step) dual ratio test over
   the nonbasic structural columns. Artificials are pinned to [0, 0] so a
   basic artificial driven nonzero by the child rhs registers as a
   violation to repair; an exhausted ratio test is a genuine infeasibility
   certificate. *)
let dual_phase st ~c ~max_iters ~iter_count ~deadline ~dual_pivots ~flips
    ~refactorisations alpha =
  let refactor_limit = min 150 (50 + (st.m / 4)) in
  let y = Array.make st.m 0.0 in
  let rho = Array.make st.m 0.0 in
  let delta = Array.make st.m 0.0 in
  let cand = Array.make st.n 0 in
  let cand_ratio = Array.make st.n 0.0 in
  let cand_arj = Array.make st.n 0.0 in
  let hi_of bv = if bv < st.n then st.ubs.(bv) else 0.0 in
  let rec loop () =
    if !iter_count > max_iters then `Cycled
    else begin
      (match deadline with
       | Some t when !iter_count land 15 = 0 && Telemetry.Clock.now_s () > t ->
         Telemetry.count "lp.simplex.deadline_aborts";
         raise Tableau.Deadline_exceeded
       | Some _ | None -> ());
      incr iter_count;
      if st.n_etas - st.factor_etas > refactor_limit then
        refactor st refactorisations;
      (* Bound-ratio pricing of the infeasible basic variables. *)
      let row = ref (-1) and score = ref 0.0 and above = ref false in
      for i = 0 to st.m - 1 do
        let bv = st.basis.(i) in
        let hi = hi_of bv in
        let viol, ab =
          if st.x_b.(i) < -.eps then (-.st.x_b.(i), false)
          else if st.x_b.(i) > hi +. eps then (st.x_b.(i) -. hi, true)
          else (0.0, false)
        in
        if viol > 0.0 then begin
          let w = if bv < st.n then st.weight.(bv) else 2.0 in
          let s = viol *. viol /. w in
          if s > !score then begin
            row := i;
            score := s;
            above := ab
          end
        end
      done;
      if !row < 0 then `Primal_feasible
      else begin
        let r = !row in
        let leaving = st.basis.(r) in
        Array.fill rho 0 st.m 0.0;
        rho.(r) <- 1.0;
        btran st rho;
        for i = 0 to st.m - 1 do
          let bv = st.basis.(i) in
          y.(i) <- (if bv < st.n then c.(bv) else 0.0)
        done;
        btran st y;
        (* Collect every sign-eligible nonbasic structural column with its
           dual ratio |d_j| / |alpha_rj|. *)
        let ncand = ref 0 in
        for j = 0 to st.n - 1 do
          if st.pos.(j) < 0 && st.ubs.(j) > eps then begin
            let arj = ref 0.0 and dj = ref c.(j) in
            let idx = st.cidx.(j) and vl = st.cval.(j) in
            for k = 0 to Array.length idx - 1 do
              arj := !arj +. (vl.(k) *. rho.(idx.(k)));
              dj := !dj -. (vl.(k) *. y.(idx.(k)))
            done;
            let arj = !arj in
            let eligible =
              if !above then
                if st.at_ub.(j) then arj < -.eps else arj > eps
              else if st.at_ub.(j) then arj > eps
              else arj < -.eps
            in
            if eligible then begin
              cand.(!ncand) <- j;
              cand_ratio.(!ncand) <- Float.abs !dj /. Float.abs arj;
              cand_arj.(!ncand) <- arj;
              incr ncand
            end
          end
        done;
        if !ncand = 0 then `Dual_unbounded
        else begin
          (* Bound-flipping ratio test: walk the candidates in ratio order.
             Passing a boxed candidate's breakpoint flips it to its other
             bound (its reduced cost changes sign there, which is only dual
             feasible at the opposite bound) and reduces the violation slope
             by span * |alpha_rj|; the candidate where the slope would hit
             zero becomes the pivot. Exhausting all breakpoints with slope
             remaining is dual unboundedness, i.e. primal infeasibility. *)
          let order = Array.init !ncand Fun.id in
          Array.sort
            (fun a b ->
              let cr = Float.compare cand_ratio.(a) cand_ratio.(b) in
              if cr <> 0 then cr
              else
                let cm =
                  Float.compare (Float.abs cand_arj.(b))
                    (Float.abs cand_arj.(a))
                in
                if cm <> 0 then cm else compare cand.(a) cand.(b))
            order;
          let target = if !above then hi_of leaving else 0.0 in
          let viol = ref (Float.abs (st.x_b.(r) -. target)) in
          let nflip = ref 0 in
          let enter = ref (-1) in
          let k = ref 0 in
          while !enter < 0 && !k < !ncand do
            let ci = order.(!k) in
            let j = cand.(ci) in
            let drop = st.ubs.(j) *. Float.abs cand_arj.(ci) in
            if drop < !viol -. eps then begin
              (* flip past this breakpoint, keep walking *)
              order.(!nflip) <- ci;
              incr nflip;
              viol := !viol -. drop
            end
            else enter := j;
            incr k
          done;
          if !enter < 0 then `Dual_unbounded
          else begin
            (* Apply the accumulated flips with one FTRAN: the raw flipped
               columns sum into [delta] and x_B -= B^-1 delta. *)
            if !nflip > 0 then begin
              Array.fill delta 0 st.m 0.0;
              for f = 0 to !nflip - 1 do
                let j = cand.(order.(f)) in
                let u = st.ubs.(j) in
                let fstep = if st.at_ub.(j) then -.u else u in
                let idx = st.cidx.(j) and vl = st.cval.(j) in
                for t = 0 to Array.length idx - 1 do
                  delta.(idx.(t)) <- delta.(idx.(t)) +. (fstep *. vl.(t))
                done;
                st.at_ub.(j) <- not st.at_ub.(j);
                incr flips
              done;
              ftran st delta;
              for i = 0 to st.m - 1 do
                if Float.abs delta.(i) > eps then
                  st.x_b.(i) <- clamp (st.x_b.(i) -. delta.(i))
              done
            end;
            let j = !enter in
            Array.fill alpha 0 st.m 0.0;
            scatter st j alpha;
            ftran st alpha;
            let arj = alpha.(r) in
            if Float.abs arj <= eps then `Numerical
            else begin
              let step = (st.x_b.(r) -. target) /. arj in
              (* the pricing row (from BTRAN of e_r) and the FTRAN'd column
                 must agree on the step direction, and after the flips the
                 step must fit the entering span; drift on either means the
                 eta file has gone numerically stale *)
              let dir_ok =
                if st.at_ub.(j) then step <= eps else step >= -.eps
              in
              if not dir_ok then `Numerical
              else if
                Float.abs step > st.ubs.(j) +. (1e-7 *. Float.max 1.0 st.ubs.(j))
              then `Numerical
              else begin
                let enter_val = if st.at_ub.(j) then st.ubs.(j) else 0.0 in
                pivot st ~row:r ~col:j ~t:step ~dir:1.0 ~enter_val alpha;
                st.at_ub.(j) <- false;
                if leaving < st.n then st.at_ub.(leaving) <- !above;
                incr dual_pivots;
                loop ()
              end
            end
          end
        end
      end
    end
  in
  loop ()

let resolve_with_basis ?(max_iters = 50_000) ?deadline ~nrows:m ~cols ~b ~c
    ~ubs ~snapshot () =
  let n = Array.length cols in
  if Array.length b <> m then invalid_arg "Tableau.resolve: b length";
  if Array.length c <> n then invalid_arg "Tableau.resolve: c length";
  if Array.length ubs <> n then invalid_arg "Tableau.resolve: ubs length";
  if
    Array.length snapshot.Tableau.s_basis <> m
    || Array.length snapshot.Tableau.s_at_ub <> n
  then invalid_arg "Tableau.resolve: snapshot shape";
  (* A negative span means the node fixed a variable to an impossible
     range: the subproblem is infeasible before any pivoting. *)
  if Array.exists (function Some u -> u < -.eps | None -> false) ubs then
    Tableau.Resolved (Tableau.Infeasible, None)
  else begin
    let ub_arr = Array.make n infinity in
    Array.iteri
      (fun j uo ->
        match uo with Some x -> ub_arr.(j) <- Float.max x 0.0 | None -> ())
      ubs;
    let cidx = Array.map (fun col -> Array.map fst col) cols in
    let cval = Array.map (fun col -> Array.map snd col) cols in
    let weight =
      Array.map
        (fun vl -> Array.fold_left (fun acc x -> acc +. (x *. x)) 1.0 vl)
        cval
    in
    let basis = Array.copy snapshot.Tableau.s_basis in
    let at_ub = Array.copy snapshot.Tableau.s_at_ub in
    let pos = Array.make (n + m) (-1) in
    let sane = ref true in
    Array.iteri
      (fun i colid ->
        if colid < 0 || colid >= n + m || pos.(colid) >= 0 then sane := false
        else pos.(colid) <- i)
      basis;
    for j = 0 to n - 1 do
      if at_ub.(j) && (pos.(j) >= 0 || ub_arr.(j) = infinity) then
        at_ub.(j) <- false
    done;
    if not !sane then Tableau.Stale "corrupt basis snapshot"
    else begin
      let st =
        {
          m;
          n;
          cidx;
          cval;
          ubs = ub_arr;
          at_ub;
          weight;
          basis;
          pos;
          x_b = Array.make m 0.0;
          b = Array.copy b;
          etas = [| dummy_eta |];
          n_etas = 0;
          factor_etas = 0;
        }
      in
      let pivots = ref 0
      and bland_pivots = ref 0
      and flips = ref 0
      and dual_pivots = ref 0
      and refactorisations = ref 0 in
      let flush () =
        Telemetry.count "lp.simplex.warm_solves";
        Telemetry.count ~by:!pivots "lp.simplex.pivots";
        Telemetry.count ~by:!dual_pivots "lp.simplex.dual_pivots";
        Telemetry.count ~by:!bland_pivots "lp.simplex.bland_pivots";
        Telemetry.count ~by:!flips "lp.simplex.bound_flips";
        Telemetry.count ~by:!refactorisations "lp.simplex.refactorisations"
      in
      Fun.protect ~finally:flush @@ fun () ->
      let iter_count = ref 0 in
      let alpha = Array.make m 0.0 in
      match
        (try
           refactor st refactorisations;
           dual_phase st ~c ~max_iters ~iter_count ~deadline ~dual_pivots
             ~flips ~refactorisations alpha
         with Failure msg -> `Failed msg)
      with
      | `Failed msg -> Tableau.Stale msg
      | `Cycled -> Tableau.Stale "dual iteration limit"
      | `Numerical -> Tableau.Stale "dual numerical drift"
      | `Dual_unbounded -> Tableau.Resolved (Tableau.Infeasible, None)
      | `Primal_feasible -> (
        (* Primal clean-up: the dual phase ends primal feasible, and any
           residual dual infeasibility is polished off by ordinary phase-2
           pivots. *)
        match
          (try
             run_phase st ~c ~phase2:true ~max_iters ~iter_count ~deadline
               ~pivots ~bland_pivots ~flips ~refactorisations alpha
           with Failure msg -> `Failed msg)
        with
        | `Failed msg -> Tableau.Stale msg
        | `Unbounded -> Tableau.Resolved (Tableau.Unbounded, None)
        | `Optimal ->
          (* Accuracy cross-check before trusting the inherited basis: the
             resolved point must satisfy the bound system and A x = b. *)
          let tol = 1e-7 in
          let x = Array.make n 0.0 in
          for j = 0 to n - 1 do
            if st.pos.(j) < 0 && st.at_ub.(j) then x.(j) <- st.ubs.(j)
          done;
          let ok = ref true in
          for i = 0 to m - 1 do
            let bv = st.basis.(i) in
            if bv < n then begin
              x.(bv) <- st.x_b.(i);
              if st.x_b.(i) < -.tol then ok := false;
              if st.x_b.(i) -. st.ubs.(bv) > tol then ok := false
            end
            else if Float.abs st.x_b.(i) > tol then ok := false
          done;
          let resid = Array.copy st.b in
          for j = 0 to n - 1 do
            let xj = x.(j) in
            if Float.abs xj > 0.0 then begin
              let idx = st.cidx.(j) and vl = st.cval.(j) in
              for k = 0 to Array.length idx - 1 do
                resid.(idx.(k)) <- resid.(idx.(k)) -. (vl.(k) *. xj)
              done
            end
          done;
          let scale =
            Array.fold_left (fun acc bi -> Float.max acc (Float.abs bi)) 1.0 st.b
          in
          Array.iter
            (fun ri -> if Float.abs ri > 1e-6 *. scale then ok := false)
            resid;
          if not !ok then Tableau.Stale "warm solve lost accuracy"
          else begin
            let value = ref 0.0 in
            for j = 0 to n - 1 do
              value := !value +. (c.(j) *. x.(j))
            done;
            Tableau.Resolved
              ( Tableau.Optimal (!value, x),
                Some
                  {
                    Tableau.s_basis = Array.copy st.basis;
                    s_at_ub = Array.copy st.at_ub;
                  } )
          end)
    end
  end

let solve_cols ?(max_iters = 50_000) ?deadline ?ubs ?snapshot_out ~nrows:m
    ~cols ~b ~c () =
  let n = Array.length cols in
  if Array.length b <> m then invalid_arg "Tableau.solve: b length";
  if Array.length c <> n then invalid_arg "Tableau.solve: c length";
  let ub_arr = Array.make n infinity in
  (match ubs with
   | None -> ()
   | Some u ->
     if Array.length u <> n then invalid_arg "Tableau.solve: ubs length";
     Array.iteri
       (fun j uo ->
         match uo with
         | Some x when x <= eps -> invalid_arg "Tableau.solve: non-positive upper bound"
         | Some x -> ub_arr.(j) <- x
         | None -> ())
       u);
  let cidx = Array.map (fun col -> Array.map fst col) cols in
  let cval = Array.map (fun col -> Array.map snd col) cols in
  Array.iter
    (fun idx ->
      Array.iter
        (fun i -> if i < 0 || i >= m then invalid_arg "Tableau.solve: row out of range")
        idx)
    cidx;
  Array.iter (fun bi -> if bi < -.eps then invalid_arg "Tableau.solve: negative rhs") b;
  let weight =
    Array.map
      (fun vl -> Array.fold_left (fun acc x -> acc +. (x *. x)) 1.0 vl)
      cval
  in
  let basis = Array.init m (fun i -> n + i) in
  let covered = Array.make m false in
  for j = 0 to n - 1 do
    if Array.length cidx.(j) = 1 then begin
      let i = cidx.(j).(0) in
      if (not covered.(i)) && cval.(j).(0) > eps && ub_arr.(j) = infinity then begin
        covered.(i) <- true;
        basis.(i) <- j
      end
    end
  done;
  let pos = Array.make (n + m) (-1) in
  for i = 0 to m - 1 do
    pos.(basis.(i)) <- i
  done;
  let st =
    {
      m;
      n;
      cidx;
      cval;
      ubs = ub_arr;
      at_ub = Array.make n false;
      weight;
      basis;
      pos;
      x_b = Array.map clamp b;
      b = Array.copy b;
      etas = [| dummy_eta |];
      n_etas = 0;
      factor_etas = 0;
    }
  in
  for i = 0 to m - 1 do
    if covered.(i) then begin
      let a = st.cval.(basis.(i)).(0) in
      if fcmp a 1.0 <> 0 then begin
        push_eta st { e_row = i; e_pivot = 1.0 /. a; e_idx = [||]; e_val = [||] };
        st.x_b.(i) <- clamp (st.x_b.(i) /. a)
      end
    end
  done;
  st.factor_etas <- st.n_etas;
  let pivots = ref 0
  and bland_pivots = ref 0
  and flips = ref 0
  and refactorisations = ref 0 in
  let flush () =
    Telemetry.count "lp.simplex.solves";
    Telemetry.count ~by:!pivots "lp.simplex.pivots";
    Telemetry.count ~by:!bland_pivots "lp.simplex.bland_pivots";
    Telemetry.count ~by:!flips "lp.simplex.bound_flips";
    Telemetry.count ~by:!refactorisations "lp.simplex.refactorisations"
  in
  Fun.protect ~finally:flush @@ fun () ->
  let iter_count = ref 0 in
  let alpha = Array.make m 0.0 in
  match
    run_phase st ~c ~phase2:false ~max_iters ~iter_count ~deadline ~pivots
      ~bland_pivots ~flips ~refactorisations alpha
  with
  | `Unbounded -> failwith "Tableau: phase-1 unbounded (impossible)"
  | `Optimal ->
    let infeas = ref 0.0 in
    for i = 0 to m - 1 do
      if st.basis.(i) >= n then infeas := !infeas +. st.x_b.(i)
    done;
    if !infeas > eps then Tableau.Infeasible
    else begin
      drive_out_artificials st ~pivots;
      match
        run_phase st ~c ~phase2:true ~max_iters ~iter_count ~deadline ~pivots
          ~bland_pivots ~flips ~refactorisations alpha
      with
      | `Unbounded -> Tableau.Unbounded
      | `Optimal ->
        (match snapshot_out with
         | Some cell ->
           cell :=
             Some
               {
                 Tableau.s_basis = Array.copy st.basis;
                 s_at_ub = Array.copy st.at_ub;
               }
         | None -> ());
        let x = Array.make n 0.0 in
        for j = 0 to n - 1 do
          if st.pos.(j) < 0 && st.at_ub.(j) then x.(j) <- st.ubs.(j)
        done;
        for i = 0 to m - 1 do
          if st.basis.(i) < n then x.(st.basis.(i)) <- st.x_b.(i)
        done;
        let value = ref 0.0 in
        for j = 0 to n - 1 do
          value := !value +. (c.(j) *. x.(j))
        done;
        Tableau.Optimal (!value, x)
    end
