(** LP-relaxation solver front-end.

    Converts a {!Model} (arbitrary bounds, [<=]/[>=]/[=] rows, min or max
    objective) into the standard form expected by {!Tableau} — shifting
    lower-bounded variables, splitting free ones, adding upper-bound rows
    and slack/surplus columns — and maps the solution back to model
    variables. Integrality is ignored here; {!Branch_bound} adds it.

    For branch-and-bound the translation can be reused across nodes: a
    {!basis} cell carries the translated standard form plus the final basis
    of the last [Optimal] solve, and a subsequent solve holding the cell is
    warm-started with a dual-simplex re-solve ({!Tableau.Make}
    [.resolve_with_basis]) instead of a cold two-phase solve. *)

type 'num outcome =
  | Optimal of { objective : 'num; values : 'num array }
      (** [values] is indexed by model variable id; [objective] is the
          model's natural objective value (not sign-normalised). *)
  | Infeasible
  | Unbounded

type basis
(** In/out warm-start cell for {!solve_relaxation_float}: after an
    [Optimal] solve it holds the translated standard form and the final
    simplex basis; passed to a later solve of the same model under changed
    bounds it triggers a dual-simplex warm re-solve (falling back to a cold
    solve — and refreshing the cell — when the inherited basis is stale or
    the bound change cannot be expressed in the prepared column space).
    Cells are single-threaded: share them across domains only via
    {!copy_basis}. *)

val new_basis : unit -> basis
(** A fresh, empty cell; the first solve holding it fills it. *)

val copy_basis : basis -> basis
(** An independent cell with the same contents — the copy-on-branch step of
    branch-and-bound (the snapshot and prepared form inside are immutable
    and shared; only the cell itself is fresh). *)

val solve_relaxation_float :
  ?max_iters:int ->
  ?deadline:float ->
  ?bounds:(Numeric.Rat.t option * Numeric.Rat.t option) array ->
  ?basis:basis ->
  Model.t ->
  float outcome
(** Floating-point simplex; fast, tolerance [1e-9]. [deadline] is an
    absolute {!Telemetry.Clock} time; when it passes mid-solve
    {!Tableau.Deadline_exceeded} is raised. [bounds], when given, overrides
    every variable's bounds (indexed by model variable id; length must be
    [Model.var_count]) without touching the model — the bound-overlay used
    by the multi-domain branch-and-bound, whose nodes must not mutate the
    shared model. [basis] enables dual-simplex warm starts as described on
    {!basis}; warm outcomes are counted under [lp.bb.warm_hits] /
    [lp.bb.warm_fallbacks]. *)

val solve_relaxation_exact :
  ?max_iters:int ->
  ?deadline:float ->
  ?bounds:(Numeric.Rat.t option * Numeric.Rat.t option) array ->
  Model.t ->
  Numeric.Rat.t outcome
(** Exact rational simplex; bit-exact but slower. Intended for small models
    and for verifying candidate optima in tests. *)
