(** LP-relaxation solver front-end.

    Converts a {!Model} (arbitrary bounds, [<=]/[>=]/[=] rows, min or max
    objective) into the standard form expected by {!Tableau} — shifting
    lower-bounded variables, splitting free ones, adding upper-bound rows
    and slack/surplus columns — and maps the solution back to model
    variables. Integrality is ignored here; {!Branch_bound} adds it. *)

type 'num outcome =
  | Optimal of { objective : 'num; values : 'num array }
      (** [values] is indexed by model variable id; [objective] is the
          model's natural objective value (not sign-normalised). *)
  | Infeasible
  | Unbounded

val solve_relaxation_float :
  ?max_iters:int -> ?deadline:float -> Model.t -> float outcome
(** Floating-point simplex; fast, tolerance [1e-9]. [deadline] is an
    absolute {!Telemetry.Clock} time; when it passes mid-solve
    {!Tableau.Deadline_exceeded} is raised. *)

val solve_relaxation_exact :
  ?max_iters:int -> ?deadline:float -> Model.t -> Numeric.Rat.t outcome
(** Exact rational simplex; bit-exact but slower. Intended for small models
    and for verifying candidate optima in tests. *)
