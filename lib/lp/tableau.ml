type 'num result =
  | Optimal of 'num * 'num array
  | Infeasible
  | Unbounded

exception Deadline_exceeded

(* A basis snapshot is field-independent (which columns are basic and which
   nonbasic columns rest at their upper bound), so it is shared between the
   functorised kernel and the float-specialised {!Tableau_float}: a parent
   node's snapshot from either kernel can warm-start a re-solve. *)
type snapshot = { s_basis : int array; s_at_ub : bool array }

type 'num resolve =
  | Resolved of 'num result * snapshot option
      (** the inherited basis was repaired in place; the new snapshot is
          present whenever the re-solve ended [Optimal] *)
  | Stale of string
      (** the warm solve cycled, went singular or lost numerical accuracy —
          the caller should fall back to a cold primal solve *)

module Make (F : Field.S) = struct
  (* Sparse revised two-phase bounded-variable simplex.

     The constraint matrix is stored column-wise ([cols.(j)] is the sparse
     column of structural variable [j]); the basis inverse is represented as
     a product-form eta file that is rebuilt from scratch (refactorised)
     after a bounded number of pivots, which both bounds the FTRAN / BTRAN
     cost and, for the inexact field, drains accumulated roundoff.

     Structural variables range over [0, ub_j] (ub_j optional); a nonbasic
     variable rests at either bound ([at_ub]) and upper bounds are enforced
     by the ratio test — including bound flips that move a variable across
     its whole span without a basis change — instead of by explicit rows.

     Columns [0 .. n-1] are structural, [n .. n+m-1] artificial. Artificial
     columns never re-enter the basis once they leave: phase 1 then still
     terminates at a true optimum of the restricted problem, and any feasible
     point of the original problem remains feasible with all artificials at
     zero, so the infeasibility test is unaffected.

     Pricing is steepest-edge-lite — Dantzig reduced costs scaled by static
     column norms ([d_j^2 / (1 + ||a_j||^2)]) — for the first [3*(m+n)]
     iterations, then Bland (smallest index), which guarantees termination
     even under degeneracy (bound flips are always nondegenerate: spans are
     strictly positive). *)

  let lt a b = F.compare a b < 0
  let gt a b = F.compare a b > 0

  type eta = {
    e_row : int;
    e_pivot : F.t;  (* 1 / alpha_r *)
    e_terms : (int * F.t) array;  (* (i, -alpha_i / alpha_r) for i <> e_row *)
  }

  type state = {
    m : int;
    n : int;
    cols : (int * F.t) array array;  (* structural columns only *)
    ubs : F.t option array;  (* structural upper bounds (lb is 0) *)
    at_ub : bool array;  (* nonbasic structural var rests at its ub *)
    weight : float array;  (* 1 + ||a_j||^2, static pricing weights *)
    basis : int array;  (* length m; entries >= n are artificial *)
    pos : int array;  (* length n+m; basis position of a column, or -1 *)
    x_b : F.t array;  (* current basic variable values *)
    b : F.t array;
    mutable etas : eta array;  (* application (FTRAN) order *)
    mutable n_etas : int;
    mutable factor_etas : int;  (* eta-file length after the last refactorisation *)
  }

  let clamp x = if F.is_zero x then F.zero else x
  let ub_of st j = if j < st.n then st.ubs.(j) else None

  let push_eta st e =
    if st.n_etas = Array.length st.etas then begin
      let bigger = Array.make (max 16 (2 * st.n_etas)) e in
      Array.blit st.etas 0 bigger 0 st.n_etas;
      st.etas <- bigger
    end;
    st.etas.(st.n_etas) <- e;
    st.n_etas <- st.n_etas + 1

  (* v := B^-1 v *)
  let ftran st v =
    for t = 0 to st.n_etas - 1 do
      let e = st.etas.(t) in
      let x = v.(e.e_row) in
      if not (F.is_zero x) then begin
        v.(e.e_row) <- F.mul e.e_pivot x;
        Array.iter (fun (i, c) -> v.(i) <- F.add v.(i) (F.mul c x)) e.e_terms
      end
    done

  (* y := (B^-1)^T y *)
  let btran st y =
    for t = st.n_etas - 1 downto 0 do
      let e = st.etas.(t) in
      let acc = ref (F.mul e.e_pivot y.(e.e_row)) in
      Array.iter (fun (i, c) -> acc := F.add !acc (F.mul c y.(i))) e.e_terms;
      y.(e.e_row) <- clamp !acc
    done

  (* Scatter original column [j] (structural or artificial) into [v]. *)
  let scatter st j v =
    if j < st.n then Array.iter (fun (i, a) -> v.(i) <- a) st.cols.(j)
    else v.(j - st.n) <- F.one

  let eta_of_alpha ~row alpha =
    let ar = alpha.(row) in
    let terms = ref [] in
    Array.iteri
      (fun i a ->
        if i <> row && not (F.is_zero a) then
          terms := (i, F.neg (F.div a ar)) :: !terms)
      alpha;
    { e_row = row; e_pivot = F.div F.one ar; e_terms = Array.of_list !terms }

  (* Basis change: [col], currently worth [enter_val], moves by [t] in
     direction [dir] and replaces the variable basic in [row]; [alpha] is
     the FTRAN'd tableau column of [col]. *)
  let pivot st ~row ~col ~t ~dir ~enter_val alpha =
    let step = F.mul t dir in
    push_eta st (eta_of_alpha ~row alpha);
    for i = 0 to st.m - 1 do
      if i <> row && not (F.is_zero alpha.(i)) then
        st.x_b.(i) <- clamp (F.sub st.x_b.(i) (F.mul step alpha.(i)))
    done;
    st.x_b.(row) <- clamp (F.add enter_val step);
    st.pos.(st.basis.(row)) <- -1;
    st.basis.(row) <- col;
    st.pos.(col) <- row

  (* Rebuild the eta file from the current basis, then recompute
     x_B = B^-1 (b - N_U u_U). The pivot order is chosen to avoid fill in
     the rebuilt eta file — essential, because a naive Gauss-Jordan over LP
     bases produces near-dense etas and the FTRAN / BTRAN cost explodes:

     pass 1: identity-like columns (artificials and structural singletons)
             pivot on their own row with a trivial (term-free) eta;
     pass 2: repeatedly pivot a column that is alone on some untaken row.
             No other remaining column touches that row, so applying the
             eta downstream is a pattern no-op: each such eta carries
             exactly the column's own off-pivot entries and no fill;
     pass 3: the residual "bump" (rarely more than a handful of columns in
             an LP basis) is eliminated densely, smallest column first,
             picking pivot rows by magnitude. *)
  let refactor st refactorisations =
    st.n_etas <- 0;
    incr refactorisations;
    let order = Array.copy st.basis in
    let taken = Array.make st.m false in
    let placed = Array.make st.m false in
    (* over positions in [order] *)
    let v = Array.make st.m F.zero in
    let place t col row =
      taken.(row) <- true;
      placed.(t) <- true;
      st.basis.(row) <- col
    in
    let pivot_full t col ~row_hint =
      Array.fill v 0 st.m F.zero;
      scatter st col v;
      ftran st v;
      let row =
        match row_hint with
        | Some r when not (F.is_zero v.(r)) -> r
        | _ ->
          let best = ref (-1) and best_mag = ref 0.0 in
          for i = 0 to st.m - 1 do
            if not taken.(i) && not (F.is_zero v.(i)) then begin
              let mag = Float.abs (F.to_float v.(i)) in
              if !best < 0 || mag > !best_mag then begin
                best := i;
                best_mag := mag
              end
            end
          done;
          if !best < 0 then failwith "Tableau: singular basis on refactorisation";
          !best
      in
      push_eta st (eta_of_alpha ~row v);
      place t col row
    in
    Array.iteri
      (fun t col ->
        if col >= st.n then begin
          let r = col - st.n in
          if not taken.(r) then place t col r
        end
        else
          match st.cols.(col) with
          | [| (r, a) |] when not taken.(r) ->
            if F.compare a F.one <> 0 then
              push_eta st { e_row = r; e_pivot = F.div F.one a; e_terms = [||] };
            place t col r
          | _ -> ())
      order;
    let row_count = Array.make st.m 0 in
    let row_cols = Array.make st.m [] in
    Array.iteri
      (fun t col ->
        if not placed.(t) then
          Array.iter
            (fun (i, _) ->
              if not taken.(i) then begin
                row_count.(i) <- row_count.(i) + 1;
                row_cols.(i) <- t :: row_cols.(i)
              end)
            st.cols.(col))
      order;
    let queue = Queue.create () in
    for i = 0 to st.m - 1 do
      if (not taken.(i)) && row_count.(i) = 1 then Queue.add i queue
    done;
    while not (Queue.is_empty queue) do
      let r = Queue.take queue in
      if (not taken.(r)) && row_count.(r) = 1 then
        match List.find_opt (fun t -> not placed.(t)) row_cols.(r) with
        | None -> ()
        | Some t ->
          let col = order.(t) in
          pivot_full t col ~row_hint:(Some r);
          Array.iter
            (fun (i, _) ->
              if not taken.(i) then begin
                row_count.(i) <- row_count.(i) - 1;
                if row_count.(i) = 1 then Queue.add i queue
              end)
            st.cols.(col)
    done;
    let bump = ref [] in
    Array.iteri (fun t _ -> if not placed.(t) then bump := t :: !bump) order;
    let bump =
      List.sort
        (fun t1 t2 ->
          compare
            (Array.length st.cols.(order.(t1)))
            (Array.length st.cols.(order.(t2))))
        !bump
    in
    List.iter (fun t -> pivot_full t order.(t) ~row_hint:None) bump;
    Array.fill st.pos 0 (st.n + st.m) (-1);
    Array.iteri (fun i col -> st.pos.(col) <- i) st.basis;
    Array.blit st.b 0 st.x_b 0 st.m;
    for j = 0 to st.n - 1 do
      if st.pos.(j) < 0 && st.at_ub.(j) then begin
        let u = match st.ubs.(j) with Some u -> u | None -> F.zero in
        Array.iter
          (fun (i, a) -> st.x_b.(i) <- F.sub st.x_b.(i) (F.mul a u))
          st.cols.(j)
      end
    done;
    ftran st st.x_b;
    for i = 0 to st.m - 1 do
      st.x_b.(i) <- clamp st.x_b.(i)
    done;
    st.factor_etas <- st.n_etas

  (* Entering column among the structural nonbasics: a variable at its lower
     bound enters on a negative reduced cost (moving up), one at its upper
     bound on a positive reduced cost (moving down). Steepest-edge-lite
     (reduced cost scaled by the static column norm) or Bland. Artificials
     are never priced back in. Returns the column, its direction and its
     FTRAN'd tableau column, reusing [alpha] as scratch. *)
  let entering st ~c_of ~bland alpha =
    let y = Array.init st.m (fun i -> c_of st.basis.(i)) in
    btran st y;
    let reduced j =
      let s = ref (c_of j) in
      Array.iter (fun (i, a) -> s := F.sub !s (F.mul a y.(i))) st.cols.(j);
      !s
    in
    (* Zero-span columns (variables fixed by a branching bound change in a
       warm re-solve) can neither step nor flip: entering one would loop on
       zero-length bound flips, so they are never eligible. *)
    let eligible j d =
      (match st.ubs.(j) with Some u -> gt u F.zero | None -> true)
      && if st.at_ub.(j) then gt d F.zero else lt d F.zero
    in
    let chosen =
      if bland then begin
        let rec go j =
          if j >= st.n then None
          else if st.pos.(j) < 0 && eligible j (reduced j) then Some j
          else go (j + 1)
        in
        go 0
      end
      else begin
        let best = ref (-1) and best_score = ref 0.0 in
        for j = 0 to st.n - 1 do
          if st.pos.(j) < 0 then begin
            let d = reduced j in
            if eligible j d then begin
              let df = F.to_float d in
              let score = df *. df /. st.weight.(j) in
              if score > !best_score then begin
                best := j;
                best_score := score
              end
            end
          end
        done;
        if !best < 0 then None else Some !best
      end
    in
    match chosen with
    | None -> None
    | Some col ->
      Array.fill alpha 0 st.m F.zero;
      scatter st col alpha;
      ftran st alpha;
      Some (col, if st.at_ub.(col) then F.neg F.one else F.one)

  type step =
    | Flip  (* the entering variable crosses to its other bound *)
    | Leave of { row : int; t : F.t; to_ub : bool }
    | Unbounded_dir

  (* Ratio test for [col] moving by [t >= 0] in direction [dir]: basic
     variables must stay within [0, ub], and the entering variable within
     its own span. Bland tie-break on basis variable index. In phase 2, a
     basic artificial (redundant row, value 0) also leaves on a ratio-0
     degenerate step whenever its entry is nonzero in the blocking
     direction — preferring artificials on ratio ties keeps Bland's
     termination argument, as an artificial that leaves never re-enters. *)
  let ratio_test st alpha ~dir ~span ~phase2 =
    let best = ref (-1) in
    let best_ratio = ref F.zero in
    let best_to_ub = ref false in
    let best_art = ref false in
    for i = 0 to st.m - 1 do
      let aeff = F.mul dir alpha.(i) in
      if not (F.is_zero aeff) then begin
        let bv = st.basis.(i) in
        let art = bv >= st.n in
        let candidate ratio to_ub =
          let better =
            !best < 0
            || lt ratio !best_ratio
            || (F.compare ratio !best_ratio = 0
                && ((art && not !best_art)
                    || (art = !best_art && bv < st.basis.(!best))))
          in
          if better then begin
            best := i;
            best_ratio := ratio;
            best_to_ub := to_ub;
            best_art := art
          end
        in
        if gt aeff F.zero then candidate (F.div st.x_b.(i) aeff) false
        else begin
          match ub_of st bv with
          | Some u -> candidate (F.div (F.sub u st.x_b.(i)) (F.neg aeff)) true
          | None ->
            if phase2 && art && F.is_zero st.x_b.(i) then candidate F.zero false
        end
      end
    done;
    match (span, !best) with
    | None, -1 -> Unbounded_dir
    | Some u, -1 -> ignore u; Flip
    | None, row -> Leave { row; t = !best_ratio; to_ub = !best_to_ub }
    | Some u, row ->
      if F.compare u !best_ratio <= 0 then Flip
      else Leave { row; t = !best_ratio; to_ub = !best_to_ub }

  let run_phase st ~c_of ~phase2 ~max_iters ~iter_count ~deadline ~pivots
      ~bland_pivots ~flips ~refactorisations alpha =
    let switch = 3 * (st.m + st.n) in
    (* Pivots since the last refactorisation, not total eta-file length:
       refactorising itself emits up to [m] etas, so an absolute threshold
       below [m] would re-trigger on every iteration. *)
    let refactor_limit = min 150 (50 + (st.m / 4)) in
    let rec loop () =
      if !iter_count > max_iters then failwith "Tableau: iteration limit exceeded";
      (match deadline with
       | Some t when !iter_count land 15 = 0 && Telemetry.Clock.now_s () > t ->
         Telemetry.count "lp.simplex.deadline_aborts";
         raise Deadline_exceeded
       | Some _ | None -> ());
      incr iter_count;
      if st.n_etas - st.factor_etas > refactor_limit then
        refactor st refactorisations;
      let bland = !iter_count > switch in
      match entering st ~c_of ~bland alpha with
      | None -> `Optimal
      | Some (col, dir) -> begin
        let span = st.ubs.(col) in
        match ratio_test st alpha ~dir ~span ~phase2 with
        | Unbounded_dir -> `Unbounded
        | Flip ->
          let u = match span with Some u -> u | None -> assert false in
          let step = F.mul u dir in
          for i = 0 to st.m - 1 do
            if not (F.is_zero alpha.(i)) then
              st.x_b.(i) <- clamp (F.sub st.x_b.(i) (F.mul step alpha.(i)))
          done;
          st.at_ub.(col) <- not st.at_ub.(col);
          incr flips;
          loop ()
        | Leave { row; t; to_ub } ->
          let leaving = st.basis.(row) in
          let enter_val =
            if st.at_ub.(col) then
              match st.ubs.(col) with Some u -> u | None -> F.zero
            else F.zero
          in
          pivot st ~row ~col ~t ~dir ~enter_val alpha;
          st.at_ub.(col) <- false;
          if leaving < st.n then st.at_ub.(leaving) <- to_ub;
          incr pivots;
          if bland then incr bland_pivots;
          loop ()
      end
    in
    loop ()

  (* After phase 1, pivot remaining basic artificials out wherever some
     structural column has a nonzero entry in their row; rows whose
     structural part is entirely zero are redundant and are handled by the
     phase-2 ratio test instead. *)
  let drive_out_artificials st ~pivots =
    let rho = Array.make st.m F.zero in
    let alpha = Array.make st.m F.zero in
    for i = 0 to st.m - 1 do
      if st.basis.(i) >= st.n then begin
        Array.fill rho 0 st.m F.zero;
        rho.(i) <- F.one;
        btran st rho;
        let row_entry j =
          let s = ref F.zero in
          Array.iter (fun (k, a) -> s := F.add !s (F.mul a rho.(k))) st.cols.(j);
          !s
        in
        let rec find j =
          if j >= st.n then None
          else if st.pos.(j) < 0 && not (F.is_zero (row_entry j)) then Some j
          else find (j + 1)
        in
        match find 0 with
        | Some col ->
          Array.fill alpha 0 st.m F.zero;
          scatter st col alpha;
          ftran st alpha;
          if not (F.is_zero alpha.(i)) then begin
            (* degenerate entry at the entering variable's current value *)
            let enter_val =
              if st.at_ub.(col) then
                match st.ubs.(col) with Some u -> u | None -> F.zero
              else F.zero
            in
            pivot st ~row:i ~col ~t:F.zero ~dir:F.one ~enter_val alpha;
            st.at_ub.(col) <- false;
            incr pivots
          end
        | None -> ()
      end
    done

  (* Dual simplex: restore primal feasibility of an inherited basis after the
     rhs / bound changes of a branch-and-bound child node, without giving up
     the parent's dual feasibility (the reduced-cost sign pattern depends only
     on the basis and the costs, neither of which branching touches).

     Bound-ratio pricing picks the leaving row — the basic variable with the
     largest bound violation, scaled by its static column norm, mirroring the
     primal's steepest-edge-lite rule — and the ratio test runs over the eta
     file: one BTRAN for the pivot row of B^-1, one for the simplex
     multipliers, then a sweep of the nonbasic structural columns collecting
     every sign-eligible entry with its ratio |d_j| / |alpha_rj|.

     The ratio test is the bound-flipping ("long step") variant: candidates
     are walked in ratio order and a boxed candidate whose span cannot absorb
     the remaining violation is flipped to its other bound — its reduced cost
     changes sign past the breakpoint, which is only dual feasible at the
     opposite bound — while the violation slope shrinks by span * |alpha_rj|;
     the first candidate that covers the residual violation pivots. All flips
     of one iteration are applied with a single accumulated FTRAN, so a
     flip-heavy repair costs one pricing round instead of one per flip (the
     naive variant hit ~800 full reprices per warm solve on the paper's
     case 1).

     Artificial columns are pinned to [0, 0] here: the parent solve left them
     at zero, and a nonzero artificial under the child's rhs is precisely an
     equality-row violation the dual steps must repair. Artificials are never
     priced back in; if no eligible entering column exists the row is a valid
     infeasibility certificate, as trustworthy as the primal phase-1 test. *)
  let dual_phase st ~c ~max_iters ~iter_count ~deadline ~dual_pivots ~flips
      ~refactorisations alpha =
    let refactor_limit = min 150 (50 + (st.m / 4)) in
    let y = Array.make st.m F.zero in
    let rho = Array.make st.m F.zero in
    let delta = Array.make st.m F.zero in
    let cand = Array.make (max 1 st.n) 0 in
    let cand_ratio = Array.make (max 1 st.n) F.zero in
    let cand_arj = Array.make (max 1 st.n) F.zero in
    let hi_of bv = if bv < st.n then st.ubs.(bv) else Some F.zero in
    let rec loop () =
      if !iter_count > max_iters then `Cycled
      else begin
        (match deadline with
         | Some t when !iter_count land 15 = 0 && Telemetry.Clock.now_s () > t ->
           Telemetry.count "lp.simplex.deadline_aborts";
           raise Deadline_exceeded
         | Some _ | None -> ());
        incr iter_count;
        if st.n_etas - st.factor_etas > refactor_limit then
          refactor st refactorisations;
        (* Bound-ratio pricing of the infeasible basic variables. *)
        let row = ref (-1) and score = ref 0.0 and above = ref false in
        for i = 0 to st.m - 1 do
          let bv = st.basis.(i) in
          let viol, ab =
            if lt st.x_b.(i) F.zero then (F.neg st.x_b.(i), false)
            else
              match hi_of bv with
              | Some h when gt st.x_b.(i) h -> (F.sub st.x_b.(i) h, true)
              | Some _ | None -> (F.zero, false)
          in
          if gt viol F.zero then begin
            let w = if bv < st.n then st.weight.(bv) else 2.0 in
            let v = F.to_float viol in
            let s = v *. v /. w in
            if s > !score then begin
              row := i;
              score := s;
              above := ab
            end
          end
        done;
        if !row < 0 then `Primal_feasible
        else begin
          let r = !row in
          let leaving = st.basis.(r) in
          Array.fill rho 0 st.m F.zero;
          rho.(r) <- F.one;
          btran st rho;
          for i = 0 to st.m - 1 do
            let bv = st.basis.(i) in
            y.(i) <- (if bv < st.n then c.(bv) else F.zero)
          done;
          btran st y;
          (* Collect every sign-eligible nonbasic structural column with its
             dual ratio |d_j| / |alpha_rj|. *)
          let ncand = ref 0 in
          for j = 0 to st.n - 1 do
            let movable =
              match st.ubs.(j) with Some u -> gt u F.zero | None -> true
            in
            if st.pos.(j) < 0 && movable then begin
              let arj = ref F.zero and dj = ref c.(j) in
              Array.iter
                (fun (i, a) ->
                  arj := F.add !arj (F.mul a rho.(i));
                  dj := F.sub !dj (F.mul a y.(i)))
                st.cols.(j);
              let arj = !arj in
              let eligible =
                if !above then
                  if st.at_ub.(j) then lt arj F.zero else gt arj F.zero
                else if st.at_ub.(j) then gt arj F.zero
                else lt arj F.zero
              in
              if eligible then begin
                cand.(!ncand) <- j;
                cand_ratio.(!ncand) <- F.div (F.abs !dj) (F.abs arj);
                cand_arj.(!ncand) <- arj;
                incr ncand
              end
            end
          done;
          if !ncand = 0 then `Dual_unbounded
          else begin
            (* Bound-flipping ratio test: walk the candidates in ratio order.
               Passing a boxed candidate's breakpoint flips it to its other
               bound (its reduced cost changes sign there, which is only dual
               feasible at the opposite bound) and reduces the violation
               slope by span * |alpha_rj|; the candidate where the slope
               would hit zero becomes the pivot. Exhausting all breakpoints
               with slope remaining is dual unboundedness, i.e. primal
               infeasibility. *)
            let order = Array.init !ncand Fun.id in
            Array.sort
              (fun a b ->
                let cr = F.compare cand_ratio.(a) cand_ratio.(b) in
                if cr <> 0 then cr
                else
                  let cm =
                    Float.compare
                      (Float.abs (F.to_float cand_arj.(b)))
                      (Float.abs (F.to_float cand_arj.(a)))
                  in
                  if cm <> 0 then cm else compare cand.(a) cand.(b))
              order;
            let target =
              if !above then
                match hi_of leaving with Some h -> h | None -> F.zero
              else F.zero
            in
            let viol = ref (F.abs (F.sub st.x_b.(r) target)) in
            let nflip = ref 0 in
            let enter = ref (-1) in
            let k = ref 0 in
            while !enter < 0 && !k < !ncand do
              let ci = order.(!k) in
              let j = cand.(ci) in
              let flip =
                match st.ubs.(j) with
                | None -> false
                | Some u ->
                  let drop = F.mul u (F.abs cand_arj.(ci)) in
                  lt drop !viol
              in
              if flip then begin
                (* flip past this breakpoint, keep walking *)
                order.(!nflip) <- ci;
                incr nflip;
                let u =
                  match st.ubs.(j) with Some u -> u | None -> F.zero
                in
                viol := F.sub !viol (F.mul u (F.abs cand_arj.(ci)))
              end
              else enter := j;
              incr k
            done;
            if !enter < 0 then `Dual_unbounded
            else begin
              (* Apply the accumulated flips with one FTRAN: the raw flipped
                 columns sum into [delta] and x_B -= B^-1 delta. *)
              if !nflip > 0 then begin
                Array.fill delta 0 st.m F.zero;
                for f = 0 to !nflip - 1 do
                  let j = cand.(order.(f)) in
                  let u =
                    match st.ubs.(j) with Some u -> u | None -> F.zero
                  in
                  let fstep = if st.at_ub.(j) then F.neg u else u in
                  Array.iter
                    (fun (i, a) ->
                      delta.(i) <- F.add delta.(i) (F.mul fstep a))
                    st.cols.(j);
                  st.at_ub.(j) <- not st.at_ub.(j);
                  incr flips
                done;
                ftran st delta;
                for i = 0 to st.m - 1 do
                  if not (F.is_zero delta.(i)) then
                    st.x_b.(i) <- clamp (F.sub st.x_b.(i) delta.(i))
                done
              end;
              let j = !enter in
              Array.fill alpha 0 st.m F.zero;
              scatter st j alpha;
              ftran st alpha;
              let arj = alpha.(r) in
              if F.is_zero arj then `Numerical
              else begin
                let step = F.div (F.sub st.x_b.(r) target) arj in
                (* the pricing row (from BTRAN of e_r) and the FTRAN'd column
                   must agree on the step direction, and after the flips the
                   step must fit the entering span; drift on either means the
                   eta file has gone numerically stale *)
                let dir_ok =
                  if st.at_ub.(j) then not (gt step F.zero)
                  else not (lt step F.zero)
                in
                let crosses =
                  match st.ubs.(j) with
                  | Some u -> gt (F.abs step) u
                  | None -> false
                in
                if (not dir_ok) || crosses then `Numerical
                else begin
                  let enter_val =
                    if st.at_ub.(j) then
                      match st.ubs.(j) with Some u -> u | None -> F.zero
                    else F.zero
                  in
                  pivot st ~row:r ~col:j ~t:step ~dir:F.one ~enter_val alpha;
                  st.at_ub.(j) <- false;
                  if leaving < st.n then st.at_ub.(leaving) <- !above;
                  incr dual_pivots;
                  loop ()
                end
              end
            end
          end
        end
      end
    in
    loop ()

  let resolve_with_basis ?(max_iters = 50_000) ?deadline ~nrows:m ~cols ~b ~c
      ~ubs ~snapshot () =
    let n = Array.length cols in
    if Array.length b <> m then invalid_arg "Tableau.resolve: b length";
    if Array.length c <> n then invalid_arg "Tableau.resolve: c length";
    if Array.length ubs <> n then invalid_arg "Tableau.resolve: ubs length";
    if Array.length snapshot.s_basis <> m || Array.length snapshot.s_at_ub <> n
    then invalid_arg "Tableau.resolve: snapshot shape";
    (* An empty span means the node fixed a variable to an impossible range:
       the subproblem is infeasible before any pivoting. *)
    if Array.exists (function Some u -> lt u F.zero | None -> false) ubs then
      Resolved (Infeasible, None)
    else begin
      let weight =
        Array.map
          (fun col ->
            Array.fold_left
              (fun acc (_, a) ->
                let x = F.to_float a in
                acc +. (x *. x))
              1.0 col)
          cols
      in
      let basis = Array.copy snapshot.s_basis in
      let at_ub = Array.copy snapshot.s_at_ub in
      let pos = Array.make (n + m) (-1) in
      let sane = ref true in
      Array.iteri
        (fun i colid ->
          if colid < 0 || colid >= n + m || pos.(colid) >= 0 then sane := false
          else pos.(colid) <- i)
        basis;
      for j = 0 to n - 1 do
        if at_ub.(j) && (pos.(j) >= 0 || ubs.(j) = None) then at_ub.(j) <- false
      done;
      if not !sane then Stale "corrupt basis snapshot"
      else begin
        let st =
          {
            m;
            n;
            cols;
            ubs;
            at_ub;
            weight;
            basis;
            pos;
            x_b = Array.make m F.zero;
            b = Array.copy b;
            etas = [||];
            n_etas = 0;
            factor_etas = 0;
          }
        in
        let pivots = ref 0
        and bland_pivots = ref 0
        and flips = ref 0
        and dual_pivots = ref 0
        and refactorisations = ref 0 in
        let flush () =
          Telemetry.count "lp.simplex.warm_solves";
          Telemetry.count ~by:!pivots "lp.simplex.pivots";
          Telemetry.count ~by:!dual_pivots "lp.simplex.dual_pivots";
          Telemetry.count ~by:!bland_pivots "lp.simplex.bland_pivots";
          Telemetry.count ~by:!flips "lp.simplex.bound_flips";
          Telemetry.count ~by:!refactorisations "lp.simplex.refactorisations"
        in
        Fun.protect ~finally:flush @@ fun () ->
        let iter_count = ref 0 in
        let alpha = Array.make m F.zero in
        match
          (try
             refactor st refactorisations;
             dual_phase st ~c ~max_iters ~iter_count ~deadline ~dual_pivots
               ~flips ~refactorisations alpha
           with Failure msg -> `Failed msg)
        with
        | `Failed msg -> Stale msg
        | `Cycled -> Stale "dual iteration limit"
        | `Numerical -> Stale "dual numerical drift"
        | `Dual_unbounded -> Resolved (Infeasible, None)
        | `Primal_feasible -> (
          (* Primal clean-up: the dual phase ends primal feasible, and any
             residual dual infeasibility (e.g. a nonbasic variable whose rest
             bound flipped) is polished off by ordinary phase-2 pivots. *)
          let c2 j = if j < n then c.(j) else F.zero in
          match
            (try
               run_phase st ~c_of:c2 ~phase2:true ~max_iters ~iter_count
                 ~deadline ~pivots ~bland_pivots ~flips ~refactorisations alpha
             with Failure msg -> `Failed msg)
          with
          | `Failed msg -> Stale msg
          | `Unbounded -> Resolved (Unbounded, None)
          | `Optimal ->
            (* Accuracy cross-check before trusting the inherited basis: the
               resolved point must satisfy the bound system and A x = b. *)
            let tol = 1e-7 in
            let x = Array.make n F.zero in
            for j = 0 to n - 1 do
              if st.pos.(j) < 0 && st.at_ub.(j) then
                x.(j) <- (match st.ubs.(j) with Some u -> u | None -> F.zero)
            done;
            let ok = ref true in
            for i = 0 to m - 1 do
              let bv = st.basis.(i) in
              if bv < n then begin
                x.(bv) <- st.x_b.(i);
                if F.to_float st.x_b.(i) < -.tol then ok := false;
                match st.ubs.(bv) with
                | Some u ->
                  if F.to_float (F.sub st.x_b.(i) u) > tol then ok := false
                | None -> ()
              end
              else if Float.abs (F.to_float st.x_b.(i)) > tol then ok := false
            done;
            let resid = Array.copy st.b in
            for j = 0 to n - 1 do
              let xj = x.(j) in
              if not (F.is_zero xj) then
                Array.iter
                  (fun (i, a) -> resid.(i) <- F.sub resid.(i) (F.mul a xj))
                  st.cols.(j)
            done;
            let scale =
              Array.fold_left
                (fun acc bi -> Float.max acc (Float.abs (F.to_float bi)))
                1.0 st.b
            in
            Array.iter
              (fun ri ->
                if Float.abs (F.to_float ri) > 1e-6 *. scale then ok := false)
              resid;
            if not !ok then Stale "warm solve lost accuracy"
            else begin
              let value = ref F.zero in
              for j = 0 to n - 1 do
                value := F.add !value (F.mul c.(j) x.(j))
              done;
              Resolved
                ( Optimal (!value, x),
                  Some
                    {
                      s_basis = Array.copy st.basis;
                      s_at_ub = Array.copy st.at_ub;
                    } )
            end)
      end
    end

  let solve_cols ?(max_iters = 50_000) ?deadline ?ubs ?snapshot_out ~nrows:m
      ~cols ~b ~c () =
    let n = Array.length cols in
    if Array.length b <> m then invalid_arg "Tableau.solve: b length";
    if Array.length c <> n then invalid_arg "Tableau.solve: c length";
    let ubs = match ubs with Some u -> u | None -> Array.make n None in
    if Array.length ubs <> n then invalid_arg "Tableau.solve: ubs length";
    Array.iter
      (fun u ->
        match u with
        | Some u when not (gt u F.zero) ->
          invalid_arg "Tableau.solve: non-positive upper bound"
        | Some _ | None -> ())
      ubs;
    Array.iter
      (fun col ->
        Array.iter
          (fun (i, _) ->
            if i < 0 || i >= m then invalid_arg "Tableau.solve: row out of range")
          col)
      cols;
    Array.iter (fun bi -> if lt bi F.zero then invalid_arg "Tableau.solve: negative rhs") b;
    let weight =
      Array.map
        (fun col ->
          Array.fold_left
            (fun acc (_, a) ->
              let x = F.to_float a in
              acc +. (x *. x))
            1.0 col)
        cols
    in
    (* Crash basis: cover each row with a positive structural singleton
       column (a slack, surplus-free bound row, ...) where one exists — the
       basis stays diagonal, so x_B = b (rescaled) stays feasible — and
       only the remaining rows get artificials for phase 1 to clear. *)
    let basis = Array.init m (fun i -> n + i) in
    let covered = Array.make m false in
    for j = 0 to n - 1 do
      match cols.(j) with
      | [| (i, a) |] when (not covered.(i)) && gt a F.zero && ubs.(j) = None ->
        covered.(i) <- true;
        basis.(i) <- j
      | _ -> ()
    done;
    let pos = Array.make (n + m) (-1) in
    for i = 0 to m - 1 do
      pos.(basis.(i)) <- i
    done;
    let st =
      {
        m;
        n;
        cols;
        ubs;
        at_ub = Array.make n false;
        weight;
        basis;
        pos;
        x_b = Array.map clamp b;
        b = Array.copy b;
        etas = [||];
        n_etas = 0;
        factor_etas = 0;
      }
    in
    for i = 0 to m - 1 do
      if covered.(i) then begin
        let _, a = cols.(basis.(i)).(0) in
        if F.compare a F.one <> 0 then begin
          push_eta st { e_row = i; e_pivot = F.div F.one a; e_terms = [||] };
          st.x_b.(i) <- clamp (F.div st.x_b.(i) a)
        end
      end
    done;
    st.factor_etas <- st.n_etas;
    let pivots = ref 0
    and bland_pivots = ref 0
    and flips = ref 0
    and refactorisations = ref 0 in
    let flush () =
      Telemetry.count "lp.simplex.solves";
      Telemetry.count ~by:!pivots "lp.simplex.pivots";
      Telemetry.count ~by:!bland_pivots "lp.simplex.bland_pivots";
      Telemetry.count ~by:!flips "lp.simplex.bound_flips";
      Telemetry.count ~by:!refactorisations "lp.simplex.refactorisations"
    in
    Fun.protect ~finally:flush @@ fun () ->
    let iter_count = ref 0 in
    let alpha = Array.make m F.zero in
    (* Phase 1: minimise the sum of artificials. *)
    let c1 j = if j >= n then F.one else F.zero in
    match
      run_phase st ~c_of:c1 ~phase2:false ~max_iters ~iter_count ~deadline
        ~pivots ~bland_pivots ~flips ~refactorisations alpha
    with
    | `Unbounded -> failwith "Tableau: phase-1 unbounded (impossible)"
    | `Optimal ->
      let infeas = ref F.zero in
      for i = 0 to m - 1 do
        if st.basis.(i) >= n then infeas := F.add !infeas st.x_b.(i)
      done;
      if gt !infeas F.zero then Infeasible
      else begin
        drive_out_artificials st ~pivots;
        (* Phase 2: real costs over the structural columns. *)
        let c2 j = if j < n then c.(j) else F.zero in
        match
          run_phase st ~c_of:c2 ~phase2:true ~max_iters ~iter_count ~deadline
            ~pivots ~bland_pivots ~flips ~refactorisations alpha
        with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let x = Array.make n F.zero in
          for j = 0 to n - 1 do
            if st.pos.(j) < 0 && st.at_ub.(j) then
              x.(j) <- (match ubs.(j) with Some u -> u | None -> F.zero)
          done;
          for i = 0 to m - 1 do
            if st.basis.(i) < n then x.(st.basis.(i)) <- st.x_b.(i)
          done;
          let value = ref F.zero in
          for j = 0 to n - 1 do
            value := F.add !value (F.mul c.(j) x.(j))
          done;
          (match snapshot_out with
           | Some cell ->
             cell :=
               Some
                 {
                   s_basis = Array.copy st.basis;
                   s_at_ub = Array.copy st.at_ub;
                 }
           | None -> ());
          Optimal (!value, x)
      end

  let solve ?max_iters ?deadline ~a ~b ~c () =
    let m = Array.length a in
    let n = Array.length c in
    if Array.length b <> m then invalid_arg "Tableau.solve: b length";
    Array.iter
      (fun row -> if Array.length row <> n then invalid_arg "Tableau.solve: row length")
      a;
    let cols =
      Array.init n (fun j ->
          let entries = ref [] in
          for i = m - 1 downto 0 do
            if not (F.is_zero a.(i).(j)) then entries := (i, a.(i).(j)) :: !entries
          done;
          Array.of_list !entries)
    in
    solve_cols ?max_iters ?deadline ~nrows:m ~cols ~b ~c ()
end
