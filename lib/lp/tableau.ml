type 'num result =
  | Optimal of 'num * 'num array
  | Infeasible
  | Unbounded

exception Deadline_exceeded

module Make (F : Field.S) = struct
  (* Full-tableau two-phase simplex.
     Columns [0 .. n-1] are structural, [n .. n+m-1] artificial. The tableau
     always holds B^-1 A; [rhs] holds B^-1 b; [basis.(i)] is the variable
     basic in row [i].
     Pivot selection is Dantzig for the first [3*(m+n)] iterations, then
     Bland (smallest index), which guarantees termination even under
     degeneracy. *)

  let lt a b = F.compare a b < 0
  let gt a b = F.compare a b > 0

  let pivot tab rhs d obj basis ~row ~col ~ncols =
    let piv = tab.(row).(col) in
    let trow = tab.(row) in
    if not (F.compare piv F.one = 0) then begin
      for j = 0 to ncols - 1 do
        trow.(j) <- F.div trow.(j) piv
      done;
      rhs.(row) <- F.div rhs.(row) piv
    end;
    trow.(col) <- F.one;
    let eliminate i =
      if i <> row then begin
        let f = tab.(i).(col) in
        if not (F.is_zero f) then begin
          let irow = tab.(i) in
          for j = 0 to ncols - 1 do
            irow.(j) <- F.sub irow.(j) (F.mul f trow.(j))
          done;
          irow.(col) <- F.zero;
          rhs.(i) <- F.sub rhs.(i) (F.mul f rhs.(row))
        end
      end
    in
    for i = 0 to Array.length tab - 1 do
      eliminate i
    done;
    let f = d.(col) in
    if not (F.is_zero f) then begin
      for j = 0 to ncols - 1 do
        d.(j) <- F.sub d.(j) (F.mul f trow.(j))
      done;
      d.(col) <- F.zero;
      obj := F.sub !obj (F.mul f rhs.(row))
    end;
    basis.(row) <- col

  (* Entering column among the allowed prefix [limit]: Dantzig or Bland. *)
  let entering d ~limit ~bland =
    if bland then begin
      let rec go j = if j >= limit then None else if lt d.(j) F.zero then Some j else go (j + 1) in
      go 0
    end
    else begin
      let best = ref (-1) and best_val = ref F.zero in
      for j = 0 to limit - 1 do
        if lt d.(j) !best_val then begin
          best := j;
          best_val := d.(j)
        end
      done;
      if !best < 0 then None else Some !best
    end

  (* Leaving row by ratio test; Bland tie-break on basis variable index. *)
  let leaving tab rhs basis ~col =
    let m = Array.length tab in
    let best = ref (-1) in
    let best_ratio = ref F.zero in
    for i = 0 to m - 1 do
      let a = tab.(i).(col) in
      if gt a F.zero then begin
        let ratio = F.div rhs.(i) a in
        if !best < 0
           || lt ratio !best_ratio
           || (F.compare ratio !best_ratio = 0 && basis.(i) < basis.(!best))
        then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then None else Some !best

  let run_phase tab rhs d obj basis ~limit ~max_iters ~iter_count ~deadline
      ~pivots ~bland_pivots =
    let switch = 3 * (Array.length tab + limit) in
    let rec loop () =
      if !iter_count > max_iters then failwith "Tableau: iteration limit exceeded";
      (match deadline with
       | Some t when !iter_count land 15 = 0 && Telemetry.Clock.now_s () > t ->
         Telemetry.count "lp.simplex.deadline_aborts";
         raise Deadline_exceeded
       | Some _ | None -> ());
      incr iter_count;
      let bland = !iter_count > switch in
      match entering d ~limit ~bland with
      | None -> `Optimal
      | Some col -> begin
        match leaving tab rhs basis ~col with
        | None -> `Unbounded
        | Some row ->
          pivot tab rhs d obj basis ~row ~col ~ncols:(Array.length d);
          incr pivots;
          if bland then incr bland_pivots;
          loop ()
      end
    in
    loop ()

  let solve ?(max_iters = 50_000) ?deadline ~a ~b ~c () =
    let m = Array.length a in
    let n = Array.length c in
    if Array.length b <> m then invalid_arg "Tableau.solve: b length";
    Array.iter (fun row -> if Array.length row <> n then invalid_arg "Tableau.solve: row length") a;
    Array.iter (fun bi -> if lt bi F.zero then invalid_arg "Tableau.solve: negative rhs") b;
    let ncols = n + m in
    let tab = Array.init m (fun i -> Array.init ncols (fun j -> if j < n then a.(i).(j) else if j = n + i then F.one else F.zero)) in
    let rhs = Array.copy b in
    let basis = Array.init m (fun i -> n + i) in
    let pivots = ref 0 and bland_pivots = ref 0 and refactorisations = ref 0 in
    let flush () =
      Telemetry.count "lp.simplex.solves";
      Telemetry.count ~by:!pivots "lp.simplex.pivots";
      Telemetry.count ~by:!bland_pivots "lp.simplex.bland_pivots";
      Telemetry.count ~by:!refactorisations "lp.simplex.refactorisations"
    in
    Fun.protect ~finally:flush @@ fun () ->
    (* Phase 1: minimise the sum of artificials. Reduced costs for the
       structural columns are -(column sums); objective starts at -(sum b). *)
    let d = Array.make ncols F.zero in
    for j = 0 to n - 1 do
      let s = ref F.zero in
      for i = 0 to m - 1 do
        s := F.add !s tab.(i).(j)
      done;
      d.(j) <- F.neg !s
    done;
    let obj = ref (F.neg (Array.fold_left F.add F.zero rhs)) in
    let iter_count = ref 0 in
    match
      run_phase tab rhs d obj basis ~limit:n ~max_iters ~iter_count ~deadline
        ~pivots ~bland_pivots
    with
    | `Unbounded -> failwith "Tableau: phase-1 unbounded (impossible)"
    | `Optimal ->
      if lt !obj F.zero then Infeasible
      else begin
        (* Drive artificials out of the basis where possible. Rows whose
           structural part is entirely zero are redundant and stay frozen:
           every later pivot adds multiples of rows that are zero in the
           frozen row's pivot column, so the row never changes. *)
        for i = 0 to m - 1 do
          if basis.(i) >= n then begin
            let rec find j = if j >= n then None else if not (F.is_zero tab.(i).(j)) then Some j else find (j + 1) in
            match find 0 with
            | Some col ->
              pivot tab rhs d obj basis ~row:i ~col ~ncols;
              incr refactorisations
            | None -> ()
          end
        done;
        (* Phase 2: real costs. Rebuild reduced costs d_j = c_j - c_B^T tab_j. *)
        for j = 0 to ncols - 1 do
          d.(j) <- (if j < n then c.(j) else F.zero)
        done;
        obj := F.zero;
        for i = 0 to m - 1 do
          let bv = basis.(i) in
          if bv < n && not (F.is_zero c.(bv)) then begin
            let cb = c.(bv) in
            for j = 0 to ncols - 1 do
              d.(j) <- F.sub d.(j) (F.mul cb tab.(i).(j))
            done;
            obj := F.add !obj (F.mul cb rhs.(i))
          end
        done;
        (* Basic columns must read exactly zero in the cost row. *)
        Array.iter (fun bv -> d.(bv) <- F.zero) basis;
        incr refactorisations;
        match
          run_phase tab rhs d obj basis ~limit:n ~max_iters ~iter_count ~deadline
            ~pivots ~bland_pivots
        with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let x = Array.make n F.zero in
          for i = 0 to m - 1 do
            if basis.(i) < n then x.(basis.(i)) <- rhs.(i)
          done;
          let value = ref F.zero in
          for j = 0 to n - 1 do
            value := F.add !value (F.mul c.(j) x.(j))
          done;
          Optimal (!value, x)
      end
end
