(** Float-specialised bounded-variable simplex kernel.

    Same algorithm and contract as [Tableau.Make(Field.Approx).solve_cols]
    — crash basis, two phases, implicit upper bounds with bound flips,
    periodic fill-avoiding refactorisation — but hand-specialised to
    [float] so the hot arrays are unboxed and the arithmetic is inline
    (this switch has no flambda, so the functorised kernel pays an indirect
    call and an allocation per field operation). Used by
    {!Simplex.Float_driver}; the exact-rational driver keeps the functor.
    Keep in sync with [tableau.ml] — the exact-vs-float property test
    cross-checks the two on random models. *)

val solve_cols :
  ?max_iters:int ->
  ?deadline:float ->
  ?ubs:float option array ->
  nrows:int ->
  cols:(int * float) array array ->
  b:float array ->
  c:float array ->
  unit ->
  float Tableau.result
(** Contract of [Tableau.Make(Field.Approx).solve_cols], including the
    telemetry counters and {!Tableau.Deadline_exceeded}. *)
