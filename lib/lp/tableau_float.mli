(** Float-specialised bounded-variable simplex kernel.

    Same algorithm and contract as [Tableau.Make(Field.Approx).solve_cols]
    — crash basis, two phases, implicit upper bounds with bound flips,
    periodic fill-avoiding refactorisation — but hand-specialised to
    [float] so the hot arrays are unboxed and the arithmetic is inline
    (this switch has no flambda, so the functorised kernel pays an indirect
    call and an allocation per field operation). Used by
    {!Simplex.Float_driver}; the exact-rational driver keeps the functor.
    Keep in sync with [tableau.ml] — the exact-vs-float property test
    cross-checks the two on random models. *)

val solve_cols :
  ?max_iters:int ->
  ?deadline:float ->
  ?ubs:float option array ->
  ?snapshot_out:Tableau.snapshot option ref ->
  nrows:int ->
  cols:(int * float) array array ->
  b:float array ->
  c:float array ->
  unit ->
  float Tableau.result
(** Contract of [Tableau.Make(Field.Approx).solve_cols], including the
    telemetry counters, {!Tableau.Deadline_exceeded} and the [snapshot_out]
    basis capture for {!resolve_with_basis}. *)

val resolve_with_basis :
  ?max_iters:int ->
  ?deadline:float ->
  nrows:int ->
  cols:(int * float) array array ->
  b:float array ->
  c:float array ->
  ubs:float option array ->
  snapshot:Tableau.snapshot ->
  unit ->
  float Tableau.resolve
(** Contract of [Tableau.Make(Field.Approx).resolve_with_basis]: dual-simplex
    warm re-solve from a parent basis under a changed rhs / bound vector,
    with the accuracy cross-check and [Stale] fallback signalling. [b]
    entries may be negative and [ubs] entries zero (a variable fixed by
    branching); negative spans report [Infeasible] immediately. *)
