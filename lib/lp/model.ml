module Q = Numeric.Rat

type sense = Le | Ge | Eq
type var_kind = Continuous | Integer | Binary
type var = int

type var_info = {
  vname : string;
  mutable lb : Q.t option;
  mutable ub : Q.t option;
  kind : var_kind;
}

type constr = { cname : string; expr : Linexpr.t; sense : sense; rhs : Q.t }

type t = {
  mname : string;
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr list; (* reversed *)
  mutable nconstrs : int;
  mutable obj_dir : [ `Minimize | `Maximize ];
  mutable obj : Linexpr.t;
}

let create ?(name = "model") () =
  {
    mname = name;
    vars = Array.make 16 { vname = ""; lb = None; ub = None; kind = Continuous };
    nvars = 0;
    constrs = [];
    nconstrs = 0;
    obj_dir = `Minimize;
    obj = Linexpr.zero;
  }

let add_var m ?lb ?ub ?(kind = Continuous) vname =
  let lb, ub =
    match kind with
    | Binary -> (Some Q.zero, Some Q.one)
    | Integer | Continuous ->
      ((match lb with Some l -> Some l | None -> Some Q.zero), ub)
  in
  if m.nvars = Array.length m.vars then begin
    let bigger = Array.make (2 * m.nvars) m.vars.(0) in
    Array.blit m.vars 0 bigger 0 m.nvars;
    m.vars <- bigger
  end;
  m.vars.(m.nvars) <- { vname; lb; ub; kind };
  m.nvars <- m.nvars + 1;
  m.nvars - 1

let check_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Model: variable out of range"

let add_constr m ?name lhs sense rhs =
  let expr = Linexpr.sub lhs rhs in
  let k = Linexpr.const_part expr in
  let expr = Linexpr.add_constant expr (Q.neg k) in
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" m.nconstrs
  in
  (if Linexpr.max_var expr >= m.nvars then
     invalid_arg "Model.add_constr: expression uses unknown variable");
  m.constrs <- { cname; expr; sense; rhs = Q.neg k } :: m.constrs;
  m.nconstrs <- m.nconstrs + 1

let set_objective m dir obj =
  if Linexpr.max_var obj >= m.nvars then
    invalid_arg "Model.set_objective: expression uses unknown variable";
  m.obj_dir <- dir;
  m.obj <- obj

let var_count m = m.nvars
let constr_count m = m.nconstrs
let var_name m v = check_var m v; m.vars.(v).vname
let var_kind m v = check_var m v; m.vars.(v).kind
let var_lb m v = check_var m v; m.vars.(v).lb
let var_ub m v = check_var m v; m.vars.(v).ub

let set_bounds m v lb ub =
  check_var m v;
  m.vars.(v).lb <- lb;
  m.vars.(v).ub <- ub

let is_integer_var m v =
  match var_kind m v with Integer | Binary -> true | Continuous -> false

let objective m = (m.obj_dir, m.obj)

let constraints m =
  List.rev_map (fun c -> (c.cname, c.expr, c.sense, c.rhs)) m.constrs

let iter_constraints m f =
  List.iter (fun c -> f c.cname c.expr c.sense c.rhs) (List.rev m.constrs)

let filter_map_constraints m f =
  let kept = ref [] and n = ref 0 in
  List.iter
    (fun c ->
      match f c.cname c.expr c.sense c.rhs with
      | None -> ()
      | Some (expr, sense, rhs) ->
        kept := { c with expr; sense; rhs } :: !kept;
        incr n)
    (List.rev m.constrs);
  m.constrs <- !kept;
  m.nconstrs <- !n

let eval_objective m value = Linexpr.eval_float value m.obj

let check_feasible m ?(tol = 1e-6) value =
  let violations = ref [] in
  let push name amount = violations := (name, amount) :: !violations in
  let check_constr c =
    let lhs = Linexpr.eval_float value c.expr in
    let rhs = Q.to_float c.rhs in
    match c.sense with
    | Le -> if lhs > rhs +. tol then push c.cname (lhs -. rhs)
    | Ge -> if lhs < rhs -. tol then push c.cname (rhs -. lhs)
    | Eq -> if Float.abs (lhs -. rhs) > tol then push c.cname (Float.abs (lhs -. rhs))
  in
  List.iter check_constr m.constrs;
  for v = 0 to m.nvars - 1 do
    let x = value v in
    let info = m.vars.(v) in
    (match info.lb with
     | Some l when x < Q.to_float l -. tol ->
       push (info.vname ^ ":lb") (Q.to_float l -. x)
     | Some _ | None -> ());
    (match info.ub with
     | Some u when x > Q.to_float u +. tol ->
       push (info.vname ^ ":ub") (x -. Q.to_float u)
     | Some _ | None -> ());
    match info.kind with
    | Integer | Binary ->
      let frac = Float.abs (x -. Float.round x) in
      if frac > tol then push (info.vname ^ ":int") frac
    | Continuous -> ()
  done;
  List.rev !violations

let name m = m.mname

let pp_stats fmt m =
  let ints = ref 0 and bins = ref 0 in
  for v = 0 to m.nvars - 1 do
    match m.vars.(v).kind with
    | Integer -> incr ints
    | Binary -> incr bins
    | Continuous -> ()
  done;
  Format.fprintf fmt "model %s: %d vars (%d int, %d bin), %d constraints"
    m.mname m.nvars !ints !bins m.nconstrs

let pp fmt m =
  let vname v = m.vars.(v).vname in
  let dir = match m.obj_dir with `Minimize -> "Minimize" | `Maximize -> "Maximize" in
  Format.fprintf fmt "@[<v>\\ %s@,%s@,  obj: %a@,Subject To@," m.mname dir
    (Linexpr.pp vname) m.obj;
  let emit c =
    let op = match c.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
    Format.fprintf fmt "  %s: %a %s %s@," c.cname (Linexpr.pp vname) c.expr op
      (Q.to_string c.rhs)
  in
  List.iter emit (List.rev m.constrs);
  Format.fprintf fmt "Bounds@,";
  for v = 0 to m.nvars - 1 do
    let i = m.vars.(v) in
    let b = function Some q -> Q.to_string q | None -> "inf" in
    Format.fprintf fmt "  %s <= %s <= %s@," (b i.lb) i.vname (b i.ub)
  done;
  Format.fprintf fmt "Generals@,  ";
  for v = 0 to m.nvars - 1 do
    if m.vars.(v).kind <> Continuous then Format.fprintf fmt "%s " m.vars.(v).vname
  done;
  Format.fprintf fmt "@,End@]"
