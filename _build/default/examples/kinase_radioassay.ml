(* The paper's test case 1: a kinase activity radioassay (Fang et al. 2010)
   whose mixing step runs through a sieve-valve bead column by flow
   reversal — a mixing operation that needs NO classical mixer. This is the
   motivating example for component-oriented binding (paper §1, Fig. 2).

   The example compares our method with the modified conventional method
   and prints the resulting chip.

     dune exec examples/kinase_radioassay.exe *)

open Microfluidics

let show tag (r : Cohls.Synthesis.result) =
  let b = r.Cohls.Synthesis.final_breakdown in
  Printf.printf "%-22s %4dm  %2d devices  %2d paths  area %3d  processing %3d\n" tag
    b.Cohls.Schedule.fixed_minutes b.Cohls.Schedule.devices b.Cohls.Schedule.paths
    b.Cohls.Schedule.area b.Cohls.Schedule.processing

let () =
  let assay = Assays.Kinase.testcase () in
  Printf.printf "%d operations (%d indeterminate), critical path %dm\n\n"
    (Assay.operation_count assay)
    (Assay.indeterminate_count assay)
    (Assay.critical_path_minutes assay);

  let ours = Cohls.Synthesis.run assay in
  let conv = Cohls.Baseline.run assay in
  show "component-oriented" ours;
  show "conventional" conv;

  (* Where the gap comes from: under the component-oriented rule the wash
     and elute steps run inside the same sieve-valve chamber that hosts the
     flow-reversal mix, and the detection reuses whatever device carries an
     optical system. The conventional exact-signature rule needs a separate
     device class for each of them. *)
  print_newline ();
  Format.printf "Our chip:@.%a@." Chip.pp ours.Cohls.Synthesis.final.Cohls.Schedule.chip;
  Format.printf "Conventional chip:@.%a@." Chip.pp
    conv.Cohls.Synthesis.final.Cohls.Schedule.chip;

  (* The re-synthesis trajectory (Table 3 mechanics on a determinate case). *)
  Printf.printf "re-synthesis trajectory (ours):";
  List.iter
    (fun (it : Cohls.Synthesis.iteration) ->
      Printf.printf " %dm" it.Cohls.Synthesis.breakdown.Cohls.Schedule.fixed_minutes)
    ours.Cohls.Synthesis.iterations;
  print_newline ()
