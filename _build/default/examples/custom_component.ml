(* "Adapts well to technological updates" (paper §2): because devices are
   described by their components rather than by a fixed functional type,
   new kinds of integration need no changes to the synthesiser.

   This example invents a combined trap-and-heat protocol — single-cell
   capture followed by an in-place heat shock and optical check, all in the
   same chamber — and lets the exact ILP engine find the minimal chip for
   it. The baseline, classifying by exact signature, cannot share any of
   these devices.

     dune exec examples/custom_component.exe *)

open Microfluidics
open Components
module Syn = Cohls.Synthesis

let protocol () =
  let a = Assay.create ~name:"trap-and-heat" in
  (* capture needs trap + optics; heat-shock needs heat; the component
     definitions make them shareable on one loaded chamber *)
  let capture =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Cell_trap; Accessory.Optical_system ]
      ~duration:(Operation.Fixed 12) "capture"
  in
  let heat_shock =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Heating_pad ] ~duration:(Operation.Fixed 8)
      "heat-shock"
  in
  let viability =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(Operation.Fixed 4) "viability-check"
  in
  Assay.add_dependency a ~parent:capture ~child:heat_shock;
  Assay.add_dependency a ~parent:heat_shock ~child:viability;
  a

let run rule engine assay =
  Syn.run
    ~config:{ Syn.default_config with Syn.rule; engine; max_devices = 6; max_iterations = 1 }
    assay

let show tag (r : Syn.result) =
  let b = r.Syn.final_breakdown in
  Printf.printf "%-28s %3dm  %d devices  %d paths  processing %d\n" tag
    b.Cohls.Schedule.fixed_minutes b.Cohls.Schedule.devices b.Cohls.Schedule.paths
    b.Cohls.Schedule.processing

let () =
  let assay = Assay.replicate (protocol ()) ~copies:2 in
  let ilp =
    Cohls.Layer_solver.Ilp
      {
        options =
          { Lp.Branch_bound.default_options with Lp.Branch_bound.time_limit = Some 10.0 };
        extra_free_slots = 1;
      }
  in
  let ours_ilp = run Cohls.Binding.Component_oriented ilp assay in
  let ours_greedy = run Cohls.Binding.Component_oriented Cohls.Layer_solver.Heuristic assay in
  let conv = run Cohls.Binding.Exact_signature Cohls.Layer_solver.Heuristic assay in
  show "component-oriented (ILP)" ours_ilp;
  show "component-oriented (greedy)" ours_greedy;
  show "exact-signature (greedy)" conv;
  print_newline ();
  Format.printf "ILP chip:@.%a@." Chip.pp ours_ilp.Syn.final.Cohls.Schedule.chip;
  (* every chamber the ILP keeps carries the union of accessories its
     operations need; the exact-signature baseline instead builds one
     device class per distinct requirement signature *)
  Format.printf "Baseline chip:@.%a@." Chip.pp conv.Syn.final.Cohls.Schedule.chip;
  match Cohls.Schedule.validate ours_ilp.Syn.final with
  | Ok () -> print_endline "ILP schedule validates: OK"
  | Error e -> failwith e
