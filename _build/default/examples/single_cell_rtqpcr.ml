(* The paper's test case 3: high-throughput single-cell RT-qPCR (White et
   al. 2011) — 120 operations, 20 of them indeterminate captures. With the
   default threshold of 10 the layering produces three layers (the paper's
   603m+I1+I2 structure).

   The example sweeps the indeterminate threshold to show the trade the
   paper's Algorithm 1 manages: small thresholds mean many cheap layers
   (few parallel cell-trap devices reserved) but long total time; large
   thresholds hog devices for captures and starve the determinate
   pipeline.

     dune exec examples/single_cell_rtqpcr.exe *)

open Microfluidics
module Syn = Cohls.Synthesis

let () =
  let assay = Assays.Rt_qpcr.testcase () in
  Printf.printf "%d operations, %d indeterminate captures\n\n"
    (Assay.operation_count assay)
    (Assay.indeterminate_count assay);

  Printf.printf "%-10s %-7s %-12s %-8s %-6s %s\n" "threshold" "layers" "exe. time"
    "devices" "paths" "storage";
  List.iter
    (fun threshold ->
      let r = Syn.run ~config:{ Syn.default_config with Syn.threshold } assay in
      (match Cohls.Schedule.validate r.Syn.final with
       | Ok () -> ()
       | Error e -> failwith e);
      let b = r.Syn.final_breakdown in
      Printf.printf "%-10d %-7d %-12s %-8d %-6d %d\n" threshold
        (Array.length r.Syn.final.Cohls.Schedule.layers)
        (Cohls.Report.exe_time_string r)
        b.Cohls.Schedule.devices b.Cohls.Schedule.paths
        (Cohls.Layering.storage_units r.Syn.layering))
    [ 2; 4; 6; 10; 20 ];

  (* the default configuration, in full *)
  print_newline ();
  let r = Syn.run assay in
  Format.printf "%a@." Cohls.Report.schedule_summary r;
  Format.printf "layer structure: %a@." Cohls.Layering.pp r.Syn.layering
