(* The whole stack in one program: parse an assay from its textual
   description, synthesise a hybrid schedule, render the Gantt chart,
   derive the control layer and actuation timeline, estimate the physical
   design, and replay the schedule under the paper's 53%-success capture
   model.

     dune exec examples/full_stack.exe *)

let description =
  {|
assay "full-stack-demo"

op capture {
  container   = chamber
  volume      = 2.0              # nanolitres -> tiny class
  accessories = cell-trap, optical-system
  duration    = indeterminate min 6
}
op lyse    { volume = 2.0  duration = 10 }
op amplify { container = ring  volume = 30.0  accessories = pump, heating-pad
             duration = 25 }
op detect  { accessories = optical-system  duration = 5 }

deps { capture -> lyse -> amplify -> detect }

replicate 3
|}

let () =
  (* 1. parse *)
  let assay =
    match Microfluidics.Assay_text.parse description with
    | Ok a -> a
    | Error e -> Format.kasprintf failwith "%a" Microfluidics.Assay_text.pp_error e
  in
  Format.printf "%a@.@." Microfluidics.Assay.pp assay;

  (* 2. synthesise *)
  let result = Cohls.Synthesis.run assay in
  Format.printf "%a@.@." Cohls.Report.schedule_summary result;
  (match Cohls.Schedule.validate result.Cohls.Synthesis.final with
   | Ok () -> ()
   | Error e -> failwith e);

  (* 3. Gantt *)
  print_string (Export.Gantt.render result.Cohls.Synthesis.final);
  print_newline ();

  (* 4. control layer *)
  let layer = Control.Control_layer.of_chip result.Cohls.Synthesis.final.Cohls.Schedule.chip in
  let timeline = Control.Actuation.synthesise layer result.Cohls.Synthesis.final in
  (match Control.Actuation.validate timeline with
   | Ok () -> ()
   | Error e -> failwith e);
  Printf.printf "control: %d valves, %d signals, %d switching events over %dm\n"
    (Control.Control_layer.valve_count layer)
    (Control.Control_layer.signal_count layer)
    (Control.Actuation.switch_count timeline)
    timeline.Control.Actuation.horizon;

  (* 5. physical estimate *)
  let design =
    Physical.Physical_design.of_schedule Microfluidics.Cost.default
      result.Cohls.Synthesis.final
  in
  let die, len, crossings = Physical.Physical_design.quality design in
  Printf.printf "physical: die %d cells, channel length %d, %d crossings\n\n" die len
    crossings;

  (* 6. replay with geometric capture retries (53% per attempt, ref [11]) *)
  Printf.printf "%-6s %s\n" "run" "realised total";
  for seed = 1 to 5 do
    let oracle =
      Cohls.Runtime.retry_oracle ~seed ~success_probability:0.53 ~attempt_minutes:6
        assay
    in
    match Cohls.Runtime.execute result.Cohls.Synthesis.final oracle with
    | Ok trace -> Printf.printf "%-6d %dm\n" seed trace.Cohls.Runtime.total_minutes
    | Error e -> failwith e
  done;
  Printf.printf "(fixed part: %dm)\n"
    (Cohls.Schedule.total_fixed_minutes result.Cohls.Synthesis.final)
