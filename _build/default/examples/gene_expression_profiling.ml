(* The paper's test case 2: gene expression profiling of single human
   embryonic stem cells (Zhong et al. 2008, the Fig. 1 chip). Ten pipelines
   start with an indeterminate single-cell capture — a cell trap holds
   exactly one cell only ~53% of the time, so the capture may need reruns
   and cannot occupy a fixed slot.

   This example shows the hybrid-scheduling machinery: the layering that
   puts all captures at the end of the first sub-schedule, and the runtime
   executor standing in for the cyber-physical controller, drawing actual
   capture durations from a seeded oracle.

     dune exec examples/gene_expression_profiling.exe *)

let () =
  let assay = Assays.Gene_expression.testcase () in
  let result = Cohls.Synthesis.run assay in

  (* 1. The layering: all ten captures in layer 0, everything downstream in
        layer 1; the controller only intervenes at the boundary. *)
  Format.printf "%a@." Cohls.Layering.pp result.Cohls.Synthesis.layering;
  Format.printf "%a@.@." Cohls.Report.schedule_summary result;

  (* 2. Ten simulated runs with different capture luck. The fixed part of
        the schedule never moves; only the realised I_1 varies. *)
  Printf.printf "%-6s %-14s %-12s\n" "run" "total minutes" "I1 realised";
  let fixed = Cohls.Schedule.total_fixed_minutes result.Cohls.Synthesis.final in
  for seed = 1 to 10 do
    let oracle = Cohls.Runtime.seeded_oracle ~seed ~max_extra:25 assay in
    match Cohls.Runtime.execute result.Cohls.Synthesis.final oracle with
    | Ok trace ->
      Printf.printf "%-6d %-14d %-12d\n" seed trace.Cohls.Runtime.total_minutes
        (List.assoc 0 trace.Cohls.Runtime.waits)
    | Error e -> failwith e
  done;
  Printf.printf "(fixed part of the schedule: %dm in every run)\n" fixed;

  (* 3. Contrast with a purely static schedule: if the captures had been
        treated as fixed-duration ops, any overrun would invalidate every
        downstream slot; here the pre-generated schedule survives all ten
        runs unchanged. *)
  match Cohls.Schedule.validate result.Cohls.Synthesis.final with
  | Ok () -> print_endline "hybrid schedule validates: OK"
  | Error e -> failwith e
