(* Quickstart: describe a tiny bioassay with component-oriented operations,
   synthesise a hybrid schedule, inspect it, and replay it with an
   indeterminacy oracle.

     dune exec examples/quickstart.exe *)

open Microfluidics
open Components

let () =
  (* 1. Describe the assay: operations state the components they need, not
        a functional "type". *)
  let assay = Assay.create ~name:"quickstart" in
  let capture =
    Assay.add_operation assay ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Cell_trap; Accessory.Optical_system ]
      ~duration:(Operation.Indeterminate { min_minutes = 6 })
      "capture-single-cell"
  in
  let lyse =
    Assay.add_operation assay ~duration:(Operation.Fixed 10) "lyse"
  in
  let mix =
    Assay.add_operation assay ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump ] ~duration:(Operation.Fixed 20) "mix"
  in
  let detect =
    Assay.add_operation assay ~accessories:[ Accessory.Optical_system ]
      ~duration:(Operation.Fixed 5) "detect"
  in
  Assay.add_dependency assay ~parent:capture ~child:lyse;
  Assay.add_dependency assay ~parent:lyse ~child:mix;
  Assay.add_dependency assay ~parent:mix ~child:detect;

  (* 2. Synthesise: layering for the indeterminate capture + binding and
        scheduling per layer + progressive re-synthesis. *)
  let result = Cohls.Synthesis.run assay in
  Format.printf "%a@.@." Cohls.Report.schedule_summary result;
  Format.printf "%a@." Cohls.Schedule.pp result.Cohls.Synthesis.final;

  (* 3. The schedule is checked end to end (constraints (5)-(21)). *)
  (match Cohls.Schedule.validate result.Cohls.Synthesis.final with
   | Ok () -> print_endline "schedule validates: OK"
   | Error e -> failwith e);

  (* 4. Replay it: the capture takes 9 extra minutes this run; only the
        layer boundary moves. *)
  let oracle = Cohls.Runtime.deterministic_oracle ~extra:9 assay in
  match Cohls.Runtime.execute result.Cohls.Synthesis.final oracle with
  | Ok trace ->
    Printf.printf "replayed: %d minutes total (fixed part %d, waited %d at layer 0)\n"
      trace.Cohls.Runtime.total_minutes
      (Cohls.Schedule.total_fixed_minutes result.Cohls.Synthesis.final)
      (List.assoc 0 trace.Cohls.Runtime.waits)
  | Error e -> failwith e
