examples/full_stack.ml: Cohls Control Export Format Microfluidics Physical Printf
