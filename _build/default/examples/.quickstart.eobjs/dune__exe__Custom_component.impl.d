examples/custom_component.ml: Accessory Assay Capacity Chip Cohls Components Container Format Lp Microfluidics Operation Printf
