examples/custom_component.mli:
