examples/quickstart.mli:
