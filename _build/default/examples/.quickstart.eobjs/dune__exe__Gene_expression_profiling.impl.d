examples/gene_expression_profiling.ml: Assays Cohls Format List Printf
