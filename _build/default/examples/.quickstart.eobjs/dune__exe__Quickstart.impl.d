examples/quickstart.ml: Accessory Assay Capacity Cohls Components Container Format List Microfluidics Operation Printf
