examples/kinase_radioassay.ml: Assay Assays Chip Cohls Format List Microfluidics Printf
