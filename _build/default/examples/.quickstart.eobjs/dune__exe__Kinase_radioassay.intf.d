examples/kinase_radioassay.mli:
