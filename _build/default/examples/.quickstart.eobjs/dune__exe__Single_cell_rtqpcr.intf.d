examples/single_cell_rtqpcr.mli:
