examples/single_cell_rtqpcr.ml: Array Assay Assays Cohls Format List Microfluidics Printf
