let glyph op =
  let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  alphabet.[op mod String.length alphabet]

let render_one ~minutes_per_cell (s : Cohls.Schedule.t) (l : Cohls.Schedule.layer_schedule) =
  let buf = Buffer.create 512 in
  let devices =
    List.sort_uniq compare
      (List.map (fun (e : Cohls.Schedule.entry) -> e.Cohls.Schedule.device) l.Cohls.Schedule.entries)
  in
  let width = (l.Cohls.Schedule.fixed_makespan + minutes_per_cell - 1) / minutes_per_cell in
  let width = max width 1 in
  Buffer.add_string buf
    (Printf.sprintf "layer %d (fixed %dm, %dm/cell)\n" l.Cohls.Schedule.layer_index
       l.Cohls.Schedule.fixed_makespan minutes_per_cell);
  let row dev =
    let cells = Bytes.make width '.' in
    let paint (e : Cohls.Schedule.entry) =
      if e.Cohls.Schedule.device = dev then begin
        let s0 = e.Cohls.Schedule.start / minutes_per_cell in
        let e0 =
          (e.Cohls.Schedule.start + e.Cohls.Schedule.min_duration + e.Cohls.Schedule.transport - 1)
          / minutes_per_cell
        in
        for c = s0 to min e0 (width - 1) do
          Bytes.set cells c (glyph e.Cohls.Schedule.op)
        done;
        if e.Cohls.Schedule.indeterminate then
          for c = min (e0 + 1) (width - 1) to width - 1 do
            Bytes.set cells c '~'
          done
      end
    in
    List.iter paint l.Cohls.Schedule.entries;
    Buffer.add_string buf (Printf.sprintf "  d%-3d %s|\n" dev (Bytes.to_string cells))
  in
  List.iter row devices;
  ignore s;
  Buffer.contents buf

let render_layer ?(minutes_per_cell = 5) s index =
  if minutes_per_cell < 1 then invalid_arg "Gantt: minutes_per_cell must be >= 1";
  let layers = s.Cohls.Schedule.layers in
  if index < 0 || index >= Array.length layers then
    invalid_arg "Gantt.render_layer: unknown layer";
  render_one ~minutes_per_cell s layers.(index)

let render ?(minutes_per_cell = 5) s =
  if minutes_per_cell < 1 then invalid_arg "Gantt: minutes_per_cell must be >= 1";
  let buf = Buffer.create 1024 in
  Array.iter
    (fun l -> Buffer.add_string buf (render_one ~minutes_per_cell s l))
    s.Cohls.Schedule.layers;
  Buffer.contents buf
