(** Graphviz DOT exports: the chip (devices + flow paths) and the assay
    (operations + dependencies). Render with e.g.
    [dot -Tsvg chip.dot -o chip.svg]. *)

val chip : Microfluidics.Chip.t -> string
(** Undirected graph; nodes carry device signatures, edge labels carry path
    usage counts. *)

val assay : Microfluidics.Assay.t -> string
(** Directed graph; indeterminate operations are drawn as double octagons. *)

val schedule : Cohls.Schedule.t -> string
(** The assay graph coloured by layer and annotated with device bindings
    and start offsets. *)
