lib/export/gantt.ml: Array Buffer Bytes Cohls List Printf String
