lib/export/gantt.mli: Cohls
