lib/export/dot.mli: Cohls Microfluidics
