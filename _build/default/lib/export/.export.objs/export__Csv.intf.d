lib/export/csv.mli: Cohls Microfluidics
