lib/export/csv.ml: Array Assay Buffer Chip Cohls List Microfluidics Operation Printf String
