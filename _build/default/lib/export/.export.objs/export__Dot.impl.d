lib/export/dot.ml: Array Assay Buffer Chip Cohls Device Flowgraph List Microfluidics Operation Printf String
