(** CSV exports for downstream analysis (spreadsheets, pandas, gnuplot). *)

val schedule : Cohls.Schedule.t -> string
(** Header
    [layer,op,name,device,start,min_duration,transport,indeterminate];
    one row per scheduled operation, ascending (layer, start, op). *)

val chip_paths : Microfluidics.Chip.t -> string
(** Header [device_a,device_b,usage]; most-used first. *)

val iterations : Cohls.Synthesis.result -> string
(** Header
    [iteration,fixed_minutes,devices,paths,area,processing,weighted];
    one row per progressive re-synthesis iteration. *)
