open Microfluidics

let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let schedule (s : Cohls.Schedule.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "layer,op,name,device,start,min_duration,transport,indeterminate\n";
  let ops = Assay.operations s.Cohls.Schedule.assay in
  Array.iter
    (fun (l : Cohls.Schedule.layer_schedule) ->
      List.iter
        (fun (e : Cohls.Schedule.entry) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%s,%d,%d,%d,%d,%b\n" l.Cohls.Schedule.layer_index
               e.Cohls.Schedule.op
               (quote ops.(e.Cohls.Schedule.op).Operation.name)
               e.Cohls.Schedule.device e.Cohls.Schedule.start
               e.Cohls.Schedule.min_duration e.Cohls.Schedule.transport
               e.Cohls.Schedule.indeterminate))
        l.Cohls.Schedule.entries)
    s.Cohls.Schedule.layers;
  Buffer.contents buf

let chip_paths c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "device_a,device_b,usage\n";
  List.iter
    (fun ((a, b), usage) -> Buffer.add_string buf (Printf.sprintf "%d,%d,%d\n" a b usage))
    (Chip.path_usage c);
  Buffer.contents buf

let iterations (r : Cohls.Synthesis.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "iteration,fixed_minutes,devices,paths,area,processing,weighted\n";
  List.iter
    (fun (it : Cohls.Synthesis.iteration) ->
      let b = it.Cohls.Synthesis.breakdown in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d\n" it.Cohls.Synthesis.iteration_index
           b.Cohls.Schedule.fixed_minutes b.Cohls.Schedule.devices b.Cohls.Schedule.paths
           b.Cohls.Schedule.area b.Cohls.Schedule.processing b.Cohls.Schedule.weighted))
    r.Cohls.Synthesis.iterations;
  Buffer.contents buf
