open Microfluidics

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' || c = '\\' then Buffer.add_char buf '\\' else (); Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chip c =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph chip {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (d : Device.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  d%d [label=\"d%d\\n%s\"];\n" d.Device.id d.Device.id
           (escape (Device.signature d))))
    (Chip.devices c);
  List.iter
    (fun ((a, b), usage) ->
      Buffer.add_string buf (Printf.sprintf "  d%d -- d%d [label=\"%d\"];\n" a b usage))
    (Chip.path_usage c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let op_shape (o : Operation.t) =
  if Operation.is_indeterminate o then "doubleoctagon" else "ellipse"

let assay a =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph assay {\n  rankdir=TB;\n";
  Array.iter
    (fun (o : Operation.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [shape=%s, label=\"%d: %s\\n%s\"];\n" o.Operation.id
           (op_shape o) o.Operation.id (escape o.Operation.name)
           (escape (Operation.requirement_signature o))))
    (Assay.operations a);
  Flowgraph.Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  o%d -> o%d;\n" u v))
    (Assay.dependency_graph a);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let layer_colors =
  [| "lightblue"; "lightgoldenrod"; "lightpink"; "lightseagreen"; "plum"; "khaki" |]

let schedule (s : Cohls.Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph schedule {\n  rankdir=TB;\n  node [style=filled];\n";
  let a = s.Cohls.Schedule.assay in
  Array.iter
    (fun (o : Operation.t) ->
      let extra =
        match Cohls.Schedule.entry_of_op s o.Operation.id with
        | Some e ->
          Printf.sprintf "d%d @ t=%d" e.Cohls.Schedule.device e.Cohls.Schedule.start
        | None -> "unbound"
      in
      let layer = s.Cohls.Schedule.layering.Cohls.Layering.layer_of_op.(o.Operation.id) in
      let color = layer_colors.(((layer mod Array.length layer_colors) + Array.length layer_colors) mod Array.length layer_colors) in
      Buffer.add_string buf
        (Printf.sprintf "  o%d [shape=%s, fillcolor=%s, label=\"%d: %s\\nL%d %s\"];\n"
           o.Operation.id (op_shape o) color o.Operation.id (escape o.Operation.name)
           layer (escape extra)))
    (Assay.operations a);
  Flowgraph.Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  o%d -> o%d;\n" u v))
    (Assay.dependency_graph a);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
