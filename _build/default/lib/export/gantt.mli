(** ASCII Gantt charts of hybrid schedules.

    One row per device, one column per [minutes_per_cell] minutes; layers
    are rendered one after another with a [|] boundary column. Operation
    cells show the operation id modulo 62 as an alphanumeric glyph;
    indeterminate tails are drawn with [~] to the layer boundary. *)

val render : ?minutes_per_cell:int -> Cohls.Schedule.t -> string
(** @raise Invalid_argument if [minutes_per_cell < 1]. *)

val render_layer : ?minutes_per_cell:int -> Cohls.Schedule.t -> int -> string
(** One layer only. @raise Invalid_argument on an unknown layer index. *)
