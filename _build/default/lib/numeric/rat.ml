module B = Bigint

type t = { n : B.t; d : B.t }

let normalise n d =
  if B.is_zero d then raise Division_by_zero
  else if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let g = B.gcd n d in
    let n = B.div n g and d = B.div d g in
    if B.sign d < 0 then { n = B.neg n; d = B.neg d } else { n; d }
  end

let make n d = normalise n d
let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }

let of_int i = { n = B.of_int i; d = B.one }
let of_ints n d = normalise (B.of_int n) (B.of_int d)
let of_bigint n = { n; d = B.one }
let num x = x.n
let den x = x.d

let add a b = normalise (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let sub a b = normalise (B.sub (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let mul a b = normalise (B.mul a.n b.n) (B.mul a.d b.d)
let div a b = normalise (B.mul a.n b.d) (B.mul a.d b.n)
let neg a = { a with n = B.neg a.n }
let abs a = { a with n = B.abs a.n }
let inv a = normalise a.d a.n

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = B.equal a.n b.n && B.equal a.d b.d
let is_zero a = B.is_zero a.n
let sign a = B.sign a.n
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor a =
  let q, r = B.divmod a.n a.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil a =
  let q, r = B.divmod a.n a.d in
  if B.sign r > 0 then B.add q B.one else q

let is_integer a = B.is_one a.d

let to_float a = B.to_float a.n /. B.to_float a.d

let of_float_approx f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float_approx: not finite";
  let m, e = Float.frexp f in
  (* f = m * 2^e with 0.5 <= |m| < 1; m * 2^53 is integral for doubles. *)
  let mi = Int64.to_int (Int64.of_float (m *. 9007199254740992.0)) in
  let e = e - 53 in
  if e >= 0 then of_bigint (B.mul (B.of_int mi) (B.pow B.two e))
  else normalise (B.of_int mi) (B.pow B.two (-e))

let to_string a =
  if B.is_one a.d then B.to_string a.n
  else B.to_string a.n ^ "/" ^ B.to_string a.d

let pp fmt a = Format.pp_print_string fmt (to_string a)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let ( = ) = equal
