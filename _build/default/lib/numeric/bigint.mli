(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^15] digits. This module exists
    because the sealed build environment ships no [zarith]; the exact-rational
    simplex in {!module:Lp} needs unbounded integers to avoid pivot
    overflow. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and [r]
    carrying the sign of [a] (truncated division, like [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val to_float : t -> float
(** Best-effort conversion; may lose precision or overflow to infinity. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
