(** Exact rational numbers over {!Bigint}.

    Values are kept normalised: the denominator is strictly positive and
    coprime with the numerator; zero is [0/1]. Total ordering is the usual
    order on ℚ. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalises the fraction. @raise Division_by_zero if
    [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero if [den = 0]. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer [<=] the value. *)

val ceil : t -> Bigint.t
(** Smallest integer [>=] the value. *)

val is_integer : t -> bool

val to_float : t -> float
val of_float_approx : float -> t
(** Dyadic approximation of a finite float (exact for IEEE doubles).
    @raise Invalid_argument on NaN or infinities. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
