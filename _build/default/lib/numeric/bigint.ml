(* Sign-magnitude bignum over little-endian base-2^15 digits.
   Invariants: [mag] has no trailing zero digit; [sign = 0] iff [mag] is
   empty; every digit d satisfies [0 <= d < base].
   Base 2^15 keeps every intermediate of schoolbook multiplication and of
   Knuth's algorithm D inside 62 bits on a 64-bit [int]. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let check_invariant x =
  let n = Array.length x.mag in
  (if x.sign = 0 then n = 0 else n > 0 && x.mag.(n - 1) <> 0)
  && Array.for_all (fun d -> d >= 0 && d < base) x.mag

let trim mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| = 2^62 has no positive [int] counterpart: 62 = 4*15 + 2. *)
    { sign = -1; mag = [| 0; 0; 0; 0; 4 |] }
  else begin
    let sign = if n > 0 then 1 else -1 in
    let m = if n > 0 then n else -n in
    let rec build acc n =
      if n = 0 then List.rev acc else build ((n land base_mask) :: acc) (n lsr base_bits)
    in
    { sign; mag = Array.of_list (build [] m) }
  end

let sign x = x.sign
let is_zero x = x.sign = 0

(* Magnitude comparison: -1 / 0 / 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let sub x y = add x (neg y)
let abs x = if x.sign < 0 then neg x else x

let schoolbook_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      (* propagate the final carry (it can span several digits only if the
         slot already held data, which it cannot here beyond one digit) *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    r
  end

(* Above this digit count Karatsuba's three half-size multiplications beat
   the quadratic schoolbook loop. *)
let karatsuba_threshold = 32

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then schoolbook_mag a b
  else begin
    (* split both at m digits: x = x1 * B^m + x0, and
       x*y = z2 B^2m + ((x0+x1)(y0+y1) - z0 - z2) B^m + z0 *)
    let m = (if la > lb then la else lb) / 2 in
    let low x = trim (Array.sub x 0 (if Array.length x < m then Array.length x else m)) in
    let high x =
      if Array.length x <= m then [||] else Array.sub x m (Array.length x - m)
    in
    let a0 = low a and a1 = high a in
    let b0 = low b and b1 = high b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2; all intermediates non-negative, and the
         minuend is at least as long as each subtrahend once trimmed *)
      let p = trim (mul_mag (trim (add_mag a0 a1)) (trim (add_mag b0 b1))) in
      trim (sub_mag (trim (sub_mag p (trim z0))) (trim z2))
    in
    let shifted x k =
      let x = trim x in
      if Array.length x = 0 then [||] else Array.append (Array.make k 0) x
    in
    add_mag (add_mag z0 (shifted z1 m)) (shifted z2 (2 * m))
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

(* Divide magnitude [a] by a single digit [d]; returns (quotient, remainder). *)
let divmod_mag_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D on magnitudes. Requires |a| >= |b|, length b >= 2.
   Returns (quotient, remainder) magnitudes. *)
let divmod_mag_long a b =
  let n = Array.length b in
  let m = Array.length a - n in
  (* Normalise so that the top digit of b is >= base/2. *)
  let shift =
    let rec go s top = if top >= base / 2 then s else go (s + 1) (top lsl 1) in
    go 0 b.(n - 1)
  in
  let shl mag extra_slot =
    (* left-shift whole magnitude by [shift] bits, with optional extra top slot *)
    let l = Array.length mag in
    let r = Array.make (l + extra_slot) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let cur = (mag.(i) lsl shift) lor !carry in
      r.(i) <- cur land base_mask;
      carry := cur lsr base_bits
    done;
    if extra_slot > 0 then r.(l) <- !carry else assert (!carry = 0);
    r
  in
  let u = shl a 1 in
  let v = shl b 0 in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* Estimate q̂ from the top two digits of the current remainder window. *)
    let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top / v.(n - 1)) in
    let rhat = ref (top mod v.(n - 1)) in
    if !qhat >= base then begin qhat := base - 1; rhat := top - !qhat * v.(n - 1) end;
    let continue = ref true in
    while !continue && !rhat < base do
      if n >= 2 && !qhat * v.(n - 2) > (!rhat lsl base_bits) lor u.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + v.(n - 1)
      end
      else continue := false
    done;
    (* Multiply-subtract u[j .. j+n] -= q̂ * v. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * v.(i) + !carry in
      carry := p lsr base_bits;
      let s = u.(i + j) - (p land base_mask) - !borrow in
      if s < 0 then begin u.(i + j) <- s + base; borrow := 1 end
      else begin u.(i + j) <- s; borrow := 0 end
    done;
    let s = u.(j + n) - !carry - !borrow in
    if s < 0 then begin
      (* q̂ was one too large: add back. *)
      u.(j + n) <- s + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let t = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- t land base_mask;
        carry2 := t lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land base_mask
    end
    else u.(j + n) <- s;
    q.(j) <- !qhat
  done;
  (* Denormalise the remainder. *)
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!carry lsl base_bits) lor u.(i) in
    r.(i) <- cur lsr shift;
    carry := cur land ((1 lsl shift) - 1)
  done;
  (q, r)

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else begin
    let c = cmp_mag x.mag y.mag in
    if c < 0 then (zero, x)
    else if c = 0 then (make (x.sign * y.sign) [| 1 |], zero)
    else begin
      let qmag, rmag =
        if Array.length y.mag = 1 then begin
          let q, r = divmod_mag_digit x.mag y.mag.(0) in
          (q, if r = 0 then [||] else [| r |])
        end
        else divmod_mag_long x.mag y.mag
      in
      (make (x.sign * y.sign) qmag, make x.sign rmag)
    end
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd x y = gcd_aux (abs x) (abs y)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let mul_int x n = mul x (of_int n)
let add_int x n = add x (of_int n)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let to_int_opt x =
  (* Accumulate negatively so that [min_int] (which has no positive
     counterpart) still round-trips. *)
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if n > 5 then None
  else begin
    let rec value i acc =
      if i < 0 then
        if x.sign < 0 then Some acc
        else if acc = min_int then None
        else Some (-acc)
      else if acc < min_int / base then None
      else begin
        let shifted = acc * base in
        if shifted >= min_int + x.mag.(i) then value (i - 1) (shifted - x.mag.(i)) else None
      end
    in
    value (n - 1) 0
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of range"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !f else !f

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks acc mag =
      if Array.length (trim mag) = 0 then acc
      else begin
        let q, r = divmod_mag_digit mag 10000 in
        chunks (r :: acc) (trim q)
      end
    in
    match chunks [] x.mag with
    | [] -> "0"
    | first :: rest ->
      if x.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let l = String.length s in
  if l = 0 then invalid_arg "Bigint.of_string: empty";
  let sign_mult, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | '0' .. '9' -> (1, 0)
    | _ -> invalid_arg "Bigint.of_string: bad sign"
  in
  if start >= l then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to l - 1 do
    match s.[i] with
    | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | _ -> invalid_arg "Bigint.of_string: bad digit"
  done;
  if sign_mult < 0 then neg !acc else !acc

let hash x = x.sign * (Array.fold_left (fun h d -> (h * 31 + d) land max_int) 17 x.mag)

let pp fmt x = Format.pp_print_string fmt (to_string x)

let () = assert (check_invariant zero)
