lib/control/actuation.mli: Cohls Control_layer Format
