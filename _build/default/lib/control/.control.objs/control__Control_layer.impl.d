lib/control/control_layer.ml: Accessory Chip Components Device Format Hashtbl List Microfluidics Option Printf
