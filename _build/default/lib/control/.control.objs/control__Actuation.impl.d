lib/control/actuation.ml: Accessory Array Assay Cohls Components Control_layer Flowgraph Format Hashtbl List Microfluidics Operation Option Printf
