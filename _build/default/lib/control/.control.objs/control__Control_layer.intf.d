lib/control/control_layer.mli: Chip Format Microfluidics
