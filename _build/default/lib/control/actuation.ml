open Microfluidics
open Components

type state = Opened | Closed

type event = { minute : int; valve : int; state : state }

type timeline = { events : event list; horizon : int }

(* Per-valve open intervals are collected first and merged, so the emitted
   stream is alternating by construction even when operations share valves
   with overlapping windows. *)
let merge_intervals intervals =
  let sorted = List.sort compare intervals in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> begin
      match acc with
      | (s0, e0) :: acc' when s <= e0 -> go ((s0, max e0 e) :: acc') rest
      | _ -> go ((s, e) :: acc) rest
    end
  in
  go [] sorted

let synthesise layer (schedule : Cohls.Schedule.t) =
  let intervals = Hashtbl.create 64 in
  let add_interval valve s e =
    if e > s then begin
      let cur = Option.value ~default:[] (Hashtbl.find_opt intervals valve) in
      Hashtbl.replace intervals valve ((s, e) :: cur)
    end
  in
  let ops = Assay.operations schedule.Cohls.Schedule.assay in
  let device_of = Hashtbl.create 64 in
  Array.iter
    (fun (l : Cohls.Schedule.layer_schedule) ->
      List.iter
        (fun (e : Cohls.Schedule.entry) ->
          Hashtbl.replace device_of e.Cohls.Schedule.op e.Cohls.Schedule.device)
        l.Cohls.Schedule.entries)
    schedule.Cohls.Schedule.layers;
  let graph = Assay.dependency_graph schedule.Cohls.Schedule.assay in
  let offset = ref 0 in
  let horizon = Cohls.Schedule.total_fixed_minutes schedule in
  Array.iter
    (fun (l : Cohls.Schedule.layer_schedule) ->
      let process (e : Cohls.Schedule.entry) =
        let dev = e.Cohls.Schedule.device in
        let dvalves = Control_layer.valves_of_device layer dev in
        if dvalves = [] then
          invalid_arg
            (Printf.sprintf "Actuation.synthesise: device %d not in control layer" dev);
        let abs_start = !offset + e.Cohls.Schedule.start in
        let exec_end = abs_start + e.Cohls.Schedule.min_duration in
        let busy_end = exec_end + e.Cohls.Schedule.transport in
        let o = ops.(e.Cohls.Schedule.op) in
        let wants_pump = Accessory.Set.mem Accessory.Pump o.Operation.accessories in
        let wants_sieve = Accessory.Set.mem Accessory.Sieve_valve o.Operation.accessories in
        List.iter
          (fun (v : Control_layer.valve) ->
            match v.Control_layer.role with
            | Control_layer.Isolation_inlet | Control_layer.Isolation_outlet ->
              add_interval v.Control_layer.valve_id abs_start busy_end
            | Control_layer.Peristaltic _ ->
              if wants_pump then add_interval v.Control_layer.valve_id abs_start exec_end
            | Control_layer.Sieve ->
              if wants_sieve then add_interval v.Control_layer.valve_id abs_start exec_end
            | Control_layer.Path_gate _ -> ())
          dvalves;
        (* transportation windows towards children on other devices *)
        let transfer child =
          match Hashtbl.find_opt device_of child with
          | Some dev' when dev' <> dev ->
            List.iter
              (fun (v : Control_layer.valve) ->
                add_interval v.Control_layer.valve_id exec_end busy_end)
              (Control_layer.valves_of_path layer dev dev')
          | Some _ | None -> ()
        in
        List.iter transfer (Flowgraph.Digraph.succ graph e.Cohls.Schedule.op)
      in
      List.iter process l.Cohls.Schedule.entries;
      offset := !offset + l.Cohls.Schedule.fixed_makespan)
    schedule.Cohls.Schedule.layers;
  let events = ref [] in
  Hashtbl.iter
    (fun valve ivals ->
      List.iter
        (fun (s, e) ->
          events :=
            { minute = s; valve; state = Opened }
            :: { minute = e; valve; state = Closed }
            :: !events)
        (merge_intervals ivals))
    intervals;
  let events =
    List.sort
      (fun a b -> compare (a.minute, a.valve, a.state) (b.minute, b.valve, b.state))
      !events
  in
  { events; horizon }

let switch_count t = List.length t.events

let validate t =
  let last_state = Hashtbl.create 32 in
  let last_close = Hashtbl.create 32 in
  let error = ref None in
  let step e =
    if !error = None then begin
      let prev =
        Option.value ~default:Closed (Hashtbl.find_opt last_state e.valve)
      in
      if prev = e.state then
        error :=
          Some
            (Printf.sprintf "valve %d switched to its current state at minute %d"
               e.valve e.minute)
      else begin
        Hashtbl.replace last_state e.valve e.state;
        if e.state = Closed then Hashtbl.replace last_close e.valve e.minute
      end
    end
  in
  List.iter step t.events;
  (match !error with
   | None ->
     Hashtbl.iter
       (fun valve st ->
         if st = Opened then
           error := Some (Printf.sprintf "valve %d still open at the horizon" valve))
       last_state
   | Some _ -> ());
  (match !error with
   | None ->
     Hashtbl.iter
       (fun valve minute ->
         if minute > t.horizon then
           error :=
             Some
               (Printf.sprintf "valve %d closes at %d, after the horizon %d" valve
                  minute t.horizon))
       last_close
   | Some _ -> ());
  match !error with None -> Ok () | Some msg -> Error msg

let pp fmt t =
  Format.fprintf fmt "@[<v>actuation: %d events over %d minutes@," (switch_count t)
    t.horizon;
  List.iter
    (fun e ->
      Format.fprintf fmt "  t=%-4d v%-3d %s@," e.minute e.valve
        (match e.state with Opened -> "open" | Closed -> "close"))
    t.events;
  Format.fprintf fmt "@]"
