open Microfluidics
open Components

type role =
  | Isolation_inlet
  | Isolation_outlet
  | Peristaltic of int
  | Sieve
  | Path_gate of [ `Lo | `Hi ]

type valve = {
  valve_id : int;
  role : role;
  device : int option;
  path : (int * int) option;
}

type t = {
  all : valve list; (* ascending id *)
  by_device : (int, valve list) Hashtbl.t;
  by_path : (int * int, valve list) Hashtbl.t;
  signals : int;
}

let of_chip chip =
  let next = ref 0 in
  let fresh role device path =
    let v = { valve_id = !next; role; device; path } in
    incr next;
    v
  in
  let by_device = Hashtbl.create 16 in
  let by_path = Hashtbl.create 16 in
  let all = ref [] in
  let add_device_valve d role =
    let v = fresh role (Some d.Device.id) None in
    all := v :: !all;
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_device d.Device.id) in
    Hashtbl.replace by_device d.Device.id (cur @ [ v ])
  in
  let signals = ref 0 in
  let process_device (d : Device.t) =
    add_device_valve d Isolation_inlet;
    add_device_valve d Isolation_outlet;
    if Accessory.Set.mem Accessory.Pump d.Device.accessories then
      for phase = 0 to 2 do
        add_device_valve d (Peristaltic phase)
      done;
    if Accessory.Set.mem Accessory.Sieve_valve d.Device.accessories then
      add_device_valve d Sieve;
    if Accessory.Set.mem Accessory.Heating_pad d.Device.accessories then incr signals;
    if Accessory.Set.mem Accessory.Optical_system d.Device.accessories then incr signals
  in
  List.iter process_device (Chip.devices chip);
  let process_path ((lo, hi), _usage) =
    let vl = fresh (Path_gate `Lo) None (Some (lo, hi)) in
    let vh = fresh (Path_gate `Hi) None (Some (lo, hi)) in
    all := vh :: vl :: !all;
    Hashtbl.replace by_path (lo, hi) [ vl; vh ]
  in
  List.iter process_path (Chip.path_usage chip);
  { all = List.rev !all; by_device; by_path; signals = !signals }

let valve_count t = List.length t.all
let valves t = t.all

let valves_of_device t d =
  Option.value ~default:[] (Hashtbl.find_opt t.by_device d)

let valves_of_path t a b =
  Option.value ~default:[] (Hashtbl.find_opt t.by_path (min a b, max a b))

let signal_count t = t.signals

let role_string = function
  | Isolation_inlet -> "iso-in"
  | Isolation_outlet -> "iso-out"
  | Peristaltic k -> Printf.sprintf "pump%d" k
  | Sieve -> "sieve"
  | Path_gate `Lo -> "gate-lo"
  | Path_gate `Hi -> "gate-hi"

let pp fmt t =
  Format.fprintf fmt "@[<v>control layer: %d valves, %d signals@," (valve_count t)
    t.signals;
  List.iter
    (fun v ->
      let owner =
        match (v.device, v.path) with
        | Some d, _ -> Printf.sprintf "d%d" d
        | None, Some (a, b) -> Printf.sprintf "p%d-%d" a b
        | None, None -> "?"
      in
      Format.fprintf fmt "  v%-3d %-8s %s@," v.valve_id (role_string v.role) owner)
    t.all;
  Format.fprintf fmt "@]"
