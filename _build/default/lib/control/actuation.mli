(** Valve actuation synthesis: from a hybrid schedule to the open/close
    timeline the chip controller must drive.

    For every scheduled operation the owning device's isolation valves open
    at its start and close at its end; pump valves run while a pump-needing
    operation executes on a pumped device; sieve valves close over washing /
    sieving windows. Every inter-device reagent transfer opens both path
    gates plus the two devices' facing isolation valves during the
    transportation window that follows the parent operation.

    The total number of switching events is the metric that the paper's
    reference [4] minimises; the bench compares it across binding rules
    (fewer transportation paths mean fewer gate switches). *)

type state = Opened | Closed

type event = {
  minute : int;  (** absolute assay time (fixed parts concatenated) *)
  valve : int;
  state : state;
}

type timeline = {
  events : event list;  (** ascending (minute, valve) *)
  horizon : int;  (** total fixed minutes *)
}

val synthesise : Control_layer.t -> Cohls.Schedule.t -> timeline
(** @raise Invalid_argument when the schedule references a device unknown
    to the control layer. *)

val switch_count : timeline -> int
(** Number of state changes actually driven (an [Opened] on an already-open
    valve is not a switch). *)

val validate : timeline -> (unit, string) result
(** The event stream must be consistent: per valve, alternating states
    starting from closed, and every valve closed again by the horizon. *)

val pp : Format.formatter -> timeline -> unit
