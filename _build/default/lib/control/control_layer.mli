(** Control-layer netlist derived from a synthesised chip.

    Continuous-flow chips are driven by pressure-actuated valves on a
    separate control layer (the paper's §2; its references [4] and [15]
    optimise this layer). This module derives the canonical valve set a
    chip needs:

    - every container is sealed by an inlet and an outlet isolation valve;
    - a pump accessory contributes three peristaltic valves (the classic
      rotary-mixer drive);
    - a sieve-valve accessory contributes one sieve valve;
    - every transportation path is gated by one valve at each end.

    Heating pads, optical systems and cell traps need control {e signals}
    but no flow-layer valves; they are counted separately. *)

open Microfluidics

type role =
  | Isolation_inlet
  | Isolation_outlet
  | Peristaltic of int  (** phase 0, 1 or 2 *)
  | Sieve
  | Path_gate of [ `Lo | `Hi ]
      (** at the lower-id or higher-id end of the path *)

type valve = {
  valve_id : int;
  role : role;
  device : int option;  (** owning device, for device valves *)
  path : (int * int) option;  (** owning path, for path gates *)
}

type t

val of_chip : Chip.t -> t
val valve_count : t -> int
val valves : t -> valve list
(** Ascending id. *)

val valves_of_device : t -> int -> valve list
val valves_of_path : t -> int -> int -> valve list
val signal_count : t -> int
(** Non-valve control signals: one per heating pad and per optical system. *)

val pp : Format.formatter -> t -> unit
