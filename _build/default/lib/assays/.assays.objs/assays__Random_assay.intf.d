lib/assays/random_assay.mli: Microfluidics
