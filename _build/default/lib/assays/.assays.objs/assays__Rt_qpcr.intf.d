lib/assays/rt_qpcr.mli: Microfluidics
