lib/assays/gene_expression.mli: Microfluidics
