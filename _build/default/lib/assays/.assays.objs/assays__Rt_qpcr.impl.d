lib/assays/rt_qpcr.ml: Accessory Assay Capacity Components Container Microfluidics Operation
