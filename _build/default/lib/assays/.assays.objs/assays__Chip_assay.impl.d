lib/assays/chip_assay.ml: Accessory Assay Capacity Components Container Microfluidics Operation
