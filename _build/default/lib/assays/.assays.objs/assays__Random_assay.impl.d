lib/assays/random_assay.ml: Accessory Assay Components Container List Microfluidics Operation Printf
