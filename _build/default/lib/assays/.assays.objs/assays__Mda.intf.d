lib/assays/mda.mli: Microfluidics
