lib/assays/chip_assay.mli: Microfluidics
