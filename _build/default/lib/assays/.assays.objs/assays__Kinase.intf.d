lib/assays/kinase.mli: Microfluidics
