lib/assays/kinase.ml: Accessory Assay Capacity Components Container Microfluidics Operation
