lib/assays/mda.ml: Accessory Assay Capacity Components Container Microfluidics Operation
