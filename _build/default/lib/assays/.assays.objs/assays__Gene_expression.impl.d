lib/assays/gene_expression.ml: Accessory Assay Capacity Components Container Microfluidics Operation
