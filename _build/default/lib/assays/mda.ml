open Microfluidics
open Components

let base_op_count = 5
let replication = 12

let base () =
  let a = Assay.create ~name:"single-cell-mda" in
  let fixed m = Operation.Fixed m in
  let sort_cell =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Cell_trap; Accessory.Optical_system ]
      ~duration:(Operation.Indeterminate { min_minutes = 12 })
      "sort-single-cell"
  in
  let lyse =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~duration:(fixed 15) "alkaline-lysis"
  in
  let neutralise =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~duration:(fixed 5) "neutralise"
  in
  let amplify =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Heating_pad ] ~duration:(fixed 60)
      "mda-amplify"
  in
  let quantify =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(fixed 6) "quantify-dna"
  in
  Assay.add_dependency a ~parent:sort_cell ~child:lyse;
  Assay.add_dependency a ~parent:lyse ~child:neutralise;
  Assay.add_dependency a ~parent:neutralise ~child:amplify;
  Assay.add_dependency a ~parent:amplify ~child:quantify;
  a

let testcase () = Assay.replicate (base ()) ~copies:replication
