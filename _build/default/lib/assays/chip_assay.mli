(** Additional protocol: automated microfluidic chromatin
    immunoprecipitation (Wu et al., Lab Chip 2009 — reference [14] of the
    paper).

    AutoChIP is washing-heavy: chromatin is bound to antibody beads held by
    sieve valves and washed repeatedly — exactly the kind of protocol whose
    operations monopolise sieve-valve chambers rather than classical
    mixers. All operations are determinate. Not part of the paper's
    evaluation; used by the stress benches and extra examples. *)

val base : unit -> Microfluidics.Assay.t
(** One ChIP pipeline: 9 operations, all determinate. *)

val testcase : unit -> Microfluidics.Assay.t
(** 8 replicated pipelines, 72 operations. *)

val base_op_count : int
val replication : int
