open Microfluidics
open Components

type params = {
  op_count : int;
  indeterminate_fraction : float;
  edge_probability : float;
  max_duration : int;
}

let default_params =
  { op_count = 20; indeterminate_fraction = 0.2; edge_probability = 0.15; max_duration = 30 }

(* Small deterministic PRNG (xorshift), independent from Stdlib.Random so
   test outcomes never depend on global state. *)
type rng = { mutable s : int }

let rng_make seed = { s = (if seed = 0 then 0x2545F491 else seed land max_int) }

let rng_int r bound =
  r.s <- r.s lxor (r.s lsl 13) land max_int;
  r.s <- r.s lxor (r.s lsr 7);
  r.s <- r.s lxor (r.s lsl 17) land max_int;
  abs r.s mod bound

let rng_float r = float_of_int (rng_int r 1_000_000) /. 1_000_000.0

let pick r l = List.nth l (rng_int r (List.length l))

let generate ~seed params =
  if params.op_count < 1 then invalid_arg "Random_assay.generate: op_count";
  let r = rng_make (seed * 2654435761 + 1) in
  let a = Assay.create ~name:(Printf.sprintf "random-%d" seed) in
  for i = 0 to params.op_count - 1 do
    let container =
      match rng_int r 3 with
      | 0 -> Some Container.Ring
      | 1 -> Some Container.Chamber
      | _ -> None
    in
    let capacity =
      match container with
      | Some c -> if rng_int r 2 = 0 then Some (pick r (Container.allowed_capacities c)) else None
      | None -> None
    in
    let accessories =
      List.filter (fun _ -> rng_int r 4 = 0) Accessory.all
    in
    let duration =
      let d = 1 + rng_int r params.max_duration in
      if rng_float r < params.indeterminate_fraction then
        Operation.Indeterminate { min_minutes = d }
      else Operation.Fixed d
    in
    ignore
      (Assay.add_operation a ?container ?capacity ~accessories ~duration
         (Printf.sprintf "op%d" i))
  done;
  (* edges only forward: acyclic by construction; an indeterminate op keeps
     its children (the layering algorithm must cope with that) *)
  for i = 0 to params.op_count - 2 do
    for j = i + 1 to params.op_count - 1 do
      if rng_float r < params.edge_probability then
        Assay.add_dependency a ~parent:i ~child:j
    done
  done;
  a
