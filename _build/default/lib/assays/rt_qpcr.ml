open Microfluidics
open Components

let base_op_count = 6
let replication = 20

let base () =
  let a = Assay.create ~name:"single-cell-rt-qpcr" in
  let fixed m = Operation.Fixed m in
  let capture =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Cell_trap; Accessory.Optical_system ]
      ~duration:(Operation.Indeterminate { min_minutes = 10 })
      "capture-cell"
  in
  let wash =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 5) "wash"
  in
  let lyse =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~duration:(fixed 10) "lyse"
  in
  let reverse_transcription =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Heating_pad ] ~duration:(fixed 30)
      "reverse-transcription"
  in
  let qpcr =
    Assay.add_operation a ~container:Container.Ring ~capacity:Capacity.Medium
      ~accessories:[ Accessory.Pump; Accessory.Heating_pad; Accessory.Optical_system ]
      ~duration:(fixed 40) "qpcr"
  in
  let analyze =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(fixed 5) "analyze"
  in
  Assay.add_dependency a ~parent:capture ~child:wash;
  Assay.add_dependency a ~parent:wash ~child:lyse;
  Assay.add_dependency a ~parent:lyse ~child:reverse_transcription;
  Assay.add_dependency a ~parent:reverse_transcription ~child:qpcr;
  Assay.add_dependency a ~parent:qpcr ~child:analyze;
  a

let testcase () = Assay.replicate (base ()) ~copies:replication
