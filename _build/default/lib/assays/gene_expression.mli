(** Test case 2: gene expression profiling of single human embryonic stem
    cells (Zhong et al., Lab Chip 2008 — reference [7] of the paper; the
    chip of Fig. 1).

    The per-cell pipeline starts with single-cell capture, whose duration is
    indeterminate: a trap holds exactly one cell only ~53% of the time, so
    the result must be inspected and the capture possibly rerun. Replicated
    to the paper's 70 operations with 10 indeterminate ones. *)

val base : unit -> Microfluidics.Assay.t
(** One cell's pipeline: 7 operations, 1 indeterminate. *)

val testcase : unit -> Microfluidics.Assay.t
(** The paper's case 2: 10 instances, 70 operations, 10 indeterminate. *)

val base_op_count : int
val replication : int
