(** Additional protocol: nanoliter-reactor multiple displacement
    amplification of single-cell genomes (Marcy et al., PLoS Genet. 2007 —
    reference [12] of the paper).

    The paper cites this work for run-time indeterminacy: cells are
    detected by fluorescence and the capture is rerun when the count is not
    one, so the sorting operation cannot occupy a fixed slot. Not part of
    the paper's evaluation; used by the stress benches and extra
    examples. *)

val base : unit -> Microfluidics.Assay.t
(** One pipeline: 5 operations, 1 indeterminate. *)

val testcase : unit -> Microfluidics.Assay.t
(** 12 replicated pipelines, 60 operations, 12 indeterminate. *)

val base_op_count : int
val replication : int
