(** Test case 1: kinase activity radioassay (Fang et al., Cancer Res. 2010
    — reference [10] of the paper; the chip of Fig. 2).

    The protocol captures a peptide substrate on a sieve-valve bead column,
    mixes a large sample volume through it by flow reversal, washes, elutes
    and reads the radioactivity out. All durations are exact: the paper uses
    this assay as its determinate test case (16 operations after
    replication, 0 indeterminate). *)

val base : unit -> Microfluidics.Assay.t
(** One instance: 8 operations, all determinate. *)

val testcase : unit -> Microfluidics.Assay.t
(** The paper's case 1: two replicated instances, 16 operations. *)

val base_op_count : int
val replication : int
