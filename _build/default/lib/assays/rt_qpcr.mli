(** Test case 3: high-throughput single-cell RT-qPCR (White et al., PNAS
    2011 — reference [17] of the paper).

    Cell capture is indeterminate; reverse transcription and qPCR demand
    precise thermal control, which is exactly why a pre-generated schedule
    (not pure run-time decisions) matters. Replicated to the paper's 120
    operations with 20 indeterminate ones. *)

val base : unit -> Microfluidics.Assay.t
(** One cell's pipeline: 6 operations, 1 indeterminate. *)

val testcase : unit -> Microfluidics.Assay.t
(** The paper's case 3: 20 instances, 120 operations, 20 indeterminate. *)

val base_op_count : int
val replication : int
