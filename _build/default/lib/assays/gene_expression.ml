open Microfluidics
open Components

let base_op_count = 7
let replication = 10

let base () =
  let a = Assay.create ~name:"gene-expression-profiling" in
  let fixed m = Operation.Fixed m in
  let capture =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Cell_trap; Accessory.Optical_system ]
      ~duration:(Operation.Indeterminate { min_minutes = 8 })
      "capture-single-cell"
  in
  let lyse =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~duration:(fixed 10) "lyse-cell"
  in
  let mrna_capture =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 15) "mrna-capture"
  in
  let cdna_synthesis =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Heating_pad ] ~duration:(fixed 30)
      "cdna-synthesis"
  in
  let purify =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 10) "purify-wash"
  in
  let amplify =
    Assay.add_operation a ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump; Accessory.Heating_pad ]
      ~duration:(fixed 25) "amplify"
  in
  let detect =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(fixed 8) "detect"
  in
  Assay.add_dependency a ~parent:capture ~child:lyse;
  Assay.add_dependency a ~parent:lyse ~child:mrna_capture;
  Assay.add_dependency a ~parent:mrna_capture ~child:cdna_synthesis;
  Assay.add_dependency a ~parent:cdna_synthesis ~child:purify;
  Assay.add_dependency a ~parent:purify ~child:amplify;
  Assay.add_dependency a ~parent:amplify ~child:detect;
  a

let testcase () = Assay.replicate (base ()) ~copies:replication
