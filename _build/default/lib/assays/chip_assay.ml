open Microfluidics
open Components

let base_op_count = 9
let replication = 8

let base () =
  let a = Assay.create ~name:"auto-chip" in
  let fixed m = Operation.Fixed m in
  let load_chromatin =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~duration:(fixed 8) "load-chromatin"
  in
  let bind_beads =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 12) "bind-antibody-beads"
  in
  let immunoprecipitate =
    Assay.add_operation a ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump; Accessory.Sieve_valve ]
      ~duration:(fixed 45) "immunoprecipitate"
  in
  let wash1 =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 8) "wash-low-salt"
  in
  let wash2 =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 8) "wash-high-salt"
  in
  let wash3 =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 8) "wash-licl"
  in
  let elute =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 10) "elute"
  in
  let reverse_crosslink =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Heating_pad ] ~duration:(fixed 35)
      "reverse-crosslink"
  in
  let quantify =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(fixed 6) "quantify"
  in
  Assay.add_dependency a ~parent:load_chromatin ~child:immunoprecipitate;
  Assay.add_dependency a ~parent:bind_beads ~child:immunoprecipitate;
  Assay.add_dependency a ~parent:immunoprecipitate ~child:wash1;
  Assay.add_dependency a ~parent:wash1 ~child:wash2;
  Assay.add_dependency a ~parent:wash2 ~child:wash3;
  Assay.add_dependency a ~parent:wash3 ~child:elute;
  Assay.add_dependency a ~parent:elute ~child:reverse_crosslink;
  Assay.add_dependency a ~parent:reverse_crosslink ~child:quantify;
  a

let testcase () = Assay.replicate (base ()) ~copies:replication
