(** Seeded random assay generation for property-based tests and stress
    benches. Deterministic for a given seed. *)

type params = {
  op_count : int;
  indeterminate_fraction : float;  (** in [0, 1] *)
  edge_probability : float;  (** chance of an edge (i, j), i < j *)
  max_duration : int;  (** minutes, >= 1 *)
}

val default_params : params
(** 20 ops, 20% indeterminate, 15% edges, durations up to 30 minutes. *)

val generate : seed:int -> params -> Microfluidics.Assay.t
(** Operations get random component requirements (possibly unspecified
    container/capacity and a random accessory subset) and a random DAG of
    dependencies (edges only from lower to higher id, so acyclicity is by
    construction). *)
