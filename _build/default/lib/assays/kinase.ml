open Microfluidics
open Components

let base_op_count = 8
let replication = 2

let base () =
  let a = Assay.create ~name:"kinase-radioassay" in
  let fixed m = Operation.Fixed m in
  (* Bead column formation behind sieve valves (Fig. 2 of the paper). *)
  let load_beads =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Sieve_valve ] ~duration:(fixed 10) "load-beads"
  in
  let load_sample =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Medium
      ~duration:(fixed 5) "load-sample"
  in
  (* Large-volume mixing by the flow-reversal protocol: sample pushed back
     and forth through the bead column — a mixing operation that needs sieve
     valves and a pump but no classical mixer ring. *)
  let mix =
    Assay.add_operation a ~container:Container.Chamber ~capacity:Capacity.Medium
      ~accessories:[ Accessory.Sieve_valve; Accessory.Pump ]
      ~duration:(fixed 40) "mix-flow-reversal"
  in
  let wash =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 15) "wash"
  in
  let elute =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(fixed 10) "elute"
  in
  let kinase_reaction =
    Assay.add_operation a ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump ] ~duration:(fixed 20) "kinase-reaction"
  in
  let neutralize =
    Assay.add_operation a ~duration:(fixed 10) "neutralize"
  in
  let detect =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(fixed 10) "radioactivity-readout"
  in
  Assay.add_dependency a ~parent:load_beads ~child:mix;
  Assay.add_dependency a ~parent:load_sample ~child:mix;
  Assay.add_dependency a ~parent:mix ~child:wash;
  Assay.add_dependency a ~parent:wash ~child:elute;
  Assay.add_dependency a ~parent:elute ~child:kinase_reaction;
  Assay.add_dependency a ~parent:kinase_reaction ~child:neutralize;
  Assay.add_dependency a ~parent:neutralize ~child:detect;
  a

let testcase () = Assay.replicate (base ()) ~copies:replication
