(** Root-node presolve: iterated bound propagation.

    For every constraint the minimum/maximum activity implied by current
    variable bounds yields tighter implied bounds per variable; bounds of
    integer variables are rounded inwards. Mutates the model's bounds in
    place. Big-M scheduling models benefit substantially: fixed binaries
    collapse whole disjunctions before branch-and-bound starts. *)

type outcome =
  | Ok of int  (** number of bound changes applied *)
  | Proved_infeasible

val run : ?max_rounds:int -> Model.t -> outcome
(** Default [max_rounds = 10]. *)
