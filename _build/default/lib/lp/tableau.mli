(** Dense two-phase primal simplex on standard-form problems

    {[ minimise  c . x   subject to   A x = b,  x >= 0 ]}

    with [b >= 0] (the caller flips row signs beforehand). Artificial
    variables are managed internally; Bland's rule guarantees termination.
    This is the kernel under both {!Simplex} front-ends. *)

type 'num result =
  | Optimal of 'num * 'num array
      (** objective value, values of the [n] structural variables *)
  | Infeasible
  | Unbounded

module Make (F : Field.S) : sig
  val solve :
    ?max_iters:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    F.t result
  (** [solve ~a ~b ~c ()] with [a] of shape [m x n], [b] length [m]
      (all entries [>= 0]), [c] length [n].
      @raise Invalid_argument on shape mismatch or negative [b] entries.
      @raise Failure if [max_iters] (default [50_000]) pivots are exceeded. *)
end
