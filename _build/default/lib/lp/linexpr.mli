(** Sparse linear expressions [sum_i c_i * x_i + k] over integer variable ids
    with exact rational coefficients. The building block of {!Model}. *)

type t

val zero : t
val constant : Numeric.Rat.t -> t
val of_int : int -> t
val var : int -> t
(** [var v] is the expression [1 * x_v]. *)

val term : Numeric.Rat.t -> int -> t
(** [term c v] is [c * x_v]. *)

val iterm : int -> int -> t
(** [iterm c v] is [c * x_v] with an integer coefficient. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Numeric.Rat.t -> t -> t
val scale_int : int -> t -> t
val neg : t -> t
val add_term : t -> Numeric.Rat.t -> int -> t
val add_constant : t -> Numeric.Rat.t -> t

val sum : t list -> t

val coeff : t -> int -> Numeric.Rat.t
val const_part : t -> Numeric.Rat.t
val terms : t -> (int * Numeric.Rat.t) list
(** Non-zero terms in ascending variable order. *)

val fold : (int -> Numeric.Rat.t -> 'a -> 'a) -> t -> 'a -> 'a
val map_vars : (int -> int) -> t -> t
val is_constant : t -> bool
val eval : (int -> Numeric.Rat.t) -> t -> Numeric.Rat.t
val eval_float : (int -> float) -> t -> float
val max_var : t -> int
(** Largest variable id mentioned, or [-1]. *)

val pp : (int -> string) -> Format.formatter -> t -> unit
