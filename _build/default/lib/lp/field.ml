(** Abstract ordered fields for the simplex kernel.

    {!Tableau.Make} is instantiated twice: with {!Exact} (arbitrary-precision
    rationals, bit-exact pivoting, used for verification and small models)
    and with {!Approx} (IEEE doubles with tolerance-aware comparisons, used
    for the branch-and-bound relaxations). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_rat : Numeric.Rat.t -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  val compare : t -> t -> int
  (** Tolerance-aware for inexact instances: values within the instance
      epsilon compare equal. *)

  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
end

module Exact : S with type t = Numeric.Rat.t = struct
  include Numeric.Rat

  type nonrec t = t

  let of_rat q = q
  let is_zero = is_zero
  let compare = compare
end

module Approx : S with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.0
  let one = 1.0
  let of_rat = Numeric.Rat.to_float
  let to_float x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let compare a b = if Float.abs (a -. b) <= eps then 0 else Float.compare a b
  let is_zero x = Float.abs x <= eps
  let pp fmt x = Format.fprintf fmt "%g" x
end
