module Q = Numeric.Rat
module Imap = Map.Make (Int)

type t = { terms : Q.t Imap.t; const : Q.t }

let zero = { terms = Imap.empty; const = Q.zero }
let constant k = { terms = Imap.empty; const = k }
let of_int k = constant (Q.of_int k)

let term c v =
  if v < 0 then invalid_arg "Linexpr.term: negative variable id";
  if Q.is_zero c then zero else { terms = Imap.singleton v c; const = Q.zero }

let var v = term Q.one v
let iterm c v = term (Q.of_int c) v

let norm c = if Q.is_zero c then None else Some c

let add a b =
  let merge _ x y =
    match (x, y) with
    | Some x, Some y -> norm (Q.add x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  { terms = Imap.merge merge a.terms b.terms; const = Q.add a.const b.const }

let scale k a =
  if Q.is_zero k then zero
  else { terms = Imap.map (Q.mul k) a.terms; const = Q.mul k a.const }

let scale_int k a = scale (Q.of_int k) a
let neg a = scale Q.minus_one a
let sub a b = add a (neg b)
let add_term a c v = add a (term c v)
let add_constant a k = { a with const = Q.add a.const k }
let sum exprs = List.fold_left add zero exprs

let coeff a v = match Imap.find_opt v a.terms with Some c -> c | None -> Q.zero
let const_part a = a.const
let terms a = Imap.bindings a.terms
let fold f a init = Imap.fold f a.terms init
let is_constant a = Imap.is_empty a.terms

let map_vars f a =
  let add_one v c acc = add acc (term c (f v)) in
  Imap.fold add_one a.terms (constant a.const)

let eval value a =
  Imap.fold (fun v c acc -> Q.add acc (Q.mul c (value v))) a.terms a.const

let eval_float value a =
  Imap.fold (fun v c acc -> acc +. (Q.to_float c *. value v)) a.terms (Q.to_float a.const)

let max_var a = match Imap.max_binding_opt a.terms with Some (v, _) -> v | None -> -1

let pp name fmt a =
  let first = ref true in
  let emit_term v c =
    let s = Q.sign c in
    let mag = Q.abs c in
    if !first then begin
      first := false;
      if s < 0 then Format.pp_print_string fmt "-"
    end
    else Format.fprintf fmt " %s " (if s < 0 then "-" else "+");
    if not (Q.equal mag Q.one) then Format.fprintf fmt "%s " (Q.to_string mag);
    Format.pp_print_string fmt (name v)
  in
  Imap.iter emit_term a.terms;
  if not (Q.is_zero a.const) then begin
    if !first then Format.pp_print_string fmt (Q.to_string a.const)
    else begin
      let s = Q.sign a.const in
      Format.fprintf fmt " %s %s" (if s < 0 then "-" else "+") (Q.to_string (Q.abs a.const))
    end
  end
  else if !first then Format.pp_print_string fmt "0"
