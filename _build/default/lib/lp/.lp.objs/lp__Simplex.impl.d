lib/lp/simplex.ml: Array Field Hashtbl Linexpr List Model Numeric Tableau
