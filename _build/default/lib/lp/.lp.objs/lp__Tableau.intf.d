lib/lp/tableau.mli: Field
