lib/lp/branch_bound.ml: Array Float Fun List Model Numeric Option Presolve Printf Simplex Unix
