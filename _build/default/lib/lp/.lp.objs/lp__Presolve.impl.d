lib/lp/presolve.ml: Linexpr Model Numeric
