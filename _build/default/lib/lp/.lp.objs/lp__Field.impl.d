lib/lp/field.ml: Float Format Numeric
