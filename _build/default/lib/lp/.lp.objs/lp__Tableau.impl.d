lib/lp/tableau.ml: Array Field
