lib/lp/model.ml: Array Float Format Linexpr List Numeric Printf
