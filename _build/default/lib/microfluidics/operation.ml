open Components

type duration = Fixed of int | Indeterminate of { min_minutes : int }

type t = {
  id : int;
  name : string;
  container : Container.t option;
  capacity : Capacity.t option;
  accessories : Accessory.Set.t;
  duration : duration;
}

let make ~id ?container ?capacity ?(accessories = []) ~duration name =
  (match duration with
   | Fixed d when d <= 0 -> invalid_arg "Operation.make: non-positive duration"
   | Indeterminate { min_minutes } when min_minutes <= 0 ->
     invalid_arg "Operation.make: non-positive minimum duration"
   | Fixed _ | Indeterminate _ -> ());
  (match (container, capacity) with
   | Some c, Some cap when not (Container.capacity_allowed c cap) ->
     invalid_arg
       (Printf.sprintf "Operation.make: %s cannot have %s capacity"
          (Container.to_string c) (Capacity.to_string cap))
   | (Some _ | None), (Some _ | None) -> ());
  { id; name; container; capacity; accessories = Accessory.set_of_list accessories; duration }

let is_indeterminate o =
  match o.duration with Indeterminate _ -> true | Fixed _ -> false

let min_duration o =
  match o.duration with Fixed d -> d | Indeterminate { min_minutes } -> min_minutes

let compatible_with_device o (d : Device.t) =
  (match o.container with
   | Some c -> Container.equal c d.Device.container
   | None -> true)
  && (match o.capacity with
      | Some cap -> Capacity.equal cap d.Device.capacity
      | None -> true)
  && Accessory.Set.subset o.accessories d.Device.accessories

let requirements_subsume o1 o2 =
  let container_ok =
    match (o2.container, o1.container) with
    | None, _ -> true
    | Some c2, Some c1 -> Container.equal c2 c1
    | Some _, None -> false
  in
  let capacity_ok =
    match (o2.capacity, o1.capacity) with
    | None, _ -> true
    | Some c2, Some c1 -> Capacity.equal c2 c1
    | Some _, None -> false
  in
  container_ok && capacity_ok && Accessory.Set.subset o2.accessories o1.accessories

let requirement_signature o =
  let c = match o.container with Some c -> Container.to_string c | None -> "*" in
  let cap = match o.capacity with Some c -> Capacity.to_string c | None -> "*" in
  let accs =
    Accessory.Set.elements o.accessories
    |> List.map Accessory.short_code
    |> String.concat ""
  in
  Printf.sprintf "%s/%s{%s}" c cap accs

let pp fmt o =
  let dur =
    match o.duration with
    | Fixed d -> Printf.sprintf "%dm" d
    | Indeterminate { min_minutes } -> Printf.sprintf ">=%dm" min_minutes
  in
  Format.fprintf fmt "o%d[%s %s %s]" o.id o.name (requirement_signature o) dur
