open Components

type t = {
  id : int;
  container : Container.t;
  capacity : Capacity.t;
  accessories : Accessory.Set.t;
}

let make ~id ~container ~capacity ~accessories =
  if not (Container.capacity_allowed container capacity) then
    invalid_arg
      (Printf.sprintf "Device.make: %s cannot have %s capacity"
         (Container.to_string container)
         (Capacity.to_string capacity));
  { id; container; capacity; accessories = Accessory.set_of_list accessories }

let equal_config a b =
  Container.equal a.container b.container
  && Capacity.equal a.capacity b.capacity
  && Accessory.Set.equal a.accessories b.accessories

let compare a b = Stdlib.compare a.id b.id

let signature d =
  let accs =
    Accessory.Set.elements d.accessories
    |> List.map Accessory.short_code
    |> String.concat ""
  in
  Printf.sprintf "%s/%s{%s}"
    (Container.to_string d.container)
    (Capacity.to_string d.capacity)
    accs

let pp fmt d = Format.fprintf fmt "d%d:%s" d.id (signature d)
