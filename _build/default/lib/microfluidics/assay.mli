(** Bioassays: dependency DAGs of component-oriented operations.

    A child operation consumes the outputs of its parents and may start only
    after every parent finished and its reagents were transported (paper
    constraint (9)). *)

type t

val create : name:string -> t

val add_operation :
  t ->
  ?container:Components.Container.t ->
  ?capacity:Components.Capacity.t ->
  ?accessories:Components.Accessory.t list ->
  duration:Operation.duration ->
  string ->
  int
(** Returns the fresh operation id (dense, starting at 0). *)

val add_dependency : t -> parent:int -> child:int -> unit
(** @raise Invalid_argument on unknown ids, self-dependency, or an edge that
    would close a cycle. *)

val name : t -> string
val operation_count : t -> int
val operation : t -> int -> Operation.t
val operations : t -> Operation.t array
(** Fresh copy, indexed by id. *)

val parents : t -> int -> int list
val children : t -> int -> int list
val dependency_graph : t -> Flowgraph.Digraph.t
(** A copy; mutations do not affect the assay. *)

val indeterminate_ids : t -> int list
val indeterminate_count : t -> int

val critical_path_minutes : t -> int
(** Lower bound on the makespan: the longest chain of minimum durations. *)

val validate : t -> (unit, string) result
(** Structural checks: non-empty, acyclic (enforced incrementally anyway),
    every indeterminate operation's minimum duration positive. *)

val replicate : t -> copies:int -> t
(** [replicate a ~copies] concatenates [copies] independent instances of the
    protocol, re-indexing ids — the paper's device for scaling the three
    assays to 16/70/120 operations. *)

val union : name:string -> t list -> t
(** Disjoint union with dense re-indexing. *)

val pp : Format.formatter -> t -> unit
