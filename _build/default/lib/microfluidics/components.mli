(** Microfluidic components (paper §2.1).

    Components split into {e containers} — which cost exclusive chip area —
    and {e accessories} — functionally specialised parts (pumps, heating
    pads, optical systems, sieve valves, cell traps) that integrate into a
    container at processing cost but no area cost. *)

module Capacity : sig
  type t = Large | Medium | Small | Tiny

  val all : t list
  val compare : t -> t -> int
  (** [Large > Medium > Small > Tiny]. *)

  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  val volume_range : t -> float * float
  (** Nominal reagent volume range in nanolitres:
      tiny [0.5, 5), small [5, 25), medium [25, 100), large [100, 500].
      Single-cell chambers are sub-5 nl (the paper's references [12], [17]);
      large flow-reversal mixes run to hundreds of nl (reference [10]). *)

  val of_volume : float -> t option
  (** Smallest class whose range contains the volume; [None] when it
      exceeds the largest class or is non-positive. *)
end

module Container : sig
  type t =
    | Ring  (** closed-loop chamber enabling circulation flow; mixing *)
    | Chamber  (** channel segment between two valves *)

  val all : t list
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  val allowed_capacities : t -> Capacity.t list
  (** Rings come in large/medium/small, chambers in medium/small/tiny
      (paper constraints (3)–(4)). *)

  val capacity_allowed : t -> Capacity.t -> bool
end

module Accessory : sig
  type t =
    | Pump  (** valve group providing peristaltic pressure *)
    | Heating_pad
    | Optical_system  (** light source + detector *)
    | Sieve_valve  (** blocks large particles, passes fluid *)
    | Cell_trap  (** passive single-cell capture structure *)

  val all : t list
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val short_code : t -> string
  (** The paper's one-letter index: p, h, o, s, c. *)

  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t

  val set_of_list : t list -> Set.t
  val pp_set : Format.formatter -> Set.t -> unit
end
