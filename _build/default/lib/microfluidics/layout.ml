type placement = { device : int; row : int; col : int }

type t = {
  placements : placement list;
  side : int;
  lengths : ((int * int) * int) list;
}

let key a b = (min a b, max a b)

let place ~device_ids ~path_usage =
  let n = List.length device_ids in
  let side =
    let rec grow s = if s * s >= n then s else grow (s + 1) in
    grow 1
  in
  let occupied = Hashtbl.create 16 in
  let position = Hashtbl.create 16 in
  let free_cells () =
    let acc = ref [] in
    for r = side - 1 downto 0 do
      for c = side - 1 downto 0 do
        if not (Hashtbl.mem occupied (r, c)) then acc := (r, c) :: !acc
      done
    done;
    !acc
  in
  let put d (r, c) =
    Hashtbl.replace occupied (r, c) ();
    Hashtbl.replace position d (r, c)
  in
  (* Connectivity weight of each device = total usage of incident paths. *)
  let weight d =
    List.fold_left
      (fun acc ((a, b), u) -> if a = d || b = d then acc + u else acc)
      0 path_usage
  in
  let order =
    List.sort
      (fun a b ->
        let wa = weight a and wb = weight b in
        if wa <> wb then compare wb wa else compare a b)
      device_ids
  in
  let dist (r1, c1) (r2, c2) = abs (r1 - r2) + abs (c1 - c2) in
  let place_one d =
    if not (Hashtbl.mem position d) then begin
      let cells = free_cells () in
      match cells with
      | [] -> ()
      | first :: _ ->
        (* Weighted distance to already-placed neighbours; centre-ish tie
           preference comes from cell enumeration order. *)
        let score cell =
          List.fold_left
            (fun acc ((a, b), u) ->
              let other = if a = d then Some b else if b = d then Some a else None in
              match other with
              | Some o -> begin
                match Hashtbl.find_opt position o with
                | Some p -> acc + (u * dist cell p)
                | None -> acc
              end
              | None -> acc)
            0 path_usage
        in
        let best =
          List.fold_left
            (fun (bc, bs) cell ->
              let s = score cell in
              if s < bs then (cell, s) else (bc, bs))
            (first, score first) cells
        in
        put d (fst best)
    end
  in
  List.iter place_one order;
  let placements =
    List.map
      (fun d ->
        let r, c = Hashtbl.find position d in
        { device = d; row = r; col = c })
      (List.sort compare device_ids)
  in
  let lengths =
    List.map
      (fun ((a, b), _) ->
        let pa = Hashtbl.find_opt position a and pb = Hashtbl.find_opt position b in
        let len = match (pa, pb) with
          | Some x, Some y -> max 1 (dist x y)
          | _, _ -> side
        in
        (key a b, len))
      path_usage
  in
  { placements; side; lengths }

let path_length t a b = List.assoc_opt (key a b) t.lengths

let usage_rank ~path_usage pair =
  let k = key (fst pair) (snd pair) in
  let rec go i = function
    | [] -> i
    | (p, _) :: rest -> if p = k then i else go (i + 1) rest
  in
  go 0 path_usage

let total_wirelength t ~path_usage =
  List.fold_left
    (fun acc (p, u) ->
      match List.assoc_opt p t.lengths with Some l -> acc + (u * l) | None -> acc)
    0 path_usage

let pp fmt t =
  Format.fprintf fmt "@[<v>layout %dx%d:@," t.side t.side;
  List.iter
    (fun p -> Format.fprintf fmt "  d%d @@ (%d,%d)@," p.device p.row p.col)
    t.placements;
  Format.fprintf fmt "@]"
