type t = {
  devices : (int, Device.t) Hashtbl.t;
  paths : (int * int, int) Hashtbl.t;
}

let create () = { devices = Hashtbl.create 16; paths = Hashtbl.create 16 }

let add_device t (d : Device.t) =
  if Hashtbl.mem t.devices d.Device.id then
    invalid_arg "Chip.add_device: duplicate device id";
  Hashtbl.replace t.devices d.Device.id d

let device_count t = Hashtbl.length t.devices

let devices t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.devices []
  |> List.sort Device.compare

let find_device t id = Hashtbl.find_opt t.devices id

let note_transport t ~src ~dst =
  if not (Hashtbl.mem t.devices src) then
    invalid_arg "Chip.note_transport: unknown source device";
  if not (Hashtbl.mem t.devices dst) then
    invalid_arg "Chip.note_transport: unknown destination device";
  if src <> dst then begin
    let key = (min src dst, max src dst) in
    let cur = match Hashtbl.find_opt t.paths key with Some n -> n | None -> 0 in
    Hashtbl.replace t.paths key (cur + 1)
  end

let path_count t = Hashtbl.length t.paths

let path_usage t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.paths []
  |> List.sort (fun (ka, na) (kb, nb) ->
         if na <> nb then compare nb na else compare ka kb)

let total_area cost t =
  List.fold_left (fun acc d -> acc + Cost.device_area cost d) 0 (devices t)

let total_processing cost t =
  List.fold_left (fun acc d -> acc + Cost.device_processing cost d) 0 (devices t)

let pp fmt t =
  Format.fprintf fmt "@[<v>chip: %d devices, %d paths@," (device_count t) (path_count t);
  List.iter (fun d -> Format.fprintf fmt "  %a@," Device.pp d) (devices t);
  List.iter
    (fun ((a, b), n) -> Format.fprintf fmt "  path d%d--d%d (used %d)@," a b n)
    (path_usage t);
  Format.fprintf fmt "@]"
