(** Component-oriented operation definitions (paper §2.2).

    An operation declares (a) the container/capacity and accessories it
    needs, (b) its execution duration — exact, or indeterminate with a
    minimum — and (c) its dependencies (kept in {!Assay}). The binding rule
    is structural: an operation fits any device whose container matches and
    whose accessory set is a superset of the requirement. *)

open Components

type duration =
  | Fixed of int  (** minutes *)
  | Indeterminate of { min_minutes : int }
      (** lower bound; actual duration decided at run time (e.g. single-cell
          capture reruns) *)

type t = {
  id : int;
  name : string;
  container : Container.t option;  (** [None]: ring or chamber both fit *)
  capacity : Capacity.t option;  (** [None]: any capacity class *)
  accessories : Accessory.Set.t;
  duration : duration;
}

val make :
  id:int ->
  ?container:Container.t ->
  ?capacity:Capacity.t ->
  ?accessories:Accessory.t list ->
  duration:duration ->
  string ->
  t
(** @raise Invalid_argument if a specified container/capacity pair is
    inconsistent, or the duration is non-positive. *)

val is_indeterminate : t -> bool

val min_duration : t -> int
(** The fixed duration, or the indeterminate minimum. *)

val compatible_with_device : t -> Device.t -> bool
(** The component-oriented binding rule: container matches (when specified),
    capacity class matches (when specified, and always within the device
    container's allowed classes), and the device's accessories include the
    operation's. *)

val requirements_subsume : t -> t -> bool
(** [requirements_subsume o1 o2] is [true] when any device suitable for [o1]
    is also suitable for [o2] (the paper's §3.2 inheritance test
    [C_o2 ⊆ C_o1 ∧ A_o2 ⊆ A_o1]). *)

val requirement_signature : t -> string
(** Canonical string of the component requirements; the conventional
    baseline classifies operations into pseudo-types by this key. *)

val pp : Format.formatter -> t -> unit
