(** Textual assay descriptions.

    A small declarative language so protocols can be written in files
    instead of OCaml:

    {v
    assay "gene-expression"

    op capture {
      container   = chamber
      capacity    = tiny
      accessories = cell-trap, optical-system
      duration    = indeterminate min 8
    }
    op lyse { duration = 10 }
    op mix  { container = ring  accessories = pump  duration = 20 }

    deps { capture -> lyse -> mix }

    replicate 10
    v}

    Operation names must be unique; [a -> b -> c] chains dependencies;
    [deps] blocks may repeat; [replicate n] (optional, at most once) scales
    the protocol the way the paper scales its test cases. Instead of a
    [capacity] class an operation may give [volume = 12.5] (nanolitres),
    resolved through {!Components.Capacity.of_volume}; an explicit capacity
    wins over a volume. Comments run from [#] to end of line. All keywords
    are lowercase; accessory names use the hyphenated forms of
    {!Components.Accessory.to_string}. *)

type error = { line : int; message : string }

val parse : string -> (Assay.t, error) result
(** Parse a description from a string. *)

val of_file : string -> (Assay.t, error) result
(** @raise Sys_error if the file cannot be read. *)

val to_text : Assay.t -> string
(** Canonical printer; [parse (to_text a)] reconstructs an assay with the
    same operations and dependencies (names are sanitised to identifiers,
    uniqued with an [_<id>] suffix). *)

val pp_error : Format.formatter -> error -> unit
