(** Chip cost tables (paper §4.3).

    Area cost is incurred by containers only (accessories integrate into
    containers); processing cost is incurred by both: extra masks, yield
    loss, testing, control ports. All values are abstract integer units. *)

open Components

type t

val make :
  area:(Container.t -> Capacity.t -> int) ->
  container_processing:(Container.t -> Capacity.t -> int) ->
  accessory_processing:(Accessory.t -> int) ->
  t
(** The two container tables are only consulted on allowed
    container/capacity combinations. *)

val default : t
(** Rings cost more area and processing than chambers of equal capacity;
    larger capacities cost more; optical systems are the most expensive
    accessory. *)

val area : t -> Container.t -> Capacity.t -> int
val container_processing : t -> Container.t -> Capacity.t -> int
val accessory_processing : t -> Accessory.t -> int

val device_area : t -> Device.t -> int
val device_processing : t -> Device.t -> int
(** Container processing plus the sum over integrated accessories. *)
