lib/microfluidics/assay_text.ml: Accessory Array Assay Buffer Capacity Components Container Format Hashtbl List Operation Printf String
