lib/microfluidics/cost.mli: Accessory Capacity Components Container Device
