lib/microfluidics/device.ml: Accessory Capacity Components Container Format List Printf Stdlib String
