lib/microfluidics/assay.ml: Array Components Flowgraph Format List Operation
