lib/microfluidics/operation.mli: Accessory Capacity Components Container Device Format
