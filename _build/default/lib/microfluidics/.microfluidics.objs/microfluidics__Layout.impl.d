lib/microfluidics/layout.ml: Format Hashtbl List
