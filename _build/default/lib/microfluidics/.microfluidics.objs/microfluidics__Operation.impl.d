lib/microfluidics/operation.ml: Accessory Capacity Components Container Device Format List Printf String
