lib/microfluidics/components.mli: Format Set
