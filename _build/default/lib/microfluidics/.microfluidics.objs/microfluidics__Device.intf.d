lib/microfluidics/device.mli: Accessory Capacity Components Container Format
