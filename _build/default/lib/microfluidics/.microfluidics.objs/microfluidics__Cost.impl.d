lib/microfluidics/cost.ml: Accessory Capacity Components Container Device
