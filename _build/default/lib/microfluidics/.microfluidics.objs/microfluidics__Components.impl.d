lib/microfluidics/components.ml: Format List Set Stdlib String
