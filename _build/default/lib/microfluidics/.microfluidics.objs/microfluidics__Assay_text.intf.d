lib/microfluidics/assay_text.mli: Assay Format
