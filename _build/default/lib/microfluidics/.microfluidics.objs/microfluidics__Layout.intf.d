lib/microfluidics/layout.mli: Format
