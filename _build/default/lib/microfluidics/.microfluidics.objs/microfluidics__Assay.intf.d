lib/microfluidics/assay.mli: Components Flowgraph Format Operation
