lib/microfluidics/chip.ml: Cost Device Format Hashtbl List
