lib/microfluidics/chip.mli: Cost Device Format
