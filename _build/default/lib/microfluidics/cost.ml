open Components

type t = {
  area : Container.t -> Capacity.t -> int;
  container_processing : Container.t -> Capacity.t -> int;
  accessory_processing : Accessory.t -> int;
}

let make ~area ~container_processing ~accessory_processing =
  { area; container_processing; accessory_processing }

let default =
  let area container cap =
    match (container, cap) with
    | Container.Ring, Capacity.Large -> 12
    | Container.Ring, Capacity.Medium -> 9
    | Container.Ring, Capacity.Small -> 7
    | Container.Chamber, Capacity.Medium -> 6
    | Container.Chamber, Capacity.Small -> 4
    | Container.Chamber, Capacity.Tiny -> 3
    | Container.Ring, Capacity.Tiny | Container.Chamber, Capacity.Large ->
      invalid_arg "Cost.area: capacity not allowed for container"
  in
  let container_processing container cap =
    match (container, cap) with
    | Container.Ring, Capacity.Large -> 10
    | Container.Ring, Capacity.Medium -> 8
    | Container.Ring, Capacity.Small -> 6
    | Container.Chamber, Capacity.Medium -> 5
    | Container.Chamber, Capacity.Small -> 4
    | Container.Chamber, Capacity.Tiny -> 3
    | Container.Ring, Capacity.Tiny | Container.Chamber, Capacity.Large ->
      invalid_arg "Cost.container_processing: capacity not allowed"
  in
  let accessory_processing = function
    | Accessory.Pump -> 4
    | Accessory.Heating_pad -> 3
    | Accessory.Optical_system -> 5
    | Accessory.Sieve_valve -> 2
    | Accessory.Cell_trap -> 2
  in
  { area; container_processing; accessory_processing }

let area t = t.area
let container_processing t = t.container_processing
let accessory_processing t = t.accessory_processing

let device_area t (d : Device.t) = t.area d.Device.container d.Device.capacity

let device_processing t (d : Device.t) =
  let base = t.container_processing d.Device.container d.Device.capacity in
  Accessory.Set.fold (fun a acc -> acc + t.accessory_processing a) d.Device.accessories base
