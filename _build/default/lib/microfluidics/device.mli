(** General devices (paper §2.2): one container plus a set of accessories.

    A conventional rotary mixer is [ring + {pump}]; the sieve-valve
    flow-channel segment of the kinase assay is [chamber + {sieve-valve}];
    the combined mixer/cell-separation module of Fig. 1 is
    [ring + {pump, cell-trap}]. *)

open Components

type t = {
  id : int;
  container : Container.t;
  capacity : Capacity.t;
  accessories : Accessory.Set.t;
}

val make :
  id:int ->
  container:Container.t ->
  capacity:Capacity.t ->
  accessories:Accessory.t list ->
  t
(** @raise Invalid_argument when the capacity class is not allowed for the
    container type (paper constraints (3)–(4)). *)

val equal_config : t -> t -> bool
(** Same container, capacity and accessory set (ignores [id]). *)

val compare : t -> t -> int
val signature : t -> string
(** Canonical text form, e.g. ["ring/medium{p}"] — used by the conventional
    baseline's exact-signature binding rule. *)

val pp : Format.formatter -> t -> unit
