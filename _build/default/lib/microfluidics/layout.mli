(** Potential-chip-layout estimation (paper §4.1 and contribution III).

    High-level synthesis runs before physical design, so real channel
    lengths are unknown; the paper instead (a) counts transportation paths
    and (b) maps more-used paths to shorter channels. This module makes that
    concrete: devices are placed on a square grid by a greedy
    heaviest-edge-first heuristic, path lengths are Manhattan distances, and
    the induced length ranking feeds {!Cohls.Transport}'s arithmetic
    progression. *)

type placement = { device : int; row : int; col : int }

type t = {
  placements : placement list;
  side : int;  (** grid side length *)
  lengths : ((int * int) * int) list;
      (** unordered device pair -> Manhattan channel length *)
}

val place : device_ids:int list -> path_usage:((int * int) * int) list -> t
(** Greedy placement: the most-used path's endpoints are placed first on
    adjacent cells; remaining devices follow in decreasing connectivity
    order, each taking the free cell minimising the weighted distance to its
    already-placed neighbours. *)

val path_length : t -> int -> int -> int option
(** Manhattan length of the channel between two placed devices. *)

val usage_rank : path_usage:((int * int) * int) list -> (int * int) -> int
(** 0-based rank of a pair in decreasing-usage order; unknown pairs rank
    last. *)

val total_wirelength : t -> path_usage:((int * int) * int) list -> int
(** Sum over paths of usage × length — the layout quality metric used by the
    ablation bench. *)

val pp : Format.formatter -> t -> unit
