module Capacity = struct
  type t = Large | Medium | Small | Tiny

  let all = [ Large; Medium; Small; Tiny ]

  let rank = function Large -> 3 | Medium -> 2 | Small -> 1 | Tiny -> 0
  let compare a b = Stdlib.compare (rank a) (rank b)
  let equal a b = compare a b = 0

  let to_string = function
    | Large -> "large"
    | Medium -> "medium"
    | Small -> "small"
    | Tiny -> "tiny"

  let pp fmt c = Format.pp_print_string fmt (to_string c)

  let volume_range = function
    | Tiny -> (0.5, 5.0)
    | Small -> (5.0, 25.0)
    | Medium -> (25.0, 100.0)
    | Large -> (100.0, 500.0)

  let of_volume v =
    let fits c =
      let lo, hi = volume_range c in
      v >= lo && (v < hi || (c = Large && v <= hi))
    in
    List.find_opt fits [ Tiny; Small; Medium; Large ]
end

module Container = struct
  type t = Ring | Chamber

  let all = [ Ring; Chamber ]
  let equal a b = a = b
  let compare = Stdlib.compare
  let to_string = function Ring -> "ring" | Chamber -> "chamber"
  let pp fmt c = Format.pp_print_string fmt (to_string c)

  let allowed_capacities = function
    | Ring -> Capacity.[ Large; Medium; Small ]
    | Chamber -> Capacity.[ Medium; Small; Tiny ]

  let capacity_allowed c cap = List.mem cap (allowed_capacities c)
end

module Accessory = struct
  type t = Pump | Heating_pad | Optical_system | Sieve_valve | Cell_trap

  let all = [ Pump; Heating_pad; Optical_system; Sieve_valve; Cell_trap ]
  let equal a b = a = b
  let compare = Stdlib.compare

  let to_string = function
    | Pump -> "pump"
    | Heating_pad -> "heating-pad"
    | Optical_system -> "optical-system"
    | Sieve_valve -> "sieve-valve"
    | Cell_trap -> "cell-trap"

  let short_code = function
    | Pump -> "p"
    | Heating_pad -> "h"
    | Optical_system -> "o"
    | Sieve_valve -> "s"
    | Cell_trap -> "c"

  let pp fmt a = Format.pp_print_string fmt (to_string a)

  module Set = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let set_of_list = Set.of_list

  let pp_set fmt s =
    Format.fprintf fmt "{%s}"
      (String.concat ", " (List.map to_string (Set.elements s)))
end
