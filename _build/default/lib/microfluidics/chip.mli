(** Chip inventories: instantiated devices plus inter-device flow paths.

    A transportation path must exist between two devices whenever a child
    operation bound to one inherits reagents from a parent bound to the
    other (paper constraint (21)); paths are undirected for counting
    purposes and carry a usage count that drives the layout-aware
    transportation-time refinement (§4.1). *)

type t

val create : unit -> t

val add_device : t -> Device.t -> unit
(** Devices are keyed by [id]; re-adding the same id is an error. *)

val device_count : t -> int
val devices : t -> Device.t list
(** Ascending id order. *)

val find_device : t -> int -> Device.t option

val note_transport : t -> src:int -> dst:int -> unit
(** Registers one reagent transfer over the (unordered) device pair,
    creating the path on first use. Transfers within one device are
    ignored. @raise Invalid_argument on unknown device ids. *)

val path_count : t -> int
val path_usage : t -> ((int * int) * int) list
(** Unordered pairs [(lo, hi)] with their usage counts, most used first. *)

val total_area : Cost.t -> t -> int
val total_processing : Cost.t -> t -> int

val pp : Format.formatter -> t -> unit
