open Components

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

(* ---------------------------------------------------------------- lexer *)

type token =
  | Ident of string (* identifiers and keywords; may contain '-' *)
  | String_lit of string
  | Int_lit of int
  | Float_lit of float
  | Lbrace
  | Rbrace
  | Equals
  | Comma
  | Arrow

type lexed = { token : token; line : int }

exception Lex_error of error

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let lex source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push token = tokens := { token; line = !line } :: !tokens in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && source.[!i] <> '\n' do incr i done
    end
    else if c = '{' then begin push Lbrace; incr i end
    else if c = '}' then begin push Rbrace; incr i end
    else if c = '=' then begin push Equals; incr i end
    else if c = ',' then begin push Comma; incr i end
    else if c = '-' && !i + 1 < n && source.[!i + 1] = '>' then begin
      push Arrow;
      i := !i + 2
    end
    else if c = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && source.[!j] <> '"' && source.[!j] <> '\n' do incr j done;
      if !j >= n || source.[!j] <> '"' then
        raise (Lex_error { line = !line; message = "unterminated string" });
      push (String_lit (String.sub source start (!j - start)));
      i := !j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && source.[!i] >= '0' && source.[!i] <= '9' do incr i done;
      if !i < n && source.[!i] = '.' && !i + 1 < n && source.[!i + 1] >= '0'
         && source.[!i + 1] <= '9'
      then begin
        incr i;
        while !i < n && source.[!i] >= '0' && source.[!i] <= '9' do incr i done;
        push (Float_lit (float_of_string (String.sub source start (!i - start))))
      end
      else push (Int_lit (int_of_string (String.sub source start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do incr i done;
      push (Ident (String.sub source start (!i - start)))
    end
    else
      raise (Lex_error { line = !line; message = Printf.sprintf "unexpected character %C" c })
  done;
  List.rev !tokens

(* ---------------------------------------------------------------- parser *)

exception Parse_error of error

type op_spec = {
  op_name : string;
  mutable container : Container.t option;
  mutable capacity : Capacity.t option;
  mutable volume : float option; (* nanolitres; sugar for capacity *)
  mutable accessories : Accessory.t list;
  mutable duration : Operation.duration option;
  decl_line : int;
}

type state = {
  mutable tokens : lexed list;
  mutable assay_name : string option;
  mutable ops : op_spec list; (* reversed *)
  mutable deps : (string * string * int) list; (* reversed, with line *)
  mutable replicate : int option;
}

let fail line message = raise (Parse_error { line; message })

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail 0 "unexpected end of input"
  | t :: rest ->
    st.tokens <- rest;
    t

let expect st want describe =
  let t = advance st in
  if t.token <> want then fail t.line (Printf.sprintf "expected %s" describe)

let expect_ident st describe =
  let t = advance st in
  match t.token with
  | Ident s -> (s, t.line)
  | String_lit _ | Int_lit _ | Float_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
    fail t.line (Printf.sprintf "expected %s" describe)

let container_of_string line = function
  | "ring" -> Container.Ring
  | "chamber" -> Container.Chamber
  | s -> fail line (Printf.sprintf "unknown container %S (ring|chamber)" s)

let capacity_of_string line = function
  | "large" -> Capacity.Large
  | "medium" -> Capacity.Medium
  | "small" -> Capacity.Small
  | "tiny" -> Capacity.Tiny
  | s -> fail line (Printf.sprintf "unknown capacity %S (large|medium|small|tiny)" s)

let accessory_of_string line = function
  | "pump" -> Accessory.Pump
  | "heating-pad" -> Accessory.Heating_pad
  | "optical-system" -> Accessory.Optical_system
  | "sieve-valve" -> Accessory.Sieve_valve
  | "cell-trap" -> Accessory.Cell_trap
  | s ->
    fail line
      (Printf.sprintf
         "unknown accessory %S (pump|heating-pad|optical-system|sieve-valve|cell-trap)" s)

let parse_accessory_list st =
  let rec go acc =
    let name, line = expect_ident st "an accessory name" in
    let acc = accessory_of_string line name :: acc in
    match peek st with
    | Some { token = Comma; _ } ->
      ignore (advance st);
      go acc
    | Some _ | None -> List.rev acc
  in
  go []

let parse_duration st =
  let t = advance st in
  match t.token with
  | Int_lit d -> Operation.Fixed d
  | Ident "indeterminate" ->
    let kw, line = expect_ident st "'min'" in
    if kw <> "min" then fail line "expected 'min' after 'indeterminate'";
    let t2 = advance st in
    (match t2.token with
     | Int_lit d -> Operation.Indeterminate { min_minutes = d }
     | Ident _ | String_lit _ | Float_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
       fail t2.line "expected a minute count after 'min'")
  | Float_lit _ -> fail t.line "durations are whole minutes"
  | Ident _ | String_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
    fail t.line "expected a duration (minutes or 'indeterminate min N')"

let parse_op_body st spec =
  expect st Lbrace "'{'";
  let rec fields () =
    match peek st with
    | Some { token = Rbrace; _ } -> ignore (advance st)
    | Some { token = Ident field; line } ->
      ignore (advance st);
      expect st Equals "'='";
      (match field with
       | "container" ->
         let v, vline = expect_ident st "a container" in
         spec.container <- Some (container_of_string vline v)
       | "capacity" ->
         let v, vline = expect_ident st "a capacity" in
         spec.capacity <- Some (capacity_of_string vline v)
       | "accessories" -> spec.accessories <- parse_accessory_list st
       | "duration" -> spec.duration <- Some (parse_duration st)
       | "volume" -> begin
         let t = advance st in
         match t.token with
         | Float_lit v -> spec.volume <- Some v
         | Int_lit v -> spec.volume <- Some (float_of_int v)
         | Ident _ | String_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
           fail t.line "expected a volume in nanolitres"
       end
       | other -> fail line (Printf.sprintf "unknown field %S" other));
      fields ()
    | Some { line; _ } -> fail line "expected a field name or '}'"
    | None -> fail spec.decl_line "unterminated op block"
  in
  fields ()

let parse_deps_block st deps =
  expect st Lbrace "'{'";
  let rec chains () =
    match peek st with
    | Some { token = Rbrace; _ } -> ignore (advance st)
    | Some { token = Ident _; _ } ->
      let first, line = expect_ident st "an operation name" in
      let rec links prev =
        match peek st with
        | Some { token = Arrow; _ } ->
          ignore (advance st);
          let next, nline = expect_ident st "an operation name" in
          deps := (prev, next, nline) :: !deps;
          links next
        | Some _ | None -> ()
      in
      links first;
      ignore line;
      chains ()
    | Some { line; _ } -> fail line "expected an operation name or '}'"
    | None -> fail 0 "unterminated deps block"
  in
  chains ()

let parse source =
  try
    let st =
      {
        tokens = lex source;
        assay_name = None;
        ops = [];
        deps = [];
        replicate = None;
      }
    in
    let deps = ref [] in
    let rec toplevel () =
      match peek st with
      | None -> ()
      | Some { token = Ident "assay"; line } ->
        ignore (advance st);
        let t = advance st in
        (match t.token with
         | String_lit s | Ident s ->
           if st.assay_name <> None then fail line "duplicate assay declaration";
           st.assay_name <- Some s
         | Int_lit _ | Float_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
           fail t.line "expected an assay name");
        toplevel ()
      | Some { token = Ident "op"; _ } ->
        ignore (advance st);
        let op_name, decl_line = expect_ident st "an operation name" in
        if List.exists (fun s -> s.op_name = op_name) st.ops then
          fail decl_line (Printf.sprintf "duplicate operation %S" op_name);
        let spec =
          { op_name; container = None; capacity = None; volume = None;
            accessories = []; duration = None; decl_line }
        in
        parse_op_body st spec;
        if spec.duration = None then
          fail decl_line (Printf.sprintf "operation %S has no duration" op_name);
        st.ops <- spec :: st.ops;
        toplevel ()
      | Some { token = Ident "deps"; _ } ->
        ignore (advance st);
        parse_deps_block st deps;
        toplevel ()
      | Some { token = Ident "replicate"; line } ->
        ignore (advance st);
        let t = advance st in
        (match t.token with
         | Int_lit k ->
           if st.replicate <> None then fail line "duplicate replicate";
           if k < 1 then fail line "replicate count must be positive";
           st.replicate <- Some k
         | Ident _ | String_lit _ | Float_lit _ | Lbrace | Rbrace | Equals | Comma | Arrow ->
           fail t.line "expected a replicate count");
        toplevel ()
      | Some { token = Ident kw; line } -> fail line (Printf.sprintf "unknown keyword %S" kw)
      | Some { line; _ } -> fail line "expected a declaration"
    in
    toplevel ();
    let name = match st.assay_name with Some n -> n | None -> "unnamed" in
    let assay = Assay.create ~name in
    let specs = List.rev st.ops in
    if specs = [] then fail 1 "assay has no operations";
    let id_of = Hashtbl.create 16 in
    List.iter
      (fun spec ->
        let duration = match spec.duration with Some d -> d | None -> assert false in
        let capacity =
          match (spec.capacity, spec.volume) with
          | (Some _ as c), _ -> c (* explicit class wins; volume is sugar *)
          | None, Some v -> begin
            match Capacity.of_volume v with
            | Some c -> Some c
            | None ->
              fail spec.decl_line
                (Printf.sprintf "volume %g nl fits no capacity class (0.5-500)" v)
          end
          | None, None -> None
        in
        let id =
          try
            Assay.add_operation assay ?container:spec.container ?capacity
              ~accessories:spec.accessories ~duration spec.op_name
          with Invalid_argument msg -> fail spec.decl_line msg
        in
        Hashtbl.replace id_of spec.op_name id)
      specs;
    List.iter
      (fun (p, c, line) ->
        let resolve name =
          match Hashtbl.find_opt id_of name with
          | Some id -> id
          | None -> fail line (Printf.sprintf "unknown operation %S in deps" name)
        in
        let parent = resolve p and child = resolve c in
        try Assay.add_dependency assay ~parent ~child
        with Invalid_argument msg -> fail line msg)
      (List.rev !deps);
    let assay =
      match st.replicate with
      | Some k when k > 1 -> Assay.replicate assay ~copies:k
      | Some _ | None -> assay
    in
    Ok assay
  with
  | Lex_error e | Parse_error e -> Error e

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content

(* ---------------------------------------------------------------- printer *)

let sanitise_ident name ~id =
  let buf = Buffer.create (String.length name + 4) in
  String.iter (fun c -> Buffer.add_char buf (if is_ident_char c then c else '_')) name;
  let base = Buffer.contents buf in
  let base = if base = "" || (base.[0] >= '0' && base.[0] <= '9') then "op_" ^ base else base in
  (* keywords and uniqueness are both handled by the id suffix *)
  Printf.sprintf "%s_%d" base id

let to_text assay =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "assay %S\n\n" (Assay.name assay));
  let ops = Assay.operations assay in
  let ident_of = Array.mapi (fun id (o : Operation.t) -> sanitise_ident o.Operation.name ~id) ops in
  Array.iteri
    (fun id (o : Operation.t) ->
      Buffer.add_string buf (Printf.sprintf "op %s {\n" ident_of.(id));
      (match o.Operation.container with
       | Some c -> Buffer.add_string buf (Printf.sprintf "  container   = %s\n" (Container.to_string c))
       | None -> ());
      (match o.Operation.capacity with
       | Some c -> Buffer.add_string buf (Printf.sprintf "  capacity    = %s\n" (Capacity.to_string c))
       | None -> ());
      (if not (Accessory.Set.is_empty o.Operation.accessories) then
         Buffer.add_string buf
           (Printf.sprintf "  accessories = %s\n"
              (String.concat ", "
                 (List.map Accessory.to_string (Accessory.Set.elements o.Operation.accessories)))));
      (match o.Operation.duration with
       | Operation.Fixed d -> Buffer.add_string buf (Printf.sprintf "  duration    = %d\n" d)
       | Operation.Indeterminate { min_minutes } ->
         Buffer.add_string buf (Printf.sprintf "  duration    = indeterminate min %d\n" min_minutes));
      Buffer.add_string buf "}\n")
    ops;
  Buffer.add_string buf "\ndeps {\n";
  Array.iteri
    (fun id (_ : Operation.t) ->
      List.iter
        (fun child ->
          Buffer.add_string buf (Printf.sprintf "  %s -> %s\n" ident_of.(id) ident_of.(child)))
        (Assay.children assay id))
    ops;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
