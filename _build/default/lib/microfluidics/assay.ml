type t = {
  aname : string;
  mutable ops : Operation.t list; (* reversed *)
  mutable count : int;
  mutable deps : (int * int) list; (* (parent, child), reversed *)
  mutable reach_cache : Flowgraph.Digraph.t option;
}

let create ~name = { aname = name; ops = []; count = 0; deps = []; reach_cache = None }

let add_operation a ?container ?capacity ?accessories ~duration name =
  let id = a.count in
  let op = Operation.make ~id ?container ?capacity ?accessories ~duration name in
  a.ops <- op :: a.ops;
  a.count <- a.count + 1;
  a.reach_cache <- None;
  id

let graph_internal a =
  match a.reach_cache with
  | Some g -> g
  | None ->
    let g = Flowgraph.Digraph.of_edges a.count a.deps in
    a.reach_cache <- Some g;
    g

let add_dependency a ~parent ~child =
  if parent < 0 || parent >= a.count || child < 0 || child >= a.count then
    invalid_arg "Assay.add_dependency: unknown operation id";
  if parent = child then invalid_arg "Assay.add_dependency: self-dependency";
  let g = graph_internal a in
  if (Flowgraph.Dag.reachable_set g child).(parent) then
    invalid_arg "Assay.add_dependency: edge would close a cycle";
  if not (List.mem (parent, child) a.deps) then begin
    a.deps <- (parent, child) :: a.deps;
    a.reach_cache <- None
  end

let name a = a.aname
let operation_count a = a.count

let operations a = Array.of_list (List.rev a.ops)

let operation a i =
  if i < 0 || i >= a.count then invalid_arg "Assay.operation: unknown id";
  List.nth a.ops (a.count - 1 - i)

let dependency_graph a = Flowgraph.Digraph.copy (graph_internal a)

let parents a i = Flowgraph.Digraph.pred (graph_internal a) i
let children a i = Flowgraph.Digraph.succ (graph_internal a) i

let indeterminate_ids a =
  List.rev
    (List.filteri (fun _ o -> Operation.is_indeterminate o) (List.rev a.ops)
     |> List.map (fun o -> o.Operation.id))

let indeterminate_count a = List.length (indeterminate_ids a)

let critical_path_minutes a =
  if a.count = 0 then 0
  else begin
    let g = graph_internal a in
    let ops = operations a in
    let dist =
      Flowgraph.Dag.longest_path_lengths g ~weight:(fun v ->
          Operation.min_duration ops.(v))
    in
    Array.fold_left max 0 dist
  end

let validate a =
  if a.count = 0 then Error "assay has no operations"
  else if not (Flowgraph.Dag.is_dag (graph_internal a)) then
    Error "dependency graph has a cycle"
  else Ok ()

let union ~name assays =
  let merged = create ~name in
  let add_instance a =
    let offset = merged.count in
    let ops = operations a in
    Array.iter
      (fun (o : Operation.t) ->
        let accessories = Components.Accessory.Set.elements o.accessories in
        ignore
          (add_operation merged ?container:o.container ?capacity:o.capacity
             ~accessories ~duration:o.duration o.name))
      ops;
    List.iter
      (fun (p, c) -> add_dependency merged ~parent:(p + offset) ~child:(c + offset))
      (List.rev a.deps)
  in
  List.iter add_instance assays;
  merged

let replicate a ~copies =
  if copies <= 0 then invalid_arg "Assay.replicate: copies must be positive";
  union ~name:a.aname (List.init copies (fun _ -> a))

let pp fmt a =
  Format.fprintf fmt "@[<v>assay %s: %d ops (%d indeterminate), %d deps@]"
    a.aname a.count (indeterminate_count a)
    (List.length a.deps)
