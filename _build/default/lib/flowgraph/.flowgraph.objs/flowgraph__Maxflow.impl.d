lib/flowgraph/maxflow.ml: Array List Queue Stdlib
