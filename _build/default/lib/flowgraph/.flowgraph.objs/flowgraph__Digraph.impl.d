lib/flowgraph/digraph.ml: Array Format Hashtbl List
