lib/flowgraph/dag.ml: Array Digraph Fun Int List Set
