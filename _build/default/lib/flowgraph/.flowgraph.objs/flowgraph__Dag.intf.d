lib/flowgraph/dag.mli: Digraph
