lib/flowgraph/digraph.mli: Format
