lib/flowgraph/maxflow.mli:
