type t = {
  n : int;
  succs : (int, unit) Hashtbl.t array;
  preds : (int, unit) Hashtbl.t array;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  {
    n;
    succs = Array.init n (fun _ -> Hashtbl.create 4);
    preds = Array.init n (fun _ -> Hashtbl.create 4);
    edges = 0;
  }

let vertex_count g = g.n
let edge_count g = g.edges

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.succs.(u) v

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  if not (Hashtbl.mem g.succs.(u) v) then begin
    Hashtbl.replace g.succs.(u) v ();
    Hashtbl.replace g.preds.(v) u ();
    g.edges <- g.edges + 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  if Hashtbl.mem g.succs.(u) v then begin
    Hashtbl.remove g.succs.(u) v;
    Hashtbl.remove g.preds.(v) u;
    g.edges <- g.edges - 1
  end

let sorted_keys tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let succ g v = check g v; sorted_keys g.succs.(v)
let pred g v = check g v; sorted_keys g.preds.(v)
let out_degree g v = check g v; Hashtbl.length g.succs.(v)
let in_degree g v = check g v; Hashtbl.length g.preds.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (sorted_keys g.succs.(u))
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let copy g =
  let g' = create g.n in
  iter_edges (fun u v -> add_edge g' u v) g;
  g'

let transpose g =
  let g' = create g.n in
  iter_edges (fun u v -> add_edge g' v u) g;
  g'

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph(%d) {" g.n;
  iter_edges (fun u v -> Format.fprintf fmt "@ %d -> %d;" u v) g;
  Format.fprintf fmt "@ }@]"
