(** Maximum s-t flow (Edmonds–Karp realisation of Ford–Fulkerson).

    The paper's resource-based layer eviction (§3.1, Fig. 5) prices the
    removal of an indeterminate operation as a minimum cut between a virtual
    source and the operation; by max-flow/min-cut duality we compute it
    here. Capacities are non-negative ints; [max_int] encodes +∞. *)

type t

val infinity : int
(** Capacity value treated as unbounded. *)

val create : int -> t
(** [create n] builds an empty flow network on vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge. Parallel edges accumulate their capacities.
    @raise Invalid_argument on negative capacity, out-of-range vertices or
    self-loops. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes the maximum flow value. Resets any previous flow. *)

val min_cut : t -> source:int -> sink:int -> int * bool array
(** [min_cut t ~source ~sink] is [(value, side)] where [side.(v)] is [true]
    iff [v] lies on the source side of a minimum cut. Runs a fresh max-flow
    first. *)

val min_cut_nearest_sink : t -> source:int -> sink:int -> int * bool array
(** Like {!min_cut} but returns the minimum cut with the {e fewest} vertices
    on the sink side (the cut "closest to the sink"): the sink side is the
    set of vertices that still reach the sink in the residual graph. Among
    all minimum cuts this one moves the least material to the sink side —
    the tie-break rule of the paper's Fig. 5 ([c2] over [c1]). *)

val cut_edges : t -> bool array -> (int * int * int) list
(** [(u, v, cap)] for every original edge crossing from the source side to
    the sink side of the given partition. *)
