(* Edmonds–Karp with an adjacency list of paired residual arcs.
   Arc 2k and 2k+1 are mutual inverses; residual capacity lives in [cap]. *)

type t = {
  n : int;
  mutable heads : int array array; (* per-vertex arc ids, rebuilt lazily *)
  mutable dirty : bool;
  adj : int list array; (* per-vertex arc ids while under construction *)
  mutable dst : int array;
  mutable cap : int array;
  mutable orig : int array; (* original capacity, to reset and report cuts *)
  mutable arcs : int;
}

let infinity = max_int

let create n =
  if n < 0 then invalid_arg "Maxflow.create";
  {
    n;
    heads = [||];
    dirty = true;
    adj = Array.make (Stdlib.max n 1) [];
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    orig = Array.make 16 0;
    arcs = 0;
  }

let grow t =
  let len = Array.length t.dst in
  if t.arcs + 2 > len then begin
    let len' = 2 * len in
    let extend a = Array.append a (Array.make (len' - len) 0) in
    t.dst <- extend t.dst;
    t.cap <- extend t.cap;
    t.orig <- extend t.orig
  end

let saturating_add a b =
  if a = infinity || b = infinity then infinity
  else if a > infinity - b then infinity
  else a + b

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  if src = dst then invalid_arg "Maxflow.add_edge: self-loop";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  (* merge parallel edges *)
  let existing = List.find_opt (fun a -> t.dst.(a) = dst && a land 1 = 0) t.adj.(src) in
  match existing with
  | Some a ->
    t.cap.(a) <- saturating_add t.cap.(a) cap;
    t.orig.(a) <- saturating_add t.orig.(a) cap
  | None ->
    grow t;
    let a = t.arcs in
    t.dst.(a) <- dst;
    t.cap.(a) <- cap;
    t.orig.(a) <- cap;
    t.dst.(a + 1) <- src;
    t.cap.(a + 1) <- 0;
    t.orig.(a + 1) <- 0;
    t.adj.(src) <- a :: t.adj.(src);
    t.adj.(dst) <- (a + 1) :: t.adj.(dst);
    t.arcs <- t.arcs + 2;
    t.dirty <- true

let rebuild_heads t =
  if t.dirty then begin
    t.heads <- Array.map (fun l -> Array.of_list (List.rev l)) (Array.sub t.adj 0 t.n);
    t.dirty <- false
  end

let reset_flow t =
  Array.blit t.orig 0 t.cap 0 t.arcs

(* One BFS phase: find a shortest augmenting path, return its bottleneck
   and the arc used to enter each vertex (or [-1]). *)
let bfs t ~source ~sink =
  let enter = Array.make t.n (-1) in
  let visited = Array.make t.n false in
  visited.(source) <- true;
  let q = Queue.create () in
  Queue.push source q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    let arcs = t.heads.(u) in
    let i = ref 0 in
    while (not !found) && !i < Array.length arcs do
      let a = arcs.(!i) in
      let v = t.dst.(a) in
      if (not visited.(v)) && t.cap.(a) > 0 then begin
        visited.(v) <- true;
        enter.(v) <- a;
        if v = sink then found := true else Queue.push v q
      end;
      incr i
    done
  done;
  if !found then Some enter else None

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  rebuild_heads t;
  reset_flow t;
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs t ~source ~sink with
    | None -> continue := false
    | Some enter ->
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let a = enter.(v) in
          bottleneck t.dst.(a lxor 1) (Stdlib.min acc t.cap.(a))
        end
      in
      let b = bottleneck sink infinity in
      let rec push v =
        if v <> source then begin
          let a = enter.(v) in
          if t.cap.(a) <> infinity then t.cap.(a) <- t.cap.(a) - b;
          t.cap.(a lxor 1) <- saturating_add t.cap.(a lxor 1) b;
          push t.dst.(a lxor 1)
        end
      in
      if b = infinity then failwith "Maxflow.max_flow: unbounded flow";
      push sink;
      total := saturating_add !total b
  done;
  !total

let min_cut t ~source ~sink =
  let value = max_flow t ~source ~sink in
  let side = Array.make t.n false in
  let rec dfs u =
    if not side.(u) then begin
      side.(u) <- true;
      let follow a = if t.cap.(a) > 0 then dfs t.dst.(a) in
      Array.iter follow t.heads.(u)
    end
  in
  dfs source;
  (value, side)

let min_cut_nearest_sink t ~source ~sink =
  let value = max_flow t ~source ~sink in
  (* Backward reachability to the sink along residual arcs. For any arc
     [b : u -> w] in u's list, its paired inverse [b lxor 1 : w -> u] has
     residual capacity [cap.(b lxor 1)]; that inverse is an arc INTO u, so u
     is reached from w iff that capacity is positive. *)
  let reaches = Array.make t.n false in
  let rec visit u =
    if not reaches.(u) then begin
      reaches.(u) <- true;
      let follow b =
        let v = t.dst.(b) in
        (* residual arc v -> u exists iff inverse of b has capacity *)
        if t.cap.(b lxor 1) > 0 then visit v
      in
      Array.iter follow t.heads.(u)
    end
  in
  visit sink;
  ignore source;
  (value, Array.map not reaches)

let cut_edges t side =
  let acc = ref [] in
  for a = 0 to t.arcs - 1 do
    if a land 1 = 0 then begin
      let u = t.dst.(a lxor 1) and v = t.dst.(a) in
      if side.(u) && (not side.(v)) && t.orig.(a) > 0 then
        acc := (u, v, t.orig.(a)) :: !acc
    end
  done;
  List.rev !acc
