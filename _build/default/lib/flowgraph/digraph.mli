(** Mutable directed graphs over integer vertex ids [0 .. n-1].

    The assay dependency graphs, the layering algorithm's working graphs and
    the min-cut instances are all small (hundreds of vertices), so a simple
    adjacency-list representation is used throughout. *)

type t

val create : int -> t
(** [create n] is a graph with vertices [0 .. n-1] and no edges. *)

val vertex_count : t -> int
val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** Duplicate edges are ignored. @raise Invalid_argument on out-of-range
    vertices or self-loops. *)

val remove_edge : t -> int -> int -> unit
val mem_edge : t -> int -> int -> bool
val succ : t -> int -> int list
val pred : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val copy : t -> t
val transpose : t -> t

val of_edges : int -> (int * int) list -> t
val edges : t -> (int * int) list
(** In ascending [(src, dst)] order. *)

val pp : Format.formatter -> t -> unit
