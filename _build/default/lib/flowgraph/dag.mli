(** Algorithms on directed acyclic graphs.

    Assay dependency graphs are DAGs (a child operation consumes the outputs
    of its parents); the layering algorithm of the paper repeatedly needs
    topological orders, ancestor/descendant sets and reachability. *)

exception Cycle of int list
(** Raised with one offending cycle when an algorithm requires acyclicity. *)

val topological_order : Digraph.t -> int list
(** Deterministic (smallest-vertex-first) topological order.
    @raise Cycle if the graph has a directed cycle. *)

val is_dag : Digraph.t -> bool

val descendants : Digraph.t -> int -> int list
(** All vertices reachable from [v], excluding [v] itself; sorted. *)

val ancestors : Digraph.t -> int -> int list
(** All vertices that reach [v], excluding [v] itself; sorted. *)

val reachable_set : Digraph.t -> int -> bool array
(** [reachable_set g v].(u) is true iff [u = v] or [v] reaches [u]. *)

val longest_path_lengths : Digraph.t -> weight:(int -> int) -> int array
(** [longest_path_lengths g ~weight] gives, per vertex, the maximum total
    [weight] over paths ending at that vertex (inclusive). Used for critical
    path / ASAP bounds. @raise Cycle on cyclic input. *)

val transitive_closure : Digraph.t -> Digraph.t

val sources : Digraph.t -> int list
val sinks : Digraph.t -> int list

val induced_subgraph : Digraph.t -> keep:(int -> bool) -> Digraph.t * int array * int array
(** [induced_subgraph g ~keep] is [(h, old_of_new, new_of_old)] where [h]
    contains only the kept vertices (re-indexed densely), [old_of_new] maps
    the new ids back, and [new_of_old].(v) is [-1] for dropped vertices. *)
