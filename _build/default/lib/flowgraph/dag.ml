exception Cycle of int list

let topological_order g =
  let n = Digraph.vertex_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let module Q = Set.Make (Int) in
  let ready = ref Q.empty in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := Q.add v !ready
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Q.is_empty !ready) do
    let v = Q.min_elt !ready in
    ready := Q.remove v !ready;
    order := v :: !order;
    incr count;
    let relax u =
      indeg.(u) <- indeg.(u) - 1;
      if indeg.(u) = 0 then ready := Q.add u !ready
    in
    List.iter relax (Digraph.succ g v)
  done;
  if !count <> n then begin
    (* Find one cycle among the unprocessed vertices for the error report. *)
    let in_cycle = Array.make n false in
    for v = 0 to n - 1 do
      if indeg.(v) > 0 then in_cycle.(v) <- true
    done;
    let start =
      let rec find v = if v < n && not in_cycle.(v) then find (v + 1) else v in
      find 0
    in
    let rec walk path v =
      if List.mem v path then
        let rec cut = function
          | [] -> []
          | x :: rest -> if x = v then [ x ] else x :: cut rest
        in
        raise (Cycle (cut (List.rev (v :: path))))
      else begin
        match List.filter (fun u -> in_cycle.(u)) (Digraph.succ g v) with
        | [] -> raise (Cycle [ v ])
        | u :: _ -> walk (v :: path) u
      end
    in
    walk [] start
  end;
  List.rev !order

let is_dag g =
  match topological_order g with
  | (_ : int list) -> true
  | exception Cycle _ -> false

let reachable_set g v =
  let n = Digraph.vertex_count g in
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter dfs (Digraph.succ g u)
    end
  in
  dfs v;
  seen

let descendants g v =
  let seen = reachable_set g v in
  seen.(v) <- false;
  let acc = ref [] in
  for u = Array.length seen - 1 downto 0 do
    if seen.(u) then acc := u :: !acc
  done;
  !acc

let ancestors g v =
  let gt = Digraph.transpose g in
  descendants gt v

let longest_path_lengths g ~weight =
  let order = topological_order g in
  let n = Digraph.vertex_count g in
  let dist = Array.make n 0 in
  let process v =
    let best_pred = List.fold_left (fun acc p -> max acc dist.(p)) 0 (Digraph.pred g v) in
    dist.(v) <- best_pred + weight v
  in
  List.iter process order;
  dist

let transitive_closure g =
  let n = Digraph.vertex_count g in
  let h = Digraph.create n in
  for v = 0 to n - 1 do
    List.iter (fun u -> Digraph.add_edge h v u) (descendants g v)
  done;
  h

let sources g =
  let n = Digraph.vertex_count g in
  List.filter (fun v -> Digraph.in_degree g v = 0) (List.init n Fun.id)

let sinks g =
  let n = Digraph.vertex_count g in
  List.filter (fun v -> Digraph.out_degree g v = 0) (List.init n Fun.id)

let induced_subgraph g ~keep =
  let n = Digraph.vertex_count g in
  let new_of_old = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if keep v then begin
      new_of_old.(v) <- !count;
      incr count
    end
  done;
  let old_of_new = Array.make !count 0 in
  for v = 0 to n - 1 do
    if new_of_old.(v) >= 0 then old_of_new.(new_of_old.(v)) <- v
  done;
  let h = Digraph.create !count in
  let add u v =
    if new_of_old.(u) >= 0 && new_of_old.(v) >= 0 then
      Digraph.add_edge h new_of_old.(u) new_of_old.(v)
  in
  Digraph.iter_edges add g;
  (h, old_of_new, new_of_old)
