type t = { floorplan : Floorplan.t; routing : Router.t }

let of_schedule ?halo cost (s : Cohls.Schedule.t) =
  let chip = s.Cohls.Schedule.chip in
  let devices = Microfluidics.Chip.devices chip in
  let path_usage = Microfluidics.Chip.path_usage chip in
  let floorplan = Floorplan.plan ?halo ~cost ~devices ~path_usage () in
  let routing = Router.route_all floorplan ~path_usage in
  { floorplan; routing }

let transport_times prog design ~op_count ~binding ~children =
  let lengths = List.map (fun r -> r.Router.length) design.routing.Router.routes in
  let max_len = List.fold_left max 1 lengths in
  let term_of_length len =
    let bucket = (len - 1) * prog.Cohls.Transport.term_count / max_len in
    Cohls.Transport.term prog bucket
  in
  let slowest = Cohls.Transport.term prog (prog.Cohls.Transport.term_count - 1) in
  let times = Array.make op_count slowest in
  for op = 0 to op_count - 1 do
    match binding op with
    | None -> ()
    | Some dev ->
      let worst acc c =
        match binding c with
        | None -> acc
        | Some dev' ->
          if dev = dev' then acc
          else begin
            match Router.channel_length design.routing dev dev' with
            | Some len -> max acc (term_of_length len)
            | None -> max acc slowest
          end
      in
      times.(op) <- List.fold_left worst 0 (children op)
  done;
  Cohls.Transport.of_times times

let quality t =
  ( Floorplan.die_area t.floorplan,
    t.routing.Router.total_length,
    t.routing.Router.crossings )

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,routing: %d channels, length %d, %d crossings, %d failures@]"
    Floorplan.pp t.floorplan
    (List.length t.routing.Router.routes)
    t.routing.Router.total_length t.routing.Router.crossings
    (List.length t.routing.Router.failures)
