(** End-to-end physical estimate: floorplan + routed channels for a
    synthesised schedule, and a transportation-time source derived from the
    {e routed} channel lengths — the strongest of the three refinement
    sources (constant < usage-rank / grid estimate < routed lengths),
    closing the loop the paper opens in §4.1. *)

type t = {
  floorplan : Floorplan.t;
  routing : Router.t;
}

val of_schedule : ?halo:int -> Microfluidics.Cost.t -> Cohls.Schedule.t -> t

val transport_times :
  Cohls.Transport.progression ->
  t ->
  op_count:int ->
  binding:(int -> int option) ->
  children:(int -> int list) ->
  Cohls.Transport.t
(** Routed lengths are bucketed into the progression terms: the shortest
    routed channel gets [min_term], the longest [max_term]; same-device
    transfers cost 0 and unrouted pairs get the slowest term. *)

val quality : t -> int * int * int
(** [(die_area, total_channel_length, crossings)]. *)

val pp : Format.formatter -> t -> unit
