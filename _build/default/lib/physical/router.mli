(** Maze routing of flow channels over a floorplan.

    Paths are routed one by one (most-used first, so hot channels get the
    short direct routes) with breadth-first search on the free grid; device
    rectangles are obstacles except at their ports; cells used by earlier
    channels stay usable but cost extra, and a crossing between two routed
    channels is recorded — crossings on a continuous-flow chip need extra
    valves, so the count is a quality metric alongside total length. *)

type route = {
  path : int * int;  (** unordered device pair *)
  cells : (int * int) list;  (** from source port to sink port, inclusive *)
  length : int;  (** number of steps, [List.length cells - 1] *)
}

type t = {
  routes : route list;  (** in the order routed: most-used path first *)
  total_length : int;
  crossings : int;  (** grid cells shared by two or more channels *)
  failures : (int * int) list;  (** unroutable pairs (no free corridor) *)
}

val route_all :
  Floorplan.t -> path_usage:((int * int) * int) list -> t

val channel_length : t -> int -> int -> int option
(** Routed length of the channel between two devices. *)
