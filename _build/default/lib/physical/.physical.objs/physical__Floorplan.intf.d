lib/physical/floorplan.mli: Format Microfluidics
