lib/physical/floorplan.ml: Cost Device Format List Microfluidics
