lib/physical/router.ml: Array Floorplan Hashtbl List Option Set
