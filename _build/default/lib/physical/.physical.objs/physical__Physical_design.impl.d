lib/physical/physical_design.ml: Array Cohls Floorplan Format List Microfluidics Router
