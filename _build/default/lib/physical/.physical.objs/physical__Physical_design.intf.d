lib/physical/physical_design.mli: Cohls Floorplan Format Microfluidics Router
