lib/physical/router.mli: Floorplan
