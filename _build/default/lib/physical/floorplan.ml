open Microfluidics

type rect = { device : int; x : int; y : int; w : int; h : int }

type t = { rects : rect list; width : int; height : int }

(* Roughly square footprint with w*h >= area. *)
let footprint area =
  let area = max 1 area in
  let w = int_of_float (ceil (sqrt (float_of_int area))) in
  let h = (area + w - 1) / w in
  (w, h)

let plan ?(halo = 1) ~cost ~devices ~path_usage () =
  if halo < 0 then invalid_arg "Floorplan.plan: negative halo";
  let n = List.length devices in
  if n = 0 then { rects = []; width = 0; height = 0 }
  else begin
    (* order devices by connectivity weight, heaviest first *)
    let weight d =
      List.fold_left
        (fun acc ((a, b), u) ->
          if a = d.Device.id || b = d.Device.id then acc + u else acc)
        0 path_usage
    in
    let ordered =
      List.sort
        (fun d1 d2 ->
          let w1 = weight d1 and w2 = weight d2 in
          if w1 <> w2 then compare w2 w1 else compare d1.Device.id d2.Device.id)
        devices
    in
    (* estimate a die wide enough for a near-square arrangement *)
    let total_area =
      List.fold_left
        (fun acc d ->
          let w, h = footprint (Cost.device_area cost d) in
          acc + ((w + halo) * (h + halo)))
        0 devices
    in
    let die_w = max 4 (int_of_float (ceil (sqrt (float_of_int total_area *. 1.8)))) in
    (* shelf packing: place left to right, new shelf when the row is full *)
    let rects = ref [] in
    let cx = ref halo and cy = ref halo in
    let shelf_h = ref 0 in
    let place d =
      let w, h = footprint (Cost.device_area cost d) in
      if !cx + w + halo > die_w then begin
        cx := halo;
        cy := !cy + !shelf_h + halo;
        shelf_h := 0
      end;
      rects := { device = d.Device.id; x = !cx; y = !cy; w; h } :: !rects;
      cx := !cx + w + halo;
      if h > !shelf_h then shelf_h := h
    in
    List.iter place ordered;
    let rects = List.sort (fun a b -> compare a.device b.device) !rects in
    let height =
      List.fold_left (fun acc r -> max acc (r.y + r.h)) 0 rects + halo
    in
    { rects; width = die_w; height }
  end

let rect_of t d = List.find_opt (fun r -> r.device = d) t.rects

let die_area t = t.width * t.height

let occupied t ~x ~y =
  List.exists (fun r -> x >= r.x && x < r.x + r.w && y >= r.y && y < r.y + r.h) t.rects

let port_of t d =
  match rect_of t d with
  | None -> raise Not_found
  | Some r -> (r.x + (r.w / 2), r.y + r.h) (* centre of the bottom edge *)

let pp fmt t =
  Format.fprintf fmt "@[<v>floorplan %dx%d (%d devices):@," t.width t.height
    (List.length t.rects);
  List.iter
    (fun r ->
      Format.fprintf fmt "  d%-3d @@ (%d,%d) %dx%d@," r.device r.x r.y r.w r.h)
    t.rects;
  Format.fprintf fmt "@]"
