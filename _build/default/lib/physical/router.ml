type route = {
  path : int * int;
  cells : (int * int) list;
  length : int;
}

type t = {
  routes : route list;
  total_length : int;
  crossings : int;
  failures : (int * int) list;
}

(* Dijkstra on the free grid; cells already carrying a channel cost extra,
   so the router prefers detours over crossings but accepts a crossing when
   the detour is long. *)
let shared_cell_penalty = 5

module Pq = Set.Make (struct
  type t = int * int * int (* cost, x, y *)

  let compare = compare
end)

let route_one fp used ~src_port ~dst_port =
  let w = fp.Floorplan.width and h = fp.Floorplan.height in
  if w = 0 || h = 0 then None
  else begin
    let idx (x, y) = (y * w) + x in
    let dist = Array.make (w * h) max_int in
    let prev = Array.make (w * h) (-1) in
    let sx, sy = src_port and tx, ty = dst_port in
    if sx < 0 || sx >= w || sy < 0 || sy >= h || tx < 0 || tx >= w || ty < 0 || ty >= h
    then None
    else begin
      let free (x, y) =
        x >= 0 && x < w && y >= 0 && y < h && not (Floorplan.occupied fp ~x ~y)
      in
      if (not (free src_port)) || not (free dst_port) then None
      else begin
        dist.(idx src_port) <- 0;
        let frontier = ref (Pq.singleton (0, sx, sy)) in
        let found = ref false in
        while (not !found) && not (Pq.is_empty !frontier) do
          let ((d, x, y) as node) = Pq.min_elt !frontier in
          frontier := Pq.remove node !frontier;
          if (x, y) = dst_port then found := true
          else if d <= dist.(idx (x, y)) then begin
            let step (nx, ny) =
              if free (nx, ny) then begin
                let extra =
                  if Hashtbl.mem used (nx, ny) then shared_cell_penalty else 0
                in
                let nd = d + 1 + extra in
                if nd < dist.(idx (nx, ny)) then begin
                  dist.(idx (nx, ny)) <- nd;
                  prev.(idx (nx, ny)) <- idx (x, y);
                  frontier := Pq.add (nd, nx, ny) !frontier
                end
              end
            in
            step (x + 1, y);
            step (x - 1, y);
            step (x, y + 1);
            step (x, y - 1)
          end
        done;
        if not !found then None
        else begin
          let rec walk acc i =
            if i = idx src_port then (sx, sy) :: acc
            else walk ((i mod w, i / w) :: acc) prev.(i)
          in
          Some (walk [] (idx dst_port))
        end
      end
    end
  end

let route_all fp ~path_usage =
  let used = Hashtbl.create 64 in
  let routes = ref [] in
  let failures = ref [] in
  let ordered =
    List.sort (fun (ka, ua) (kb, ub) -> compare (-ua, ka) (-ub, kb)) path_usage
  in
  List.iter
    (fun ((a, b), _usage) ->
      match (Floorplan.rect_of fp a, Floorplan.rect_of fp b) with
      | Some _, Some _ -> begin
        let src_port = Floorplan.port_of fp a in
        let dst_port = Floorplan.port_of fp b in
        match route_one fp used ~src_port ~dst_port with
        | Some cells ->
          List.iter
            (fun cell ->
              let n = Option.value ~default:0 (Hashtbl.find_opt used cell) in
              Hashtbl.replace used cell (n + 1))
            cells;
          routes :=
            { path = (min a b, max a b); cells; length = List.length cells - 1 }
            :: !routes
        | None -> failures := (min a b, max a b) :: !failures
      end
      | _, _ -> failures := (min a b, max a b) :: !failures)
    ordered;
  let crossings = Hashtbl.fold (fun _ n acc -> if n >= 2 then acc + 1 else acc) used 0 in
  let routes = List.rev !routes in
  {
    routes;
    total_length = List.fold_left (fun acc r -> acc + r.length) 0 routes;
    crossings;
    failures = List.rev !failures;
  }

let channel_length t a b =
  let k = (min a b, max a b) in
  Option.map (fun r -> r.length) (List.find_opt (fun r -> r.path = k) t.routes)
