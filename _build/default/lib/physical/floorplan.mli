(** Chip floorplanning: device rectangles on a unit grid.

    High-level synthesis only reasons about {e potential} layout (paper
    §4.1); this module makes the potential concrete enough to route
    against: every device becomes a rectangle whose footprint is derived
    from its area cost, placed greedily by connectivity (heaviest-path
    endpoints first, like {!Microfluidics.Layout} but with real extents and
    a routing halo between blocks). *)

type rect = { device : int; x : int; y : int; w : int; h : int }

type t = {
  rects : rect list;  (** ascending device id *)
  width : int;  (** die width in grid units *)
  height : int;
}

val plan :
  ?halo:int ->
  cost:Microfluidics.Cost.t ->
  devices:Microfluidics.Device.t list ->
  path_usage:((int * int) * int) list ->
  unit ->
  t
(** [halo] (default 1) empty cells are kept around every rectangle so the
    router always has a channel. Footprints: a device of area [a] becomes a
    rectangle of roughly square shape with [w*h >= a]. *)

val rect_of : t -> int -> rect option
val die_area : t -> int
val occupied : t -> x:int -> y:int -> bool
(** Inside some device rectangle (halos not included). *)

val port_of : t -> int -> int * int
(** A cell on the rectangle's boundary used as the routing terminal.
    @raise Not_found for unknown devices. *)

val pp : Format.formatter -> t -> unit
