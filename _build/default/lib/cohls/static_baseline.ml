open Microfluidics

type exposure = { exposed_slots : int; total_slots : int; worst_chain : int }

(* Rebuild the assay with indeterminacy erased. *)
let determinise assay =
  let det = Assay.create ~name:(Assay.name assay ^ "-static") in
  Array.iter
    (fun (o : Operation.t) ->
      let duration = Operation.Fixed (Operation.min_duration o) in
      ignore
        (Assay.add_operation det ?container:o.Operation.container
           ?capacity:o.Operation.capacity
           ~accessories:(Components.Accessory.Set.elements o.Operation.accessories)
           ~duration o.Operation.name))
    (Assay.operations assay);
  Flowgraph.Digraph.iter_edges
    (fun u v -> Assay.add_dependency det ~parent:u ~child:v)
    (Assay.dependency_graph assay);
  det

let static_schedule ?(config = Synthesis.default_config) assay =
  let det = determinise assay in
  let r = Synthesis.run ~config det in
  r.Synthesis.final

let exposure_of (s : Schedule.t) ~original =
  let ops = Assay.operations original in
  (* absolute start and minimum end per op, concatenating layers *)
  let abs = Hashtbl.create 64 in
  let offset = ref 0 in
  Array.iter
    (fun (l : Schedule.layer_schedule) ->
      List.iter
        (fun (e : Schedule.entry) ->
          Hashtbl.replace abs e.Schedule.op
            (!offset + e.Schedule.start, !offset + e.Schedule.start + e.Schedule.min_duration))
        l.Schedule.entries;
      offset := !offset + l.Schedule.fixed_makespan)
    s.Schedule.layers;
  let total_slots = Hashtbl.length abs in
  let indets =
    Array.to_list ops
    |> List.filter_map (fun (o : Operation.t) ->
           if Operation.is_indeterminate o then Hashtbl.find_opt abs o.Operation.id
           else None)
  in
  let exposed = Hashtbl.create 64 in
  let worst = ref 0 in
  List.iter
    (fun (_, min_end) ->
      let count = ref 0 in
      Hashtbl.iter
        (fun op (start, _) ->
          if start > min_end then begin
            incr count;
            Hashtbl.replace exposed op ()
          end)
        abs;
      if !count > !worst then worst := !count)
    indets;
  { exposed_slots = Hashtbl.length exposed; total_slots; worst_chain = !worst }

(* Hybrid exposure: inside a layer constraint (14) protects every slot; a
   slot is only exposed to indeterminate ops of ITS OWN layer (boundary
   shifts are controlled, not breaking). *)
let hybrid_exposure (s : Schedule.t) ~original =
  let ops = Assay.operations original in
  let exposed = Hashtbl.create 16 in
  let worst = ref 0 in
  let total = ref 0 in
  Array.iter
    (fun (l : Schedule.layer_schedule) ->
      total := !total + List.length l.Schedule.entries;
      let indets =
        List.filter_map
          (fun (e : Schedule.entry) ->
            if Operation.is_indeterminate ops.(e.Schedule.op) then
              Some (e.Schedule.start + e.Schedule.min_duration)
            else None)
          l.Schedule.entries
      in
      List.iter
        (fun min_end ->
          let count = ref 0 in
          List.iter
            (fun (e : Schedule.entry) ->
              if e.Schedule.start > min_end then begin
                incr count;
                Hashtbl.replace exposed e.Schedule.op ()
              end)
            l.Schedule.entries;
          if !count > !worst then worst := !count)
        indets)
    s.Schedule.layers;
  { exposed_slots = Hashtbl.length exposed; total_slots = !total; worst_chain = !worst }

let compare_hybrid ?(config = Synthesis.default_config) assay =
  let static = static_schedule ~config assay in
  let hybrid = (Synthesis.run ~config assay).Synthesis.final in
  (exposure_of static ~original:assay, hybrid_exposure hybrid ~original:assay)
