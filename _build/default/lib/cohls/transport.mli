(** Reagent-transportation-time estimation (paper §4.1).

    Channel lengths are unknown during high-level synthesis, so the paper
    (1) starts from a user constant [t] for every operation, (2) after a
    full synthesis pass refines each operation's transportation time to a
    term of a user-defined arithmetic progression — paths used more often
    get shorter channels, hence shorter times — and (3) zeroes the time when
    all of an operation's children share its device. *)

type progression = {
  min_term : int;  (** minutes, shortest (most-used path) *)
  max_term : int;
  term_count : int;
}

val default_progression : progression
(** [{min_term = 2; max_term = 10; term_count = 5}]. *)

val term : progression -> int -> int
(** [term p k] is the [k]-th term, clamped into [0 .. term_count-1].
    @raise Invalid_argument on a malformed progression. *)

type t
(** Per-operation transportation times. *)

val constant : op_count:int -> int -> t
(** The initial estimate: the same [t] for every operation. *)

val of_times : int array -> t
(** Explicit per-operation times (e.g. derived from a routed physical
    design). @raise Invalid_argument on a negative entry. *)

val time : t -> int -> int
(** Transportation time of an operation's outputs, in minutes. *)

val refine :
  progression ->
  op_count:int ->
  binding:(int -> int option) ->
  children:(int -> int list) ->
  path_usage:((int * int) * int) list ->
  t
(** Layout-aware refinement from a previous iteration's binding: for every
    operation, the most-used (hence shortest) path among those its reagents
    travel determines the progression term; same-device transfers cost 0;
    unbound operations keep the slowest term. [binding] maps an op to its
    device, [path_usage] is sorted most-used-first (as produced by
    {!Microfluidics.Chip.path_usage}). *)

val of_layout :
  progression ->
  op_count:int ->
  binding:(int -> int option) ->
  children:(int -> int list) ->
  layout:Microfluidics.Layout.t ->
  t
(** Alternative refinement taking estimated Manhattan channel lengths from a
    {!Microfluidics.Layout} placement instead of usage ranks. *)

val pp : Format.formatter -> t -> unit
