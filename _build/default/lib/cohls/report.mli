(** Rendering synthesis results in the layout of the paper's tables. *)

type comparison_row = {
  testcase : string;
  op_count : int;
  indeterminate_count : int;
  conventional : Synthesis.result;
  ours : Synthesis.result;
}

val exe_time_string : Synthesis.result -> string
(** Fixed minutes plus one symbolic [+I_k] per layer ending in indeterminate
    operations, e.g. ["244m+I1"]. *)

val table2 : Format.formatter -> comparison_row list -> unit
(** The paper's Table 2: per test case, conventional vs ours on execution
    time, device count, path count and program runtime. *)

val table3 : Format.formatter -> (string * Synthesis.result) list -> unit
(** The paper's Table 3: execution time and device count per progressive
    re-synthesis iteration, with relative improvements. *)

val schedule_summary : Format.formatter -> Synthesis.result -> unit
(** One-paragraph summary: layers, devices, paths, costs, runtime. *)
