(** Layering for hybrid scheduling (paper §3.1, Algorithm 1).

    The assay is split into sequential layers so that every indeterminate
    operation sits at the end of its layer's sub-schedule: the cyber-physical
    controller then only needs to act at layer boundaries. Two phases per
    layer:

    - {e dependency-based allocation}: a modified maximum-independent-set
      pass — repeatedly pick an indeterminate operation with no indeterminate
      ancestor left in the working set, keep it, and push all its descendants
      to later layers; finally keep every remaining operation (Fig. 4);
    - {e resource-based allocation}: while the layer holds more indeterminate
      operations than the threshold [t], evict the one whose removal is
      cheapest, where the cost is a Ford–Fulkerson minimum cut between a
      virtual source (the previous layer) and the operation over its
      in-layer ancestor subgraph: crossing edges are reagents that must be
      stored across the boundary; the tie-break prefers cuts moving fewer
      ancestors (Fig. 5). *)

open Microfluidics

type layer = {
  index : int;
  ops : int list;  (** ascending op ids *)
  indeterminate : int list;  (** subset of [ops] *)
  stored_transfers : (int * int) list;
      (** (parent in this or earlier layer, child in a later layer): reagent
          transfers crossing this layer's boundary because eviction split a
          dependency — each occupies one storage unit (Fig. 5). *)
}

type t = {
  assay : Assay.t;
  threshold : int;
  layers : layer array;
  layer_of_op : int array;
}

type choice =
  | Smallest_id  (** deterministic; the default *)
  | Seeded of int
      (** pseudo-random pick among the eligible indeterminate operations —
          the paper's literal "randomly choose" (§3.1), reproducible per
          seed; the ablation bench measures how little the outcome depends
          on it *)

val compute : ?threshold:int -> ?choice:choice -> Assay.t -> t
(** Default [threshold = 10] (the paper's experimental setting) and
    [choice = Smallest_id].
    @raise Invalid_argument if [threshold < 1] or the assay fails
    validation. *)

val layer_count : t -> int
val storage_units : t -> int
(** Total stored transfers over all boundaries. *)

val check : ?strict:bool -> t -> (unit, string) result
(** Verifies the structural invariants: the layers partition the operation
    set; dependencies never point to an earlier layer; descendants of an
    indeterminate operation live in strictly later layers. With
    [strict = true] (default) additionally: every layer except possibly the
    last contains an indeterminate operation, and no layer exceeds the
    indeterminate threshold — properties the paper states but which an
    eviction cascade can violate on adversarial dependency graphs (the
    implementation then prefers keeping a boundary operation over the
    threshold). *)

val pp : Format.formatter -> t -> unit
