(** The modified conventional synthesis method used as the comparison point
    in the paper's §5.

    The paper upgrades the classical functionality-type flow just enough to
    run on the same inputs: operations and devices are classified by their
    {e component requirements} (not by function names), binding demands an
    exact class match, and the layering + progressive re-synthesis machinery
    is grafted on so indeterminate operations are supported. In this code
    base that is exactly {!Synthesis.run} under the
    {!Binding.Exact_signature} rule; this module is the named entry point. *)

val run : ?config:Synthesis.config -> Microfluidics.Assay.t -> Synthesis.result
(** [run assay] with a default of {!Synthesis.conventional_config}; a custom
    [config] has its binding rule forced to {!Binding.Exact_signature}. *)
