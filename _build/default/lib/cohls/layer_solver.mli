(** Per-layer solving engine selection.

    [Heuristic] runs the greedy list scheduler only. [Ilp] additionally
    builds the paper's §4 model over the inherited devices plus a few free
    slots, warm-starts branch-and-bound with the greedy solution, and keeps
    whichever is better — so it degrades gracefully into the heuristic when
    the time budget is too small for the exact search (the anytime behaviour
    the paper gets from Gurobi). *)

open Microfluidics

type engine =
  | Heuristic
  | Ilp of {
      options : Lp.Branch_bound.options;
      extra_free_slots : int;
          (** free slots beyond the ones the heuristic needed *)
    }

val default_ilp : engine
(** 10-second time limit, one extra free slot. *)

type input = {
  ops : Operation.t array;
  graph : Flowgraph.Digraph.t;
  layer : Layering.layer;
  layer_of_op : int array;
  bound_before : int -> int option;
  available : Device.t list;
  rule : Binding.rule;
  max_devices : int;
  transport : int -> int;
  cost : Cost.t;
  weights : Schedule.weights;
  existing_paths : (int * int) list;
  device_penalty : int -> int;
      (** see {!List_scheduler.config}; only affects the heuristic engine *)
}

type output = {
  entries : Schedule.entry list;
  fixed_makespan : int;
  created : Device.t list;
  used_ilp : bool;  (** the ILP improved on the heuristic incumbent *)
}

val solve : engine -> input -> fresh_id:(unit -> int) -> output
(** @raise List_scheduler.No_device when the device cap is too small. *)
