(** Top-level synthesis driver: layering → per-layer solving with device
    inheritance → progressive re-synthesis with transportation refinement
    (paper §3–§4).

    The first pass inherits devices forward only (layer [i] sees everything
    integrated for layers [< i]). Re-synthesis passes make the whole
    previous chip visible to every layer; a layer pays the integration cost
    again on first use of its own previous devices [D'_i], so it
    re-justifies them against devices other layers account for — the
    cost-transparent realisation of §3.2's [D \ D'_i] inheritance (see
    DESIGN.md). Every operation's transportation time is re-estimated from
    the previous pass's path usage (§4.1). A pass is accepted only when the
    weighted objective improves; iteration stops when the execution-time
    gain becomes marginal or the iteration cap is hit. *)

open Microfluidics

type config = {
  rule : Binding.rule;
  threshold : int;  (** max indeterminate ops per layer *)
  max_devices : int;  (** |D| *)
  engine : Layer_solver.engine;
  cost : Cost.t;
  weights : Schedule.weights;
  initial_transport : int;  (** the user constant t of §4.1 *)
  progression : Transport.progression;
  max_iterations : int;
  improvement_threshold : float;
      (** keep iterating while the relative execution-time gain exceeds
          this; default [0.02] *)
  refine_by_layout : bool;
      (** price paths by grid-layout Manhattan length instead of usage rank *)
}

val default_config : config
(** Component-oriented rule, threshold 10, 25 devices, heuristic engine,
    default costs/weights, t = 10 (the progression's slowest term, i.e. a
    conservative first estimate), progression 2..10 with 5 terms, at most 5
    iterations, 2% improvement threshold. *)

val conventional_config : config
(** Same, with the exact-signature binding rule — the paper's modified
    conventional baseline of §5. *)

type iteration = {
  iteration_index : int;
  schedule : Schedule.t;
  breakdown : Schedule.breakdown;
}

type result = {
  config : config;
  layering : Layering.t;
  iterations : iteration list;  (** chronological *)
  final : Schedule.t;
  final_breakdown : Schedule.breakdown;
  runtime_seconds : float;
}

val run : ?config:config -> Assay.t -> result
(** @raise List_scheduler.No_device when [max_devices] cannot accommodate
    the assay.
    @raise Invalid_argument on an invalid assay. *)

val improvement_history : result -> (int * float) list
(** Per iteration (>= 1): relative execution-time improvement over the
    previous one — the numbers of the paper's Table 3. *)
