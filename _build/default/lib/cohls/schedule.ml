open Microfluidics

type entry = {
  op : int;
  device : int;
  start : int;
  min_duration : int;
  transport : int;
  indeterminate : bool;
}

type layer_schedule = {
  layer_index : int;
  entries : entry list;
  fixed_makespan : int;
}

type t = {
  assay : Assay.t;
  rule : Binding.rule;
  layering : Layering.t;
  chip : Chip.t;
  layers : layer_schedule array;
  transport_times : Transport.t;
}

let make ~assay ~rule ~layering ~chip ~layers ~transport_times =
  { assay; rule; layering; chip; layers; transport_times }

let entry_of_op t op =
  let find_in l = List.find_opt (fun e -> e.op = op) l.entries in
  Array.fold_left
    (fun acc l -> match acc with Some _ -> acc | None -> find_in l)
    None t.layers

let binding t op = Option.map (fun e -> e.device) (entry_of_op t op)

let total_fixed_minutes t =
  Array.fold_left (fun acc l -> acc + l.fixed_makespan) 0 t.layers

let device_count t = Chip.device_count t.chip
let path_count t = Chip.path_count t.chip

let indeterminate_tail t i =
  if i < 0 || i >= Array.length t.layers then []
  else
    List.filter_map
      (fun e -> if e.indeterminate then Some e.op else None)
      t.layers.(i).entries

type breakdown = {
  fixed_minutes : int;
  devices : int;
  paths : int;
  area : int;
  processing : int;
  weighted : int;
}

type weights = { w_time : int; w_area : int; w_processing : int; w_paths : int }

let default_weights = { w_time = 100; w_area = 150; w_processing = 150; w_paths = 200 }

let evaluate ?(weights = default_weights) cost t =
  let fixed_minutes = total_fixed_minutes t in
  let devices = device_count t in
  let paths = path_count t in
  let area = Chip.total_area cost t.chip in
  let processing = Chip.total_processing cost t.chip in
  let weighted =
    (weights.w_time * fixed_minutes)
    + (weights.w_area * area)
    + (weights.w_processing * processing)
    + (weights.w_paths * paths)
  in
  { fixed_minutes; devices; paths; area; processing; weighted }

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let ops = Assay.operations t.assay in
  let n = Array.length ops in
  (* coverage and layer membership *)
  let entry_of = Array.make n None in
  Array.iter
    (fun l ->
      List.iter
        (fun e ->
          if e.op < 0 || e.op >= n then err "entry for unknown op %d" e.op
          else begin
            (match entry_of.(e.op) with
             | Some _ -> err "op %d scheduled twice" e.op
             | None -> entry_of.(e.op) <- Some (l.layer_index, e));
            if t.layering.Layering.layer_of_op.(e.op) <> l.layer_index then
              err "op %d scheduled in layer %d but layered into %d" e.op
                l.layer_index
                t.layering.Layering.layer_of_op.(e.op)
          end)
        l.entries)
    t.layers;
  for v = 0 to n - 1 do
    if entry_of.(v) = None then err "op %d not scheduled" v
  done;
  let get v = entry_of.(v) in
  (* binding compatibility and entry consistency *)
  let check_entry v =
    match get v with
    | None -> ()
    | Some (_, e) ->
      (match Chip.find_device t.chip e.device with
       | None -> err "op %d bound to unknown device %d" v e.device
       | Some d ->
         if not (Binding.op_fits t.rule ops.(v) d) then
           err "op %d does not fit device %d under %s rule" v e.device
             (Binding.rule_name t.rule));
      if e.start < 0 then err "op %d starts at negative time" v;
      if e.min_duration <> Operation.min_duration ops.(v) then
        err "op %d entry duration %d <> operation %d" v e.min_duration
          (Operation.min_duration ops.(v));
      if e.indeterminate <> Operation.is_indeterminate ops.(v) then
        err "op %d indeterminate flag mismatch" v
  in
  for v = 0 to n - 1 do
    check_entry v
  done;
  (* dependencies (9): within a layer, child waits for execution+transport;
     across layers the layering check already enforces ordering *)
  let g = Assay.dependency_graph t.assay in
  let check_dep u v =
    match (get u, get v) with
    | Some (lu, eu), Some (lv, ev) when lu = lv ->
      if ev.start < eu.start + eu.min_duration + eu.transport then
        err "dependency %d->%d violated: child starts %d < %d" u v ev.start
          (eu.start + eu.min_duration + eu.transport)
    | Some _, Some _ | None, _ | _, None -> ()
  in
  Flowgraph.Digraph.iter_edges check_dep g;
  (* device exclusivity (10)-(13) within each layer *)
  let busy_conflict e1 e2 =
    e1.device = e2.device
    && e1.start < e2.start + e2.min_duration + e2.transport
    && e2.start < e1.start + e1.min_duration + e1.transport
  in
  Array.iter
    (fun l ->
      let rec pairwise = function
        | [] -> ()
        | e :: rest ->
          List.iter
            (fun e' ->
              if busy_conflict e e' then
                err "ops %d and %d overlap on device %d in layer %d" e.op e'.op
                  e.device l.layer_index)
            rest;
          pairwise rest
      in
      pairwise l.entries;
      (* indeterminate operations close the sub-schedule (14) *)
      let indets = List.filter (fun e -> e.indeterminate) l.entries in
      List.iter
        (fun i ->
          List.iter
            (fun e ->
              if e.start > i.start + i.min_duration then
                err "op %d starts after indeterminate %d may end (14)" e.op i.op;
              if (not e.indeterminate) && e.device = i.device
                 && e.start >= i.start then
                err "op %d uses device %d after indeterminate %d started" e.op
                  e.device i.op)
            l.entries)
        indets;
      let rec distinct = function
        | [] -> ()
        | i :: rest ->
          List.iter
            (fun i' ->
              if i.device = i'.device then
                err "indeterminate ops %d and %d share device %d" i.op i'.op
                  i.device)
            rest;
          distinct rest
      in
      distinct indets;
      (* makespan consistency *)
      let real =
        List.fold_left
          (fun acc e -> max acc (e.start + e.min_duration + e.transport))
          0 l.entries
      in
      if real <> l.fixed_makespan then
        err "layer %d fixed makespan %d <> computed %d" l.layer_index
          l.fixed_makespan real)
    t.layers;
  (* transportation paths (21): an inter-device transfer needs a path *)
  let check_path u v =
    match (get u, get v) with
    | Some (_, eu), Some (_, ev) when eu.device <> ev.device ->
      let pair = (min eu.device ev.device, max eu.device ev.device) in
      if not (List.mem_assoc pair (Chip.path_usage t.chip)) then
        err "transfer %d->%d lacks a path between devices %d and %d" u v
          eu.device ev.device
    | Some _, Some _ | None, _ | _, None -> ()
  in
  Flowgraph.Digraph.iter_edges check_path g;
  match !errors with [] -> Ok () | e -> Error (String.concat "; " (List.rev e))

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule of %s (%s): %d layers, %d devices, %d paths, fixed %dm@,"
    (Assay.name t.assay)
    (Binding.rule_name t.rule)
    (Array.length t.layers) (device_count t) (path_count t)
    (total_fixed_minutes t);
  Array.iter
    (fun l ->
      Format.fprintf fmt "  L%d (fixed %dm):@," l.layer_index l.fixed_makespan;
      List.iter
        (fun e ->
          Format.fprintf fmt "    t=%-4d o%-3d on d%-2d dur=%d%s tr=%d@," e.start
            e.op e.device e.min_duration
            (if e.indeterminate then "+I" else "")
            e.transport)
        l.entries)
    t.layers;
  Format.fprintf fmt "@]"
