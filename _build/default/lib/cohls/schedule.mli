(** Hybrid binding-and-scheduling results.

    A schedule assigns every operation a device and a start offset inside
    its layer's sub-schedule. Only the {e fixed part} of a layer has a
    length in minutes; layers containing indeterminate operations end when
    the slowest of them really finishes (the paper writes this [+I_k]), so
    total assay time is [sum of fixed makespans + sum of I_k]. *)

open Microfluidics

type entry = {
  op : int;
  device : int;
  start : int;  (** minutes from the start of the layer's sub-schedule *)
  min_duration : int;
  transport : int;  (** post-execution reagent transport; the device is
                        monopolised for [min_duration + transport] *)
  indeterminate : bool;
}

type layer_schedule = {
  layer_index : int;
  entries : entry list;  (** ascending start order *)
  fixed_makespan : int;  (** max over entries of start + min_duration + transport *)
}

type t = {
  assay : Assay.t;
  rule : Binding.rule;
  layering : Layering.t;
  chip : Chip.t;
  layers : layer_schedule array;
  transport_times : Transport.t;
}

val make :
  assay:Assay.t ->
  rule:Binding.rule ->
  layering:Layering.t ->
  chip:Chip.t ->
  layers:layer_schedule array ->
  transport_times:Transport.t ->
  t

val binding : t -> int -> int option
(** Device id an operation is bound to. *)

val entry_of_op : t -> int -> entry option
val total_fixed_minutes : t -> int
val device_count : t -> int
val path_count : t -> int
val indeterminate_tail : t -> int -> int list
(** Indeterminate ops ending the given layer (their [I] terms). *)

type breakdown = {
  fixed_minutes : int;
  devices : int;
  paths : int;
  area : int;
  processing : int;
  weighted : int;
}

type weights = { w_time : int; w_area : int; w_processing : int; w_paths : int }

val default_weights : weights
(** [{w_time = 100; w_area = 150; w_processing = 150; w_paths = 200}] — the
    paper's user-adjustable [C_t, C_a, C_pr, C_p], calibrated so one minute
    of assay time trades against realistic device-integration and routing
    costs (a new ring must buy roughly half an hour; a new flow channel,
    two minutes). *)

val evaluate : ?weights:weights -> Cost.t -> t -> breakdown

val validate : t -> (unit, string) result
(** Full semantic check of a synthesis result:
    - every operation appears exactly once, inside its layer;
    - bindings satisfy the schedule's binding rule;
    - in-layer dependencies respect execution + transportation times (9);
    - no two operations overlap on a device, transport included (10)–(13);
    - indeterminate operations close their sub-schedule: everything starts
      no later than their minimum end (14), nothing else uses their device
      afterwards, and no two share a device;
    - the chip inventory contains every bound device and a path for every
      inter-device reagent transfer (21). *)

val pp : Format.formatter -> t -> unit
