type comparison_row = {
  testcase : string;
  op_count : int;
  indeterminate_count : int;
  conventional : Synthesis.result;
  ours : Synthesis.result;
}

let indet_layer_suffix (r : Synthesis.result) =
  let layers = r.Synthesis.final.Schedule.layers in
  let buf = Buffer.create 8 in
  Array.iter
    (fun (l : Schedule.layer_schedule) ->
      let has_indet =
        List.exists (fun (e : Schedule.entry) -> e.Schedule.indeterminate) l.Schedule.entries
      in
      if has_indet then
        Buffer.add_string buf (Printf.sprintf "+I%d" (l.Schedule.layer_index + 1)))
    layers;
  Buffer.contents buf

let exe_time_string r =
  Printf.sprintf "%dm%s" r.Synthesis.final_breakdown.Schedule.fixed_minutes
    (indet_layer_suffix r)

let runtime_string seconds =
  if seconds >= 60.0 then
    Printf.sprintf "%dm%.0fs" (int_of_float seconds / 60) (Float.rem seconds 60.0)
  else Printf.sprintf "%.3fs" seconds

let table2 fmt rows =
  Format.fprintf fmt
    "@[<v>Table 2: Synthesis Results for Bioassays@,\
     %-14s %5s %8s | %-12s %4s %4s %10s@,"
    "Testcase" "#Op" "#Ind.Op" "Exe.Time" "#D." "#P." "Runtime";
  Format.fprintf fmt "%s@," (String.make 66 '-');
  let emit row =
    let line tag (r : Synthesis.result) =
      Format.fprintf fmt "%-14s %5d %8d | %-12s %4d %4d %10s  (%s)@," row.testcase
        row.op_count row.indeterminate_count (exe_time_string r)
        r.Synthesis.final_breakdown.Schedule.devices
        r.Synthesis.final_breakdown.Schedule.paths
        (runtime_string r.Synthesis.runtime_seconds)
        tag
    in
    line "Conv." row.conventional;
    line "Our" row.ours;
    Format.fprintf fmt "%s@," (String.make 66 '-')
  in
  List.iter emit rows;
  Format.fprintf fmt "@]"

let table3 fmt entries =
  Format.fprintf fmt
    "@[<v>Table 3: Improvement from Progressive Re-Synthesis@,\
     %-12s %-10s %10s %10s %10s@," "Testcase" "Metric" "Initial" "Ite."
    "Improve";
  Format.fprintf fmt "%s@," (String.make 58 '-');
  let emit (name, (r : Synthesis.result)) =
    let iters = r.Synthesis.iterations in
    let history = Synthesis.improvement_history r in
    let time_cells =
      List.map
        (fun (it : Synthesis.iteration) ->
          Printf.sprintf "%dm" it.Synthesis.breakdown.Schedule.fixed_minutes)
        iters
    in
    let dev_cells =
      List.map
        (fun (it : Synthesis.iteration) ->
          string_of_int it.Synthesis.breakdown.Schedule.devices)
        iters
    in
    let impr_cells =
      "-" :: List.map (fun (_, f) -> Printf.sprintf "%.2f%%" (100.0 *. f)) history
    in
    let row metric cells imprs =
      Format.fprintf fmt "%-12s %-10s" name metric;
      List.iter2
        (fun c i -> Format.fprintf fmt " %8s %8s" c i)
        cells imprs;
      Format.fprintf fmt "@,"
    in
    row "Exe.Time" time_cells impr_cells;
    row "#D." dev_cells (List.map (fun _ -> "") dev_cells);
    Format.fprintf fmt "%s@," (String.make 58 '-')
  in
  List.iter emit entries;
  Format.fprintf fmt "@]"

let schedule_summary fmt (r : Synthesis.result) =
  let b = r.Synthesis.final_breakdown in
  Format.fprintf fmt
    "@[<v>%s, %s rule: %d layers, fixed time %dm%s, %d devices, %d paths,@ \
     area %d, processing %d, weighted objective %d, %d re-synthesis \
     iteration(s), runtime %s@]"
    (Microfluidics.Assay.name r.Synthesis.final.Schedule.assay)
    (Binding.rule_name r.Synthesis.config.Synthesis.rule)
    (Array.length r.Synthesis.final.Schedule.layers)
    b.Schedule.fixed_minutes (indet_layer_suffix r) b.Schedule.devices
    b.Schedule.paths b.Schedule.area b.Schedule.processing b.Schedule.weighted
    (List.length r.Synthesis.iterations)
    (runtime_string r.Synthesis.runtime_seconds)
