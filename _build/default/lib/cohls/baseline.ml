let run ?config assay =
  let base =
    match config with
    | None -> Synthesis.conventional_config
    | Some c -> c
  in
  (* The conventional method predates the paper's contribution III: it does
     not optimise the number of transportation paths, so the routing-effort
     weight is zeroed alongside forcing the exact-signature binding rule. *)
  let config =
    {
      base with
      Synthesis.rule = Binding.Exact_signature;
      weights = { base.Synthesis.weights with Schedule.w_paths = 0 };
    }
  in
  Synthesis.run ~config assay
