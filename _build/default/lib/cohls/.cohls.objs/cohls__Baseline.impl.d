lib/cohls/baseline.ml: Binding Schedule Synthesis
