lib/cohls/baseline.mli: Microfluidics Synthesis
