lib/cohls/binding.mli: Components Device Microfluidics Operation
