lib/cohls/layering.mli: Assay Format Microfluidics
