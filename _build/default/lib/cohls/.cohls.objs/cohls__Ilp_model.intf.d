lib/cohls/ilp_model.mli: Binding Cost Device Flowgraph Layering Lp Microfluidics Operation Schedule
