lib/cohls/transport.ml: Array Format Hashtbl List Microfluidics
