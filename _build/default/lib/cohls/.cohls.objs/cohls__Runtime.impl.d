lib/cohls/runtime.ml: Array Assay List Microfluidics Operation Printf Schedule Stdlib
