lib/cohls/ilp_model.ml: Array Binding Capacity Components Container Cost Device Float Flowgraph Fun Hashtbl Layering List Lp Microfluidics Numeric Operation Printf Schedule
