lib/cohls/list_scheduler.ml: Array Binding Cost Device Flowgraph Hashtbl Layering List Microfluidics Operation Schedule
