lib/cohls/schedule.ml: Array Assay Binding Chip Flowgraph Format Layering List Microfluidics Operation Option Printf String Transport
