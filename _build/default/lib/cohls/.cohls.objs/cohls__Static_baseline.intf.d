lib/cohls/static_baseline.mli: Assay Microfluidics Schedule Synthesis
