lib/cohls/schedule.mli: Assay Binding Chip Cost Format Layering Microfluidics Transport
