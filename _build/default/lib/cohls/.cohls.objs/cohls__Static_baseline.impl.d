lib/cohls/static_baseline.ml: Array Assay Components Flowgraph Hashtbl List Microfluidics Operation Schedule Synthesis
