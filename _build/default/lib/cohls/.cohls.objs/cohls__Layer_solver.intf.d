lib/cohls/layer_solver.mli: Binding Cost Device Flowgraph Layering Lp Microfluidics Operation Schedule
