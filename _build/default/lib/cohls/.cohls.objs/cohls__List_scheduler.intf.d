lib/cohls/list_scheduler.mli: Binding Cost Device Flowgraph Layering Microfluidics Operation Schedule
