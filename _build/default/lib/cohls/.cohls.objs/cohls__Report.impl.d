lib/cohls/report.ml: Array Binding Buffer Float Format List Microfluidics Printf Schedule String Synthesis
