lib/cohls/synthesis.ml: Array Assay Binding Chip Cost Device Flowgraph Hashtbl Layer_solver Layering Layout List Microfluidics Schedule Transport Unix
