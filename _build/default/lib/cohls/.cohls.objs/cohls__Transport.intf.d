lib/cohls/transport.mli: Format Microfluidics
