lib/cohls/layer_solver.ml: Array Binding Cost Device Flowgraph Ilp_model Layering List List_scheduler Lp Microfluidics Operation Option Schedule
