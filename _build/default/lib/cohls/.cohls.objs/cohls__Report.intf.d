lib/cohls/report.mli: Format Synthesis
