lib/cohls/runtime.mli: Microfluidics Schedule
