lib/cohls/layering.ml: Array Assay Flowgraph Format Fun Hashtbl Int List Microfluidics Operation Printf Set String
