lib/cohls/binding.ml: Components Device Microfluidics Operation
