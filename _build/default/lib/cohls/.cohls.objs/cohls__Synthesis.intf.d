lib/cohls/synthesis.mli: Assay Binding Cost Layer_solver Layering Microfluidics Schedule Transport
