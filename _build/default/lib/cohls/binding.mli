(** Operation-to-device binding rules.

    [Component_oriented] is the paper's contribution: an operation fits any
    device whose container/capacity match and whose accessories are a
    superset of the requirement, so devices are shared across operation
    "types". [Exact_signature] is the modified conventional method used as
    the baseline in §5: operations and devices are classified by their
    component requirements, and binding demands an exact class match. *)

open Microfluidics

type rule = Component_oriented | Exact_signature

val rule_name : rule -> string

val op_fits : rule -> Operation.t -> Device.t -> bool

val resolved_container : Operation.t -> Components.Container.t
(** The container actually instantiated for an unspecified requirement:
    the cheapest compatible one (a chamber unless the capacity class forces
    a ring). *)

val resolved_capacity : Operation.t -> Components.Capacity.t
(** Specified class, or the cheapest class allowed by the resolved
    container. *)

val minimal_device : Operation.t -> id:int -> Device.t
(** Cheapest device able to execute the operation; what a synthesiser
    instantiates when no existing device fits. *)

val device_subsumes : Device.t -> Device.t -> bool
(** [device_subsumes big small]: every operation that fits [small] also fits
    [big] under the component-oriented rule. *)
