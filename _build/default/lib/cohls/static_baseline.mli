(** The fully static strawman the paper's hybrid scheduling replaces.

    Classical synthesis puts every operation in a fixed time slot, treating
    indeterminate durations as if they were their minimum. This module
    builds that schedule (one layer, indeterminacy ignored) and quantifies
    its fragility: how many fixed slots break when an indeterminate
    operation overruns its minimum. A hybrid schedule's exposure inside a
    layer is zero by construction (constraint (14)); overruns only shift
    whole layer boundaries, which the cyber-physical controller handles. *)

open Microfluidics

type exposure = {
  exposed_slots : int;
      (** operations whose start lies after some indeterminate operation's
          minimum end — their slots are invalid as soon as that operation
          overruns *)
  total_slots : int;
  worst_chain : int;
      (** the largest number of slots invalidated by one single
          indeterminate operation *)
}

val static_schedule :
  ?config:Synthesis.config -> Assay.t -> Schedule.t
(** Synthesise with indeterminacy erased (every indeterminate duration
    becomes fixed at its minimum): the one-layer fixed-slot schedule a
    conventional flow would produce. The result deliberately fails
    {!Schedule.validate} on assays with indeterminate operations whenever a
    fixed slot sits after an indeterminate minimum end — that failure is
    the point. *)

val exposure_of : Schedule.t -> original:Assay.t -> exposure
(** Count the broken-slot exposure of a schedule against the original assay
    (whose indeterminacy information is intact). *)

val compare_hybrid : ?config:Synthesis.config -> Assay.t -> exposure * exposure
(** [(static, hybrid)] exposure for the same assay: the static strawman vs
    {!Synthesis.run}'s hybrid schedule. *)
