type progression = { min_term : int; max_term : int; term_count : int }

let default_progression = { min_term = 2; max_term = 10; term_count = 5 }

let validate p =
  if p.term_count < 1 then invalid_arg "Transport: term_count must be >= 1";
  if p.min_term < 0 || p.max_term < p.min_term then
    invalid_arg "Transport: need 0 <= min_term <= max_term"

let term p k =
  validate p;
  let k = max 0 (min (p.term_count - 1) k) in
  if p.term_count = 1 then p.min_term
  else p.min_term + (k * (p.max_term - p.min_term) / (p.term_count - 1))

type t = int array

let constant ~op_count t0 =
  if t0 < 0 then invalid_arg "Transport.constant: negative time";
  Array.make op_count t0

let of_times times =
  Array.iter (fun t -> if t < 0 then invalid_arg "Transport.of_times: negative time") times;
  Array.copy times

let time t op = t.(op)

let key a b = (min a b, max a b)

(* Shared skeleton: [path_time] prices one inter-device pair. *)
let refine_with ~op_count ~binding ~children ~path_time ~slowest =
  let times = Array.make op_count slowest in
  for op = 0 to op_count - 1 do
    match binding op with
    | None -> ()
    | Some dev ->
      let kids = children op in
      let child_time acc c =
        match binding c with
        | None -> acc
        | Some dev' ->
          if dev = dev' then acc (* same device: free *)
          else max acc (path_time (key dev dev'))
      in
      let t = List.fold_left child_time 0 kids in
      times.(op) <- t
  done;
  times

let refine p ~op_count ~binding ~children ~path_usage =
  validate p;
  let npaths = List.length path_usage in
  let rank_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (pair, _) -> Hashtbl.replace tbl pair i) path_usage;
    tbl
  in
  (* Usage rank 0 (most used) -> shortest term; the ranks are spread evenly
     over the progression terms. *)
  let path_time pair =
    match Hashtbl.find_opt rank_of pair with
    | None -> term p (p.term_count - 1)
    | Some r ->
      let bucket = if npaths <= 1 then 0 else r * p.term_count / npaths in
      term p bucket
  in
  refine_with ~op_count ~binding ~children ~path_time
    ~slowest:(term p (p.term_count - 1))

let of_layout p ~op_count ~binding ~children ~layout =
  validate p;
  let max_len =
    List.fold_left (fun acc (_, l) -> max acc l) 1 layout.Microfluidics.Layout.lengths
  in
  let path_time (a, b) =
    match Microfluidics.Layout.path_length layout a b with
    | None -> term p (p.term_count - 1)
    | Some len ->
      let bucket = (len - 1) * p.term_count / max_len in
      term p bucket
  in
  refine_with ~op_count ~binding ~children ~path_time
    ~slowest:(term p (p.term_count - 1))

let pp fmt t =
  Format.fprintf fmt "@[<h>transport[";
  Array.iteri (fun i x -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") x) t;
  Format.fprintf fmt "]@]"
