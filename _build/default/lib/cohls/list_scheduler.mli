(** Greedy priority-list scheduler and binder for one layer.

    Serves two roles: (a) the scalable engine for large layers — the paper's
    monolithic per-layer ILP is only practical on small instances without a
    commercial solver — and (b) the warm-start incumbent handed to
    {!Layer_solver}'s branch-and-bound.

    Determinate operations are placed in dependency order. For each one the
    candidates are every compatible device plus — while the device cap
    allows — a brand-new minimal device; the winner minimises the same
    weighted trade the ILP objective makes:
    [w_time * start + integration cost of a new device + w_paths if off the
    parent's device]. Indeterminate operations are placed last on distinct
    devices and pushed late enough that every other operation starts before
    their minimum end (constraint (14)). *)

open Microfluidics

exception No_device of int
(** Raised with the operation id when no compatible device exists and the
    device cap is exhausted. *)

type config = {
  rule : Binding.rule;
  max_devices : int;  (** the paper's |D| cap, 25 in the experiments *)
  cost : Cost.t;
  weights : Schedule.weights;
  device_penalty : int -> int;
      (** extra weighted score charged on the {e first} use of a device in
          the current pass — the re-synthesis driver prices a layer's own
          previous-iteration devices (the [D'_i] of §3.2) at their
          integration cost so the layer re-justifies them against devices
          other layers pay for; [fun _ -> 0] otherwise *)
}

type outcome = {
  entries : Schedule.entry list;  (** ascending start *)
  fixed_makespan : int;
  created : Device.t list;  (** freshly instantiated devices *)
}

val schedule_layer :
  config ->
  ops:Operation.t array ->
  graph:Flowgraph.Digraph.t ->
  layer:Layering.layer ->
  layer_of_op:int array ->
  bound_before:(int -> int option) ->
  available:Device.t list ->
  transport:(int -> int) ->
  existing_paths:(int * int) list ->
  fresh_id:(unit -> int) ->
  outcome
(** [ops] and [graph] describe the whole assay; only operations listed in
    [layer] are scheduled. [bound_before] reports devices of operations from
    earlier layers (for routing-effort pricing of cross-layer transfers);
    [existing_paths] are already-routed device pairs (reuse is free);
    [transport] gives each operation's reagent transportation time (§4.1);
    [fresh_id] allocates device ids. *)
