open Microfluidics
module G = Flowgraph.Digraph

exception No_device of int

type config = {
  rule : Binding.rule;
  max_devices : int;
  cost : Cost.t;
  weights : Schedule.weights;
  device_penalty : int -> int;
}

type outcome = {
  entries : Schedule.entry list;
  fixed_makespan : int;
  created : Device.t list;
}

type device_state = {
  device : Device.t;
  mutable busy : (int * int) list; (* disjoint, ascending *)
  mutable closed : bool; (* an indeterminate op occupies it to layer end *)
}

(* Earliest start >= ready where [len] minutes fit between busy intervals. *)
let earliest_fit st ~ready ~len =
  let rec go t = function
    | [] -> t
    | (s, e) :: rest -> if t + len <= s then t else go (max t e) rest
  in
  go ready st.busy

let occupy st ~start ~len =
  let rec insert = function
    | [] -> [ (start, start + len) ]
    | ((s, _) as iv) :: rest ->
      if start < s then (start, start + len) :: iv :: rest else iv :: insert rest
  in
  st.busy <- insert st.busy

let last_busy_end st = List.fold_left (fun acc (_, e) -> max acc e) 0 st.busy

let schedule_layer cfg ~ops ~graph ~layer ~layer_of_op ~bound_before ~available
    ~transport ~existing_paths ~fresh_id =
  let paths = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace paths p ()) existing_paths;
  let path_known a b = a = b || Hashtbl.mem paths (min a b, max a b) in
  let note_path a b = if a <> b then Hashtbl.replace paths (min a b, max a b) () in
  let in_layer = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_layer v ()) layer.Layering.ops;
  let states = ref (List.map (fun d -> { device = d; busy = []; closed = false }) available) in
  let created = ref [] in
  let starts = Hashtbl.create 16 in
  (* ready time: in-layer parents impose finish + transport; parents from
     earlier layers finished before the boundary but their reagents still
     travel at the start of this layer *)
  let ready v =
    let parent acc p =
      if Hashtbl.mem in_layer p then begin
        match Hashtbl.find_opt starts p with
        | Some s -> max acc (s + Operation.min_duration ops.(p) + transport p)
        | None -> acc (* scheduled later: impossible in topological order *)
      end
      else if layer_of_op.(p) < layer.Layering.index then max acc (transport p)
      else acc
    in
    List.fold_left parent 0 (G.pred graph v)
  in
  let device_of_op = Hashtbl.create 16 in
  (* Pick the best (state, start) for operation v. Mirrors the ILP
     objective: the weighted score trades start time against the
     integration cost of a brand-new device and a unit of routing effort
     for leaving a parent's device; smallest
     (score, not-parent-device, fresh, id) wins. A new minimal device is a
     candidate whenever the cap allows, so the w_time/w_area balance — not
     mere compatibility — decides between reuse and parallelism. *)
  let w = cfg.weights in
  let pick v ~ready ~len ~closing =
    let o = ops.(v) in
    let parents_devs =
      List.filter_map
        (fun p ->
          match Hashtbl.find_opt device_of_op p with
          | Some d -> Some d
          | None -> bound_before p)
        (G.pred graph v)
    in
    (* routing effort of binding v to device [dev]: one unit per parent
       whose reagents would cross a device pair not yet routed (21) *)
    let new_paths_to dev =
      List.fold_left
        (fun acc dp -> if path_known dp dev then acc else acc + 1)
        0 parents_devs
    in
    let score ~start ~new_cost ~dev_for_paths =
      (w.Schedule.w_time * start) + new_cost
      + (w.Schedule.w_paths * new_paths_to dev_for_paths)
    in
    let candidate st =
      if st.closed || not (Binding.op_fits cfg.rule o st.device) then None
      else begin
        let start =
          if closing then max ready (last_busy_end st)
          else earliest_fit st ~ready ~len
        in
        let on_parent = List.mem st.device.Device.id parents_devs in
        let pen = if st.busy = [] then cfg.device_penalty st.device.Device.id else 0 in
        let key =
          (score ~start ~new_cost:pen ~dev_for_paths:st.device.Device.id,
           (if on_parent then 0 else 1), 0, st.device.Device.id)
        in
        Some (key, `Existing st, start)
      end
    in
    let existing = List.filter_map candidate !states in
    let fresh_candidate =
      if List.length !states >= cfg.max_devices then []
      else begin
        let d = Binding.minimal_device o ~id:max_int (* id assigned on commit *) in
        let new_cost =
          (w.Schedule.w_area * Cost.device_area cfg.cost d)
          + (w.Schedule.w_processing * Cost.device_processing cfg.cost d)
          (* a fresh device is connected to no parent yet *)
          + (w.Schedule.w_paths * List.length (List.sort_uniq compare parents_devs))
        in
        [ (((w.Schedule.w_time * ready) + new_cost, 1, 1, max_int), `Fresh, ready) ]
      end
    in
    let best =
      List.fold_left
        (fun acc ((key, _, _) as cand) ->
          match acc with
          | Some (key0, _, _) when key0 <= key -> acc
          | Some _ | None -> Some cand)
        None (existing @ fresh_candidate)
    in
    match best with
    | Some (_, `Existing st, start) -> (st, start)
    | Some (_, `Fresh, start) ->
      let d = Binding.minimal_device o ~id:(fresh_id ()) in
      let st = { device = d; busy = []; closed = false } in
      states := !states @ [ st ];
      created := d :: !created;
      (st, start)
    | None -> raise (No_device v)
  in
  let indet_ops = layer.Layering.indeterminate in
  (* dependency order restricted to the layer, then by priority *)
  let topo =
    let sub, old_of_new, new_of_old =
      Flowgraph.Dag.induced_subgraph graph ~keep:(Hashtbl.mem in_layer)
    in
    ignore new_of_old;
    List.map (fun nv -> old_of_new.(nv)) (Flowgraph.Dag.topological_order sub)
  in
  (* stable pass: process in topological order, but among simultaneously
     ready operations prefer long critical paths: sort topological levels *)
  let scheduled_entries = ref [] in
  let place v ~closing =
    let len = Operation.min_duration ops.(v) + transport v in
    let r = ready v in
    let st, start = pick v ~ready:r ~len ~closing in
    occupy st ~start ~len;
    if closing then st.closed <- true;
    Hashtbl.replace starts v start;
    Hashtbl.replace device_of_op v st.device.Device.id;
    List.iter
      (fun p ->
        match
          (match Hashtbl.find_opt device_of_op p with
           | Some d -> Some d
           | None -> bound_before p)
        with
        | Some dp -> note_path dp st.device.Device.id
        | None -> ())
      (G.pred graph v);
    scheduled_entries :=
      {
        Schedule.op = v;
        device = st.device.Device.id;
        start;
        min_duration = Operation.min_duration ops.(v);
        transport = transport v;
        indeterminate = Operation.is_indeterminate ops.(v);
      }
      :: !scheduled_entries
  in
  (* topological order is mandatory; earliest-fit placement backfills gaps
     left by longer operations, so no extra priority sorting is needed *)
  let det_sorted =
    List.filter (fun v -> not (Operation.is_indeterminate ops.(v))) topo
  in
  List.iter (fun v -> place v ~closing:false) det_sorted;
  (* indeterminate tail: distinct devices, last on each *)
  let indet_sorted =
    List.sort
      (fun a b -> compare (ready a, a) (ready b, b))
      indet_ops
  in
  List.iter (fun v -> place v ~closing:true) indet_sorted;
  (* constraint (14): every operation must start no later than each
     indeterminate operation's minimum end; delay indeterminate starts *)
  let max_start =
    Hashtbl.fold (fun _ s acc -> max acc s) starts 0
  in
  let bump e =
    if e.Schedule.indeterminate then begin
      let need = max_start - e.Schedule.min_duration in
      if e.Schedule.start < need then { e with Schedule.start = need } else e
    end
    else e
  in
  let entries = List.map bump !scheduled_entries in
  let entries =
    List.sort (fun a b -> compare (a.Schedule.start, a.Schedule.op) (b.Schedule.start, b.Schedule.op)) entries
  in
  let fixed_makespan =
    List.fold_left
      (fun acc e -> max acc (e.Schedule.start + e.Schedule.min_duration + e.Schedule.transport))
      0 entries
  in
  { entries; fixed_makespan; created = List.rev !created }
