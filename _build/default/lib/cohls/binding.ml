open Microfluidics

type rule = Component_oriented | Exact_signature

let rule_name = function
  | Component_oriented -> "component-oriented"
  | Exact_signature -> "exact-signature (conventional)"

let resolved_container (o : Operation.t) =
  match o.Operation.container with
  | Some c -> c
  | None -> begin
    (* A chamber is cheaper than a ring; only a large capacity forces a
       ring (constraints (3)-(4)). *)
    match o.Operation.capacity with
    | Some Components.Capacity.Large -> Components.Container.Ring
    | Some (Components.Capacity.Medium | Components.Capacity.Small | Components.Capacity.Tiny)
    | None ->
      Components.Container.Chamber
  end

let resolved_capacity (o : Operation.t) =
  match o.Operation.capacity with
  | Some cap -> cap
  | None -> begin
    match resolved_container o with
    | Components.Container.Ring -> Components.Capacity.Small
    | Components.Container.Chamber -> Components.Capacity.Tiny
  end

let minimal_device (o : Operation.t) ~id =
  Device.make ~id ~container:(resolved_container o)
    ~capacity:(resolved_capacity o)
    ~accessories:(Components.Accessory.Set.elements o.Operation.accessories)

let op_fits rule (o : Operation.t) (d : Device.t) =
  match rule with
  | Component_oriented -> Operation.compatible_with_device o d
  | Exact_signature ->
    (* The conventional pseudo-type of an operation is its resolved minimal
       configuration; a device executes only operations of its own type. *)
    Components.Container.equal (resolved_container o) d.Device.container
    && Components.Capacity.equal (resolved_capacity o) d.Device.capacity
    && Components.Accessory.Set.equal o.Operation.accessories d.Device.accessories

let device_subsumes (big : Device.t) (small : Device.t) =
  Components.Container.equal big.Device.container small.Device.container
  && Components.Capacity.equal big.Device.capacity small.Device.capacity
  && Components.Accessory.Set.subset small.Device.accessories big.Device.accessories
