(** Hybrid-schedule execution (the cyber-physical side of the paper).

    A hybrid schedule fixes everything except the real durations of
    indeterminate operations. This executor replays a synthesis result as a
    discrete-event simulation: layers run back to back; inside a layer every
    operation keeps its scheduled offset; the layer ends when its fixed part
    is over {e and} every indeterminate operation has really finished, the
    actual durations being drawn from a pluggable oracle (a lab instrument,
    a human observer — here a function). This is the substitute for the
    paper's cyber-physical integration, exercising exactly the
    layer-boundary decision points the layering algorithm creates. *)

type oracle = int -> int
(** [oracle op] is the {e actual} duration of indeterminate operation [op];
    it must be at least the operation's minimum duration. *)

val deterministic_oracle : extra:int -> Microfluidics.Assay.t -> oracle
(** Every indeterminate operation takes [min + extra]. *)

val seeded_oracle : seed:int -> max_extra:int -> Microfluidics.Assay.t -> oracle
(** Pseudo-random extra in [0 .. max_extra], reproducible for a seed
    (deterministic per (seed, op)). *)

val retry_oracle :
  seed:int ->
  success_probability:float ->
  attempt_minutes:int ->
  Microfluidics.Assay.t ->
  oracle
(** The paper's motivating indeterminacy model: a single-cell capture
    succeeds with fixed probability per attempt (~53% in reference [11]),
    the outcome is checked optically and failed captures rerun, so the
    duration is [attempts * attempt_minutes] with geometrically distributed
    attempts (deterministic per (seed, op); at least the operation's
    minimum duration; attempts capped at 50).
    @raise Invalid_argument unless [0 < success_probability <= 1] and
    [attempt_minutes > 0]. *)

type event = {
  time : int;  (** absolute assay time, minutes *)
  op : int;
  device : int;
  kind : [ `Start | `Finish ];
}

type trace = {
  events : event list;  (** ascending time *)
  layer_boundaries : (int * int) list;  (** (layer index, absolute end time) *)
  total_minutes : int;
  waits : (int * int) list;
      (** per layer: extra minutes spent past the fixed part waiting for
          indeterminate operations (the realised I_k of the paper) *)
}

val execute : Schedule.t -> oracle -> (trace, string) result
(** Fails when the oracle returns less than an operation's minimum
    duration. *)
