(* End-to-end synthesis tests: the full flow on the paper's three test
   cases, the conventional baseline comparison (Table 2's qualitative
   claims), progressive re-synthesis (Table 3's shape) and the report
   renderers. *)

open Microfluidics
module Syn = Cohls.Synthesis

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let breakdown (r : Syn.result) = r.Syn.final_breakdown

(* memoise the expensive runs: the three cases, ours and conventional *)
let case1 = lazy (Assays.Kinase.testcase ())
let case2 = lazy (Assays.Gene_expression.testcase ())
let case3 = lazy (Assays.Rt_qpcr.testcase ())
let ours1 = lazy (Syn.run (Lazy.force case1))
let ours2 = lazy (Syn.run (Lazy.force case2))
let ours3 = lazy (Syn.run (Lazy.force case3))
let conv1 = lazy (Cohls.Baseline.run (Lazy.force case1))
let conv2 = lazy (Cohls.Baseline.run (Lazy.force case2))
let conv3 = lazy (Cohls.Baseline.run (Lazy.force case3))

let all_cases =
  [ ("case1", ours1, conv1); ("case2", ours2, conv2); ("case3", ours3, conv3) ]

let test_all_schedules_validate () =
  List.iter
    (fun (name, ours, conv) ->
      (match Cohls.Schedule.validate (Lazy.force ours).Syn.final with
       | Ok () -> ()
       | Error e -> Alcotest.fail (name ^ " ours: " ^ e));
      match Cohls.Schedule.validate (Lazy.force conv).Syn.final with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ " conv: " ^ e))
    all_cases

let test_table2_time_shape () =
  (* the paper's headline: our method beats the modified conventional
     method on execution time in every test case *)
  List.iter
    (fun (name, ours, conv) ->
      let o = (breakdown (Lazy.force ours)).Cohls.Schedule.fixed_minutes in
      let c = (breakdown (Lazy.force conv)).Cohls.Schedule.fixed_minutes in
      check bool (name ^ ": ours faster") true (o < c))
    all_cases

let test_table2_device_shape () =
  (* never more devices than the conventional method *)
  List.iter
    (fun (name, ours, conv) ->
      let o = (breakdown (Lazy.force ours)).Cohls.Schedule.devices in
      let c = (breakdown (Lazy.force conv)).Cohls.Schedule.devices in
      check bool (name ^ ": ours <= conv + 1 devices") true (o <= c + 1);
      check bool (name ^ ": within |D| = 25") true (o <= 25 && c <= 25))
    all_cases

let test_table2_path_shape () =
  (* fewer transportation paths (contribution III) *)
  List.iter
    (fun (name, ours, conv) ->
      let o = (breakdown (Lazy.force ours)).Cohls.Schedule.paths in
      let c = (breakdown (Lazy.force conv)).Cohls.Schedule.paths in
      check bool (name ^ ": ours fewer paths") true (o < c))
    all_cases

let test_case3_factor () =
  (* paper: case 3 time reduced to 81.7%; accept anything clearly below 95% *)
  let o = float_of_int (breakdown (Lazy.force ours3)).Cohls.Schedule.fixed_minutes in
  let c = float_of_int (breakdown (Lazy.force conv3)).Cohls.Schedule.fixed_minutes in
  check bool "substantial case-3 reduction" true (o /. c < 0.95)

let test_indeterminate_layer_suffixes () =
  (* case 1 has no +I terms, case 2 one, case 3 two *)
  let suffixes r =
    let s = Cohls.Report.exe_time_string r in
    List.length (String.split_on_char 'I' s) - 1
  in
  check int_t "case1 no I" 0 (suffixes (Lazy.force ours1));
  check int_t "case2 one I" 1 (suffixes (Lazy.force ours2));
  check int_t "case3 two I" 2 (suffixes (Lazy.force ours3))

let test_resynthesis_improves () =
  (* Table 3: the first re-synthesis iteration improves execution time
     substantially; the history is monotonically decreasing *)
  List.iter
    (fun (name, r) ->
      let r = Lazy.force r in
      let times =
        List.map
          (fun (it : Syn.iteration) -> it.Syn.breakdown.Cohls.Schedule.fixed_minutes)
          r.Syn.iterations
      in
      check bool (name ^ ": at least one improving iteration") true
        (List.length times >= 2);
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a > b && decreasing rest
        | [ _ ] | [] -> true
      in
      check bool (name ^ ": monotone") true (decreasing times);
      match Syn.improvement_history r with
      | (_, first) :: _ -> check bool (name ^ ": first gain >= 5%") true (first >= 0.05)
      | [] -> Alcotest.fail (name ^ ": empty history"))
    [ ("case2", ours2); ("case3", ours3) ]

let test_resynthesis_devices_stable () =
  (* Table 3 also reports #D constant across iterations (0% change);
     we allow small drift but no explosion *)
  List.iter
    (fun (name, r) ->
      let r = Lazy.force r in
      let devs =
        List.map
          (fun (it : Syn.iteration) -> it.Syn.breakdown.Cohls.Schedule.devices)
          r.Syn.iterations
      in
      let mn = List.fold_left min max_int devs and mx = List.fold_left max 0 devs in
      check bool (name ^ ": device count stable (+-2)") true (mx - mn <= 2))
    [ ("case2", ours2); ("case3", ours3) ]

let test_weighted_objective_never_degrades () =
  List.iter
    (fun (_, r, _) ->
      let r = Lazy.force r in
      let ws =
        List.map
          (fun (it : Syn.iteration) -> it.Syn.breakdown.Cohls.Schedule.weighted)
          r.Syn.iterations
      in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a > b && decreasing rest
        | [ _ ] | [] -> true
      in
      check bool "weighted objective strictly improves" true (decreasing ws))
    all_cases

let test_device_cap_respected () =
  (* case 2 needs 10 capture devices plus at least {s}, {h} and ring{p,h}
     devices: 14 is tight but feasible, 12 is impossible *)
  let cfg = { Syn.default_config with Syn.max_devices = 14 } in
  let r = Syn.run ~config:cfg (Lazy.force case2) in
  check bool "cap 14 respected" true ((breakdown r).Cohls.Schedule.devices <= 14);
  (match Cohls.Schedule.validate r.Syn.final with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let tiny = { Syn.default_config with Syn.max_devices = 12 } in
  try
    ignore (Syn.run ~config:tiny (Lazy.force case2));
    Alcotest.fail "expected No_device for cap 12"
  with Cohls.List_scheduler.No_device _ -> ()

let test_threshold_affects_layers () =
  let cfg = { Syn.default_config with Syn.threshold = 5 } in
  let r = Syn.run ~config:cfg (Lazy.force case2) in
  (* 10 indeterminate captures with threshold 5: at least 3 layers *)
  check bool "more layers" true (Array.length r.Syn.final.Cohls.Schedule.layers >= 3);
  match Cohls.Schedule.validate r.Syn.final with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_layout_refinement_mode () =
  let cfg = { Syn.default_config with Syn.refine_by_layout = true } in
  let r = Syn.run ~config:cfg (Lazy.force case1) in
  match Cohls.Schedule.validate r.Syn.final with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_invalid_assay_rejected () =
  let a = Assay.create ~name:"empty" in
  (try
     ignore (Syn.run a);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_baseline_forces_rule () =
  let r = Cohls.Baseline.run ~config:Syn.default_config (Lazy.force case1) in
  check bool "rule forced" true
    (r.Syn.config.Syn.rule = Cohls.Binding.Exact_signature);
  check int_t "paths weight zeroed" 0
    r.Syn.config.Syn.weights.Cohls.Schedule.w_paths

(* ---------- report rendering ---------- *)

let test_exe_time_string () =
  let s1 = Cohls.Report.exe_time_string (Lazy.force ours1) in
  check bool "case1 plain minutes" true
    (String.length s1 > 0 && not (String.contains s1 'I'));
  let s3 = Cohls.Report.exe_time_string (Lazy.force ours3) in
  check bool "case3 carries +I1+I2" true
    (let has sub =
       let n = String.length s3 and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s3 i m = sub || go (i + 1)) in
       go 0
     in
     has "+I1" && has "+I2")

let render f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_table2_renders () =
  let rows =
    [
      {
        Cohls.Report.testcase = "1 [10]";
        op_count = 16;
        indeterminate_count = 0;
        conventional = Lazy.force conv1;
        ours = Lazy.force ours1;
      };
    ]
  in
  let s = render (fun fmt -> Cohls.Report.table2 fmt rows) in
  check bool "mentions the testcase" true (String.length s > 100);
  check bool "has Conv. row" true
    (let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "Conv." && has "Our" && has "Table 2")

let test_table3_renders () =
  let s =
    render (fun fmt -> Cohls.Report.table3 fmt [ ("2 [7]", Lazy.force ours2) ])
  in
  check bool "has header and rows" true
    (let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "Table 3" && has "Exe.Time" && has "#D." && has "%")

let test_summary_renders () =
  let s = render (fun fmt -> Cohls.Report.schedule_summary fmt (Lazy.force ours1)) in
  check bool "mentions devices" true
    (let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "devices" && has "component-oriented")

let () =
  Alcotest.run "synthesis"
    [
      ( "table2-shape",
        [
          Alcotest.test_case "all schedules validate" `Slow test_all_schedules_validate;
          Alcotest.test_case "ours faster everywhere" `Slow test_table2_time_shape;
          Alcotest.test_case "device counts" `Slow test_table2_device_shape;
          Alcotest.test_case "fewer paths" `Slow test_table2_path_shape;
          Alcotest.test_case "case-3 factor" `Slow test_case3_factor;
          Alcotest.test_case "+I suffixes per case" `Slow test_indeterminate_layer_suffixes;
        ] );
      ( "table3-shape",
        [
          Alcotest.test_case "re-synthesis improves" `Slow test_resynthesis_improves;
          Alcotest.test_case "device counts stable" `Slow test_resynthesis_devices_stable;
          Alcotest.test_case "weighted objective monotone" `Slow
            test_weighted_objective_never_degrades;
        ] );
      ( "config",
        [
          Alcotest.test_case "device cap respected" `Slow test_device_cap_respected;
          Alcotest.test_case "threshold affects layers" `Slow test_threshold_affects_layers;
          Alcotest.test_case "layout refinement mode" `Slow test_layout_refinement_mode;
          Alcotest.test_case "invalid assay rejected" `Quick test_invalid_assay_rejected;
          Alcotest.test_case "baseline forces rule" `Slow test_baseline_forces_rule;
        ] );
      ( "report",
        [
          Alcotest.test_case "exe time string" `Slow test_exe_time_string;
          Alcotest.test_case "table 2 renders" `Slow test_table2_renders;
          Alcotest.test_case "table 3 renders" `Slow test_table3_renders;
          Alcotest.test_case "summary renders" `Slow test_summary_renders;
        ] );
    ]
