(* Tests for the control layer: valve derivation from a chip and actuation
   synthesis from hybrid schedules, including the switching-count
   comparison between binding rules. *)

open Microfluidics
open Components
module CL = Control.Control_layer
module Act = Control.Actuation

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let demo_chip () =
  let chip = Chip.create () in
  let mixer =
    Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump; Accessory.Sieve_valve ]
  in
  let chamber =
    Device.make ~id:1 ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Heating_pad; Accessory.Optical_system ]
  in
  Chip.add_device chip mixer;
  Chip.add_device chip chamber;
  Chip.note_transport chip ~src:0 ~dst:1;
  chip

let test_valve_derivation () =
  let layer = CL.of_chip (demo_chip ()) in
  (* mixer: 2 isolation + 3 peristaltic + 1 sieve; chamber: 2 isolation;
     path: 2 gates *)
  check int_t "valve count" (2 + 3 + 1 + 2 + 2) (CL.valve_count layer);
  check int_t "mixer valves" 6 (List.length (CL.valves_of_device layer 0));
  check int_t "chamber valves" 2 (List.length (CL.valves_of_device layer 1));
  check int_t "path gates" 2 (List.length (CL.valves_of_path layer 1 0));
  check int_t "signals: heater + optics" 2 (CL.signal_count layer);
  (* valve ids are dense and unique *)
  let ids = List.map (fun v -> v.CL.valve_id) (CL.valves layer) in
  check bool "dense ids" true (ids = List.init (List.length ids) Fun.id)

let test_empty_chip () =
  let layer = CL.of_chip (Chip.create ()) in
  check int_t "no valves" 0 (CL.valve_count layer);
  check int_t "no signals" 0 (CL.signal_count layer)

let synthesise_case assay =
  let r = Cohls.Synthesis.run assay in
  let layer = CL.of_chip r.Cohls.Synthesis.final.Cohls.Schedule.chip in
  (r, layer, Act.synthesise layer r.Cohls.Synthesis.final)

let test_actuation_small () =
  let a = Assay.create ~name:"t" in
  let x =
    Assay.add_operation a ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump ] ~duration:(Operation.Fixed 10) "mix"
  in
  let y =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(Operation.Fixed 5) "detect"
  in
  Assay.add_dependency a ~parent:x ~child:y;
  let r, layer, timeline = synthesise_case a in
  ignore layer;
  check bool "some events" true (Act.switch_count timeline > 0);
  check int_t "horizon = fixed minutes"
    (Cohls.Schedule.total_fixed_minutes r.Cohls.Synthesis.final)
    timeline.Act.horizon;
  match Act.validate timeline with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_actuation_validates_on_cases () =
  List.iter
    (fun assay ->
      let _, _, timeline = synthesise_case assay in
      match Act.validate timeline with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Assays.Kinase.testcase (); Assays.Gene_expression.base () ]

let test_switch_count_rule_comparison () =
  (* fewer transportation paths should show up as fewer gate switches *)
  let assay = Assays.Kinase.testcase () in
  let ours = Cohls.Synthesis.run assay in
  let conv = Cohls.Baseline.run assay in
  let count (r : Cohls.Synthesis.result) =
    let layer = CL.of_chip r.Cohls.Synthesis.final.Cohls.Schedule.chip in
    Act.switch_count (Act.synthesise layer r.Cohls.Synthesis.final)
  in
  check bool "ours needs no more switches" true (count ours <= count conv)

let test_actuation_unknown_device () =
  (* a control layer built from a DIFFERENT chip must be rejected *)
  let a = Assay.create ~name:"t" in
  ignore (Assay.add_operation a ~duration:(Operation.Fixed 5) "x");
  let r = Cohls.Synthesis.run a in
  let layer = CL.of_chip (Chip.create ()) in
  try
    ignore (Act.synthesise layer r.Cohls.Synthesis.final);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_events_sorted_and_alternating () =
  let _, _, timeline = synthesise_case (Assays.Gene_expression.base ()) in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a.Act.minute, a.Act.valve) <= (b.Act.minute, b.Act.valve) && sorted rest
    | [ _ ] | [] -> true
  in
  check bool "sorted" true (sorted timeline.Act.events);
  (* per valve: strict alternation, starting with an open *)
  let by_valve = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_valve e.Act.valve) in
      Hashtbl.replace by_valve e.Act.valve (e :: cur))
    timeline.Act.events;
  Hashtbl.iter
    (fun _ events ->
      let events = List.rev events in
      List.iteri
        (fun i e ->
          let expected = if i mod 2 = 0 then Act.Opened else Act.Closed in
          check bool "alternates" true (e.Act.state = expected))
        events;
      check bool "even count" true (List.length events mod 2 = 0))
    by_valve

let prop_actuation_validates_on_random =
  QCheck.Test.make ~name:"actuation timelines validate on random assays" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 99999) (int_range 2 18))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let params =
        { Assays.Random_assay.default_params with Assays.Random_assay.op_count = n }
      in
      let a = Assays.Random_assay.generate ~seed params in
      match Cohls.Synthesis.run a with
      | exception Cohls.List_scheduler.No_device _ -> QCheck.assume_fail ()
      | r ->
        let layer = CL.of_chip r.Cohls.Synthesis.final.Cohls.Schedule.chip in
        let timeline = Act.synthesise layer r.Cohls.Synthesis.final in
        Act.validate timeline = Ok ()
        && Act.switch_count timeline mod 2 = 0 (* every open has a close *))

let () =
  Alcotest.run "control"
    [
      ( "control-layer",
        [
          Alcotest.test_case "valve derivation" `Quick test_valve_derivation;
          Alcotest.test_case "empty chip" `Quick test_empty_chip;
        ] );
      ( "actuation",
        [
          Alcotest.test_case "small schedule" `Quick test_actuation_small;
          Alcotest.test_case "paper cases validate" `Quick
            test_actuation_validates_on_cases;
          Alcotest.test_case "switch count vs binding rule" `Quick
            test_switch_count_rule_comparison;
          Alcotest.test_case "unknown device rejected" `Quick
            test_actuation_unknown_device;
          Alcotest.test_case "sorted and alternating" `Quick
            test_events_sorted_and_alternating;
          QCheck_alcotest.to_alcotest prop_actuation_validates_on_random;
        ] );
    ]
