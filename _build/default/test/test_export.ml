(* Tests for the exporters: ASCII Gantt, Graphviz DOT and CSV. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let result = lazy (Cohls.Synthesis.run (Assays.Gene_expression.base ()))

let test_gantt_render () =
  let r = Lazy.force result in
  let s = Export.Gantt.render r.Cohls.Synthesis.final in
  check bool "non-empty" true (String.length s > 0);
  check bool "mentions each layer" true (contains s "layer 0" && contains s "layer 1");
  check bool "has device rows" true (contains s "d0");
  check bool "indeterminate tail drawn" true (String.contains s '~');
  (* one row per device per layer it appears in *)
  let lines = String.split_on_char '\n' s in
  check bool "multiple rows" true (List.length lines > 3)

let test_gantt_scaling () =
  let r = Lazy.force result in
  let fine = Export.Gantt.render ~minutes_per_cell:1 r.Cohls.Synthesis.final in
  let coarse = Export.Gantt.render ~minutes_per_cell:20 r.Cohls.Synthesis.final in
  check bool "finer is wider" true (String.length fine > String.length coarse);
  Alcotest.check_raises "zero cell width"
    (Invalid_argument "Gantt: minutes_per_cell must be >= 1") (fun () ->
      ignore (Export.Gantt.render ~minutes_per_cell:0 r.Cohls.Synthesis.final))

let test_gantt_layer () =
  let r = Lazy.force result in
  let s = Export.Gantt.render_layer r.Cohls.Synthesis.final 0 in
  check bool "layer 0 only" true (contains s "layer 0" && not (contains s "layer 1"));
  Alcotest.check_raises "bad layer" (Invalid_argument "Gantt.render_layer: unknown layer")
    (fun () -> ignore (Export.Gantt.render_layer r.Cohls.Synthesis.final 99))

let test_dot_chip () =
  let r = Lazy.force result in
  let s = Export.Dot.chip r.Cohls.Synthesis.final.Cohls.Schedule.chip in
  check bool "graph header" true (contains s "graph chip {");
  check bool "device node" true (contains s "d0 [label=");
  check bool "closes" true (contains s "}\n")

let test_dot_assay () =
  let a = Assays.Gene_expression.base () in
  let s = Export.Dot.assay a in
  check bool "digraph" true (contains s "digraph assay {");
  check bool "indeterminate shape" true (contains s "doubleoctagon");
  check bool "edge" true (contains s "o0 -> o1")

let test_dot_schedule () =
  let r = Lazy.force result in
  let s = Export.Dot.schedule r.Cohls.Synthesis.final in
  check bool "binding annotation" true (contains s "d");
  check bool "layer colour" true (contains s "fillcolor=")

let test_csv_schedule () =
  let r = Lazy.force result in
  let s = Export.Csv.schedule r.Cohls.Synthesis.final in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  check int_t "header + one row per op"
    (1 + Microfluidics.Assay.operation_count r.Cohls.Synthesis.final.Cohls.Schedule.assay)
    (List.length lines);
  check bool "header" true
    (List.hd lines = "layer,op,name,device,start,min_duration,transport,indeterminate")

let test_csv_quoting () =
  (* names with commas must be quoted *)
  let a = Microfluidics.Assay.create ~name:"q" in
  ignore
    (Microfluidics.Assay.add_operation a
       ~duration:(Microfluidics.Operation.Fixed 5) "mix, heat \"x\"");
  let r = Cohls.Synthesis.run a in
  let s = Export.Csv.schedule r.Cohls.Synthesis.final in
  check bool "quoted" true (contains s "\"mix, heat \"\"x\"\"\"")

let test_csv_paths_and_iterations () =
  let r = Lazy.force result in
  let p = Export.Csv.chip_paths r.Cohls.Synthesis.final.Cohls.Schedule.chip in
  check bool "paths header" true (contains p "device_a,device_b,usage");
  let i = Export.Csv.iterations r in
  check bool "iterations header" true (contains i "iteration,fixed_minutes");
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' i) in
  check int_t "one row per iteration"
    (1 + List.length r.Cohls.Synthesis.iterations)
    (List.length lines)

let prop_exporters_total_on_random =
  QCheck.Test.make ~name:"exporters are total on random assays" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 99999) (int_range 2 18))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let params =
        { Assays.Random_assay.default_params with Assays.Random_assay.op_count = n }
      in
      let a = Assays.Random_assay.generate ~seed params in
      match Cohls.Synthesis.run a with
      | exception Cohls.List_scheduler.No_device _ -> QCheck.assume_fail ()
      | r ->
        let s = r.Cohls.Synthesis.final in
        let gantt = Export.Gantt.render s in
        let dot = Export.Dot.schedule s in
        let csv = Export.Csv.schedule s in
        let csv_rows =
          List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv))
        in
        String.length gantt > 0
        && String.length dot > 0
        && csv_rows = 1 + Microfluidics.Assay.operation_count a)

let () =
  Alcotest.run "export"
    [
      ( "gantt",
        [
          Alcotest.test_case "render" `Quick test_gantt_render;
          Alcotest.test_case "scaling" `Quick test_gantt_scaling;
          Alcotest.test_case "single layer" `Quick test_gantt_layer;
        ] );
      ( "dot",
        [
          Alcotest.test_case "chip" `Quick test_dot_chip;
          Alcotest.test_case "assay" `Quick test_dot_assay;
          Alcotest.test_case "schedule" `Quick test_dot_schedule;
        ] );
      ( "csv",
        [
          Alcotest.test_case "schedule" `Quick test_csv_schedule;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "paths and iterations" `Quick test_csv_paths_and_iterations;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_exporters_total_on_random ]);
    ]
