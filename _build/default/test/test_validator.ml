(* Adversarial tests for the schedule validator: start from a known-valid
   synthesis result, corrupt it in every way the paper's constraints forbid,
   and check the validator rejects each corruption with a sensible message.
   This is what makes the "greedy/ILP schedules validate" properties
   meaningful. *)

open Microfluidics
module S = Cohls.Schedule

let check = Alcotest.check
let bool = Alcotest.bool

(* A small two-layer fixture: one indeterminate op gating a chain. *)
let fixture =
  lazy
    (let a = Assay.create ~name:"fixture" in
     let capture =
       Assay.add_operation a
         ~accessories:[ Components.Accessory.Cell_trap ]
         ~duration:(Operation.Indeterminate { min_minutes = 6 })
         "capture"
     in
     let lyse = Assay.add_operation a ~duration:(Operation.Fixed 10) "lyse" in
     let mix =
       Assay.add_operation a ~container:Components.Container.Ring
         ~accessories:[ Components.Accessory.Pump ] ~duration:(Operation.Fixed 20) "mix"
     in
     let detect =
       Assay.add_operation a
         ~accessories:[ Components.Accessory.Optical_system ]
         ~duration:(Operation.Fixed 5) "detect"
     in
     Assay.add_dependency a ~parent:capture ~child:lyse;
     Assay.add_dependency a ~parent:lyse ~child:mix;
     Assay.add_dependency a ~parent:mix ~child:detect;
     let r = Cohls.Synthesis.run a in
     (a, r.Cohls.Synthesis.final))

let valid () =
  let _, s = Lazy.force fixture in
  match S.validate s with
  | Ok () -> s
  | Error e -> Alcotest.failf "fixture invalid: %s" e

(* Rebuild a schedule with mutated layers (chip and metadata unchanged). *)
let with_layers (s : S.t) layers =
  S.make ~assay:s.S.assay ~rule:s.S.rule ~layering:s.S.layering ~chip:s.S.chip
    ~layers ~transport_times:s.S.transport_times

let map_entries f (s : S.t) =
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        { l with S.entries = List.map (f l.S.layer_index) l.S.entries })
      s.S.layers
  in
  with_layers s layers

let expect_invalid name mutated =
  match S.validate mutated with
  | Ok () -> Alcotest.failf "%s: corruption not detected" name
  | Error msg -> check bool (name ^ " mentions something") true (String.length msg > 0)

let test_fixture_is_valid () = ignore (valid ())

let test_missing_entry () =
  let s = valid () in
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        { l with S.entries = List.filter (fun e -> e.S.op <> 3) l.S.entries })
      s.S.layers
  in
  expect_invalid "missing op" (with_layers s layers)

let test_duplicate_entry () =
  let s = valid () in
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        match l.S.entries with
        | e :: _ when l.S.layer_index = 1 -> { l with S.entries = e :: l.S.entries }
        | _ -> l)
      s.S.layers
  in
  expect_invalid "duplicate op" (with_layers s layers)

let test_negative_start () =
  let s = valid () in
  expect_invalid "negative start"
    (map_entries (fun _ e -> if e.S.op = 1 then { e with S.start = -1 } else e) s)

let test_dependency_violation () =
  let s = valid () in
  (* mix (op 2) depends on lyse (op 1): force mix to start at lyse's start *)
  let lyse_start =
    match S.entry_of_op s 1 with Some e -> e.S.start | None -> Alcotest.fail "no lyse"
  in
  expect_invalid "dependency"
    (map_entries (fun _ e -> if e.S.op = 2 then { e with S.start = lyse_start } else e) s)

let test_device_conflict () =
  let s = valid () in
  (* put detect on lyse's device at lyse's start *)
  let lyse =
    match S.entry_of_op s 1 with Some e -> e | None -> Alcotest.fail "no lyse"
  in
  expect_invalid "device overlap"
    (map_entries
       (fun _ e ->
         if e.S.op = 3 then { e with S.device = lyse.S.device; start = lyse.S.start }
         else e)
       s)

let test_unknown_device () =
  let s = valid () in
  expect_invalid "unknown device"
    (map_entries (fun _ e -> if e.S.op = 2 then { e with S.device = 99 } else e) s)

let test_incompatible_device () =
  let s = valid () in
  (* the mix op (needs ring+pump) moved onto the capture chamber *)
  let capture =
    match S.entry_of_op s 0 with Some e -> e | None -> Alcotest.fail "no capture"
  in
  expect_invalid "incompatible binding"
    (map_entries (fun _ e -> if e.S.op = 2 then { e with S.device = capture.S.device } else e) s)

let test_wrong_duration () =
  let s = valid () in
  expect_invalid "wrong duration"
    (map_entries (fun _ e -> if e.S.op = 1 then { e with S.min_duration = 1 } else e) s)

let test_wrong_indet_flag () =
  let s = valid () in
  expect_invalid "wrong indeterminate flag"
    (map_entries (fun _ e -> if e.S.op = 0 then { e with S.indeterminate = false } else e) s)

let test_wrong_makespan () =
  let s = valid () in
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        if l.S.layer_index = 1 then { l with S.fixed_makespan = l.S.fixed_makespan + 7 }
        else l)
      s.S.layers
  in
  expect_invalid "wrong makespan" (with_layers s layers)

let test_entry_in_wrong_layer () =
  let s = valid () in
  (* move the capture entry from layer 0 into layer 1 *)
  let capture =
    match S.entry_of_op s 0 with Some e -> e | None -> Alcotest.fail "no capture"
  in
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        if l.S.layer_index = 0 then
          { l with S.entries = List.filter (fun e -> e.S.op <> 0) l.S.entries }
        else { l with S.entries = capture :: l.S.entries })
      s.S.layers
  in
  expect_invalid "wrong layer" (with_layers s layers)

let test_missing_path () =
  let s = valid () in
  (* rebuild the chip without any transportation paths: every inter-device
     transfer must then be flagged *)
  let chip = Chip.create () in
  List.iter (fun d -> Chip.add_device chip d) (Chip.devices s.S.chip);
  let has_cross_transfer =
    let bindings =
      List.filter_map (fun op -> S.binding s op) [ 0; 1; 2; 3 ]
    in
    List.length (List.sort_uniq compare bindings) > 1
  in
  if has_cross_transfer then
    expect_invalid "missing path"
      (S.make ~assay:s.S.assay ~rule:s.S.rule ~layering:s.S.layering ~chip
         ~layers:s.S.layers ~transport_times:s.S.transport_times)

let test_det_op_after_indet_on_device () =
  let s = valid () in
  (* schedule a determinate op on the capture device after the capture
     started: must be rejected even if (14) holds *)
  let capture =
    match S.entry_of_op s 0 with Some e -> e | None -> Alcotest.fail "no capture"
  in
  let layers =
    Array.map
      (fun (l : S.layer_schedule) ->
        if l.S.layer_index = 0 then
          {
            l with
            S.entries =
              l.S.entries
              @ [
                  {
                    S.op = 1;
                    device = capture.S.device;
                    start = capture.S.start + 1;
                    min_duration = 10;
                    transport = 0;
                    indeterminate = false;
                  };
                ];
          }
        else { l with S.entries = List.filter (fun e -> e.S.op <> 1) l.S.entries })
      s.S.layers
  in
  expect_invalid "det op after indet start" (with_layers s layers)

let () =
  Alcotest.run "validator"
    [
      ( "mutations",
        [
          Alcotest.test_case "fixture valid" `Quick test_fixture_is_valid;
          Alcotest.test_case "missing entry" `Quick test_missing_entry;
          Alcotest.test_case "duplicate entry" `Quick test_duplicate_entry;
          Alcotest.test_case "negative start" `Quick test_negative_start;
          Alcotest.test_case "dependency violation" `Quick test_dependency_violation;
          Alcotest.test_case "device conflict" `Quick test_device_conflict;
          Alcotest.test_case "unknown device" `Quick test_unknown_device;
          Alcotest.test_case "incompatible device" `Quick test_incompatible_device;
          Alcotest.test_case "wrong duration" `Quick test_wrong_duration;
          Alcotest.test_case "wrong indeterminate flag" `Quick test_wrong_indet_flag;
          Alcotest.test_case "wrong makespan" `Quick test_wrong_makespan;
          Alcotest.test_case "entry in wrong layer" `Quick test_entry_in_wrong_layer;
          Alcotest.test_case "missing path" `Quick test_missing_path;
          Alcotest.test_case "det op after indet" `Quick test_det_op_after_indet_on_device;
        ] );
    ]
