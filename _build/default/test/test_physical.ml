(* Tests for the physical-design estimate: floorplanning, maze routing and
   the routed-length transportation source. *)

open Microfluidics
open Components

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let mk_device id accs =
  Device.make ~id ~container:Container.Chamber ~capacity:Capacity.Small
    ~accessories:accs

let demo_devices () = [ mk_device 0 []; mk_device 1 [ Accessory.Pump ]; mk_device 2 [] ]

let demo_usage = [ ((0, 1), 5); ((1, 2), 2) ]

let test_floorplan_basic () =
  let fp =
    Physical.Floorplan.plan ~cost:Cost.default ~devices:(demo_devices ())
      ~path_usage:demo_usage ()
  in
  check int_t "three rects" 3 (List.length fp.Physical.Floorplan.rects);
  check bool "die is positive" true (Physical.Floorplan.die_area fp > 0);
  (* footprints cover the area cost *)
  List.iter
    (fun (r : Physical.Floorplan.rect) ->
      let d = List.find (fun (d : Device.t) -> d.Device.id = r.Physical.Floorplan.device) (demo_devices ()) in
      check bool "footprint >= area" true
        (r.Physical.Floorplan.w * r.Physical.Floorplan.h >= Cost.device_area Cost.default d))
    fp.Physical.Floorplan.rects;
  (* no overlapping rectangles *)
  let rec pairwise = function
    | [] -> ()
    | (r : Physical.Floorplan.rect) :: rest ->
      List.iter
        (fun (r' : Physical.Floorplan.rect) ->
          let disjoint =
            r.Physical.Floorplan.x + r.Physical.Floorplan.w <= r'.Physical.Floorplan.x
            || r'.Physical.Floorplan.x + r'.Physical.Floorplan.w <= r.Physical.Floorplan.x
            || r.Physical.Floorplan.y + r.Physical.Floorplan.h <= r'.Physical.Floorplan.y
            || r'.Physical.Floorplan.y + r'.Physical.Floorplan.h <= r.Physical.Floorplan.y
          in
          check bool "rects disjoint" true disjoint)
        rest;
      pairwise rest
  in
  pairwise fp.Physical.Floorplan.rects

let test_floorplan_empty () =
  let fp = Physical.Floorplan.plan ~cost:Cost.default ~devices:[] ~path_usage:[] () in
  check int_t "no rects" 0 (List.length fp.Physical.Floorplan.rects);
  check int_t "zero area" 0 (Physical.Floorplan.die_area fp)

let test_floorplan_occupancy_and_ports () =
  let fp =
    Physical.Floorplan.plan ~cost:Cost.default ~devices:(demo_devices ())
      ~path_usage:demo_usage ()
  in
  List.iter
    (fun (r : Physical.Floorplan.rect) ->
      check bool "inside occupied" true
        (Physical.Floorplan.occupied fp ~x:r.Physical.Floorplan.x ~y:r.Physical.Floorplan.y);
      let px, py = Physical.Floorplan.port_of fp r.Physical.Floorplan.device in
      check bool "port outside the rect" false (Physical.Floorplan.occupied fp ~x:px ~y:py))
    fp.Physical.Floorplan.rects

let test_routing_demo () =
  let fp =
    Physical.Floorplan.plan ~cost:Cost.default ~devices:(demo_devices ())
      ~path_usage:demo_usage ()
  in
  let r = Physical.Router.route_all fp ~path_usage:demo_usage in
  check int_t "both channels routed" 2 (List.length r.Physical.Router.routes);
  check int_t "no failures" 0 (List.length r.Physical.Router.failures);
  check bool "lengths positive" true (r.Physical.Router.total_length > 0);
  (* routed cells are contiguous and avoid device interiors *)
  List.iter
    (fun (route : Physical.Router.route) ->
      let rec contiguous = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          abs (x1 - x2) + abs (y1 - y2) = 1 && contiguous rest
        | [ _ ] | [] -> true
      in
      check bool "contiguous" true (contiguous route.Physical.Router.cells);
      List.iter
        (fun (x, y) ->
          check bool "avoids devices" false (Physical.Floorplan.occupied fp ~x ~y))
        route.Physical.Router.cells;
      check int_t "length = cells - 1"
        (List.length route.Physical.Router.cells - 1)
        route.Physical.Router.length)
    r.Physical.Router.routes

let test_routing_hot_path_shorter () =
  (* the hottest path is routed first and should not be longer than the
     Manhattan distance plus the halo detours of a fresh grid *)
  let fp =
    Physical.Floorplan.plan ~cost:Cost.default ~devices:(demo_devices ())
      ~path_usage:demo_usage ()
  in
  let r = Physical.Router.route_all fp ~path_usage:demo_usage in
  match Physical.Router.channel_length r 0 1 with
  | Some len ->
    let (x0, y0) = Physical.Floorplan.port_of fp 0 in
    let (x1, y1) = Physical.Floorplan.port_of fp 1 in
    let manhattan = abs (x0 - x1) + abs (y0 - y1) in
    check bool "hot channel near-minimal" true (len <= manhattan + 6)
  | None -> Alcotest.fail "hot path not routed"

let test_design_of_schedule () =
  let assay = Assays.Kinase.testcase () in
  let result = Cohls.Synthesis.run assay in
  let design = Physical.Physical_design.of_schedule Cost.default result.Cohls.Synthesis.final in
  let die, len, crossings = Physical.Physical_design.quality design in
  check bool "die positive" true (die > 0);
  check bool "all paths routed" true
    (design.Physical.Physical_design.routing.Physical.Router.failures = []);
  check bool "length positive" true (len > 0);
  check bool "crossings bounded" true (crossings >= 0 && crossings <= len)

let test_routed_transport_times () =
  let assay = Assays.Kinase.testcase () in
  let result = Cohls.Synthesis.run assay in
  let s = result.Cohls.Synthesis.final in
  let design = Physical.Physical_design.of_schedule Cost.default s in
  let graph = Microfluidics.Assay.dependency_graph assay in
  let t =
    Physical.Physical_design.transport_times Cohls.Transport.default_progression design
      ~op_count:(Assay.operation_count assay)
      ~binding:(fun op -> Cohls.Schedule.binding s op)
      ~children:(fun op -> Flowgraph.Digraph.succ graph op)
  in
  let prog = Cohls.Transport.default_progression in
  let in_range op =
    let x = Cohls.Transport.time t op in
    x = 0 || (x >= prog.Cohls.Transport.min_term && x <= prog.Cohls.Transport.max_term)
  in
  check bool "every op priced within the progression" true
    (List.for_all in_range (List.init (Assay.operation_count assay) Fun.id))

let test_retry_oracle () =
  let assay = Assays.Gene_expression.base () in
  let oracle =
    Cohls.Runtime.retry_oracle ~seed:11 ~success_probability:0.53 ~attempt_minutes:8 assay
  in
  let d = oracle 0 in
  check bool "multiple of attempt length, above minimum" true (d >= 8 && d mod 8 = 0);
  (* deterministic *)
  let oracle' =
    Cohls.Runtime.retry_oracle ~seed:11 ~success_probability:0.53 ~attempt_minutes:8 assay
  in
  check int_t "reproducible" d (oracle' 0);
  (* p = 1 always succeeds on the first attempt *)
  let sure =
    Cohls.Runtime.retry_oracle ~seed:1 ~success_probability:1.0 ~attempt_minutes:8 assay
  in
  check int_t "single attempt" 8 (sure 0);
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Runtime.retry_oracle: success_probability must be in (0, 1]")
    (fun () ->
      ignore
        (Cohls.Runtime.retry_oracle ~seed:1 ~success_probability:0.0
           ~attempt_minutes:8 assay
          : Cohls.Runtime.oracle))

let test_retry_oracle_in_executor () =
  let assay = Assays.Gene_expression.base () in
  let r = Cohls.Synthesis.run assay in
  let oracle =
    Cohls.Runtime.retry_oracle ~seed:3 ~success_probability:0.53 ~attempt_minutes:8 assay
  in
  match Cohls.Runtime.execute r.Cohls.Synthesis.final oracle with
  | Ok trace ->
    check bool "total at least fixed" true
      (trace.Cohls.Runtime.total_minutes
       >= Cohls.Schedule.total_fixed_minutes r.Cohls.Synthesis.final)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "physical"
    [
      ( "floorplan",
        [
          Alcotest.test_case "basic" `Quick test_floorplan_basic;
          Alcotest.test_case "empty" `Quick test_floorplan_empty;
          Alcotest.test_case "occupancy and ports" `Quick test_floorplan_occupancy_and_ports;
        ] );
      ( "router",
        [
          Alcotest.test_case "demo routes" `Quick test_routing_demo;
          Alcotest.test_case "hot path near-minimal" `Quick test_routing_hot_path_shorter;
        ] );
      ( "design",
        [
          Alcotest.test_case "of_schedule" `Quick test_design_of_schedule;
          Alcotest.test_case "routed transport times" `Quick test_routed_transport_times;
        ] );
      ( "retry-oracle",
        [
          Alcotest.test_case "geometric retries" `Quick test_retry_oracle;
          Alcotest.test_case "drives the executor" `Quick test_retry_oracle_in_executor;
        ] );
    ]
