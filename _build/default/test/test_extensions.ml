(* Tests for the extension modules: the static fixed-slot strawman analysis
   and the two additional protocols (AutoChIP, single-cell MDA). *)

open Microfluidics
module SB = Cohls.Static_baseline

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

(* ---------- static baseline ---------- *)

let test_static_schedule_determinate_case () =
  (* on a determinate assay the static schedule and the hybrid schedule are
     the same problem: exposure is zero on both sides *)
  let assay = Assays.Kinase.base () in
  let static, hybrid = SB.compare_hybrid assay in
  check int_t "static exposure zero" 0 static.SB.exposed_slots;
  check int_t "hybrid exposure zero" 0 hybrid.SB.exposed_slots

let test_static_exposure_positive () =
  (* with indeterminate captures, the one-layer static schedule has slots
     after the captures' minimum ends; the hybrid schedule has none *)
  let assay = Assays.Gene_expression.testcase () in
  let static, hybrid = SB.compare_hybrid assay in
  check bool "static exposes downstream slots" true (static.SB.exposed_slots > 0);
  check int_t "hybrid exposure is zero by construction" 0 hybrid.SB.exposed_slots;
  check bool "worst chain positive" true (static.SB.worst_chain > 0);
  check int_t "slot counts agree" static.SB.total_slots hybrid.SB.total_slots

let test_static_schedule_erases_indeterminacy () =
  let assay = Assays.Gene_expression.base () in
  let s = SB.static_schedule assay in
  (* the determinised assay collapses to a single layer *)
  check int_t "one layer" 1 (Array.length s.Cohls.Schedule.layers);
  check bool "no entry marked indeterminate" true
    (Array.for_all
       (fun (l : Cohls.Schedule.layer_schedule) ->
         List.for_all
           (fun (e : Cohls.Schedule.entry) -> not e.Cohls.Schedule.indeterminate)
           l.Cohls.Schedule.entries)
       s.Cohls.Schedule.layers)

let test_exposure_monotone_in_indets () =
  (* more indeterminate pipelines -> at least as much static exposure *)
  let exposure copies =
    let assay = Assay.replicate (Assays.Mda.base ()) ~copies in
    let static, _ = SB.compare_hybrid assay in
    static.SB.exposed_slots
  in
  check bool "monotone" true (exposure 2 <= exposure 6)

(* ---------- extra protocols ---------- *)

let test_chip_assay_shape () =
  let base = Assays.Chip_assay.base () in
  check int_t "base ops" Assays.Chip_assay.base_op_count (Assay.operation_count base);
  check int_t "determinate" 0 (Assay.indeterminate_count base);
  let tc = Assays.Chip_assay.testcase () in
  check int_t "testcase ops" 72 (Assay.operation_count tc);
  check bool "valid" true (Assay.validate tc = Ok ())

let test_mda_shape () =
  let base = Assays.Mda.base () in
  check int_t "base ops" Assays.Mda.base_op_count (Assay.operation_count base);
  check int_t "one indet" 1 (Assay.indeterminate_count base);
  let tc = Assays.Mda.testcase () in
  check int_t "testcase ops" 60 (Assay.operation_count tc);
  check int_t "testcase indets" 12 (Assay.indeterminate_count tc)

let test_extra_protocols_synthesise () =
  List.iter
    (fun assay ->
      let ours = Cohls.Synthesis.run assay in
      (match Cohls.Schedule.validate ours.Cohls.Synthesis.final with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Assay.name assay ^ ": " ^ e));
      let conv = Cohls.Baseline.run assay in
      check bool
        (Assay.name assay ^ ": ours no slower")
        true
        (ours.Cohls.Synthesis.final_breakdown.Cohls.Schedule.fixed_minutes
         <= conv.Cohls.Synthesis.final_breakdown.Cohls.Schedule.fixed_minutes))
    [ Assays.Chip_assay.testcase (); Assays.Mda.testcase () ]

let test_mda_layering () =
  (* 12 indeterminate sorts with threshold 10: two indeterminate layers *)
  let l = Cohls.Layering.compute (Assays.Mda.testcase ()) in
  check int_t "layers" 3 (Cohls.Layering.layer_count l);
  check int_t "first layer indets" 10
    (List.length l.Cohls.Layering.layers.(0).Cohls.Layering.indeterminate);
  check int_t "second layer indets" 2
    (List.length l.Cohls.Layering.layers.(1).Cohls.Layering.indeterminate);
  check bool "check" true (Cohls.Layering.check l = Ok ())

let () =
  Alcotest.run "extensions"
    [
      ( "static-baseline",
        [
          Alcotest.test_case "determinate case has no exposure" `Quick
            test_static_schedule_determinate_case;
          Alcotest.test_case "static exposes, hybrid does not" `Slow
            test_static_exposure_positive;
          Alcotest.test_case "indeterminacy erased" `Quick
            test_static_schedule_erases_indeterminacy;
          Alcotest.test_case "exposure monotone" `Slow test_exposure_monotone_in_indets;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "AutoChIP shape" `Quick test_chip_assay_shape;
          Alcotest.test_case "MDA shape" `Quick test_mda_shape;
          Alcotest.test_case "both synthesise" `Slow test_extra_protocols_synthesise;
          Alcotest.test_case "MDA layering" `Quick test_mda_layering;
        ] );
    ]
