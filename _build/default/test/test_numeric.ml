(* Unit and property tests for the arbitrary-precision substrate. *)

module B = Numeric.Bigint
module Q = Numeric.Rat

let check = Alcotest.check
let str = Alcotest.string
let bool = Alcotest.bool
let int_t = Alcotest.int

let bs x = B.to_string x
let qs x = Q.to_string x

(* ---------- Bigint units ---------- *)

let test_of_int_roundtrip () =
  let cases = [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1 lsl 40; max_int; min_int ] in
  List.iter
    (fun n ->
      check (Alcotest.option int_t) (string_of_int n) (Some n) (B.to_int_opt (B.of_int n)))
    cases

let test_to_string_basic () =
  check str "zero" "0" (bs B.zero);
  check str "one" "1" (bs B.one);
  check str "neg" "-12345" (bs (B.of_int (-12345)));
  check str "big" "123456789012345678901234567890"
    (bs (B.of_string "123456789012345678901234567890"))

let test_of_string_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "letters" (Invalid_argument "Bigint.of_string: bad digit")
    (fun () -> ignore (B.of_string "12a"));
  Alcotest.check_raises "bare sign" (Invalid_argument "Bigint.of_string: no digits")
    (fun () -> ignore (B.of_string "-"))

let test_add_sub () =
  let a = B.of_string "99999999999999999999" in
  check str "a+1" "100000000000000000000" (bs (B.add a B.one));
  check str "a-a" "0" (bs (B.sub a a));
  check str "0-a" ("-" ^ bs a) (bs (B.sub B.zero a));
  check str "neg cancel" "0" (bs (B.add a (B.neg a)))

let test_mul () =
  let a = B.of_string "123456789" in
  let b = B.of_string "987654321" in
  check str "123456789*987654321" "121932631112635269" (bs (B.mul a b));
  check str "sign" "-121932631112635269" (bs (B.mul (B.neg a) b));
  check str "by zero" "0" (bs (B.mul a B.zero))

let test_divmod () =
  let a = B.of_string "1000000000000000000000" in
  let b = B.of_string "7777777" in
  let q, r = B.divmod a b in
  check str "reconstruct" (bs a) (bs (B.add (B.mul q b) r));
  check bool "remainder range" true (B.compare (B.abs r) (B.abs b) < 0);
  (* truncated semantics like Stdlib: remainder has the dividend's sign *)
  let q', r' = B.divmod (B.neg a) b in
  check str "neg quotient" (bs (B.neg q)) (bs q');
  check str "neg remainder" (bs (B.neg r)) (bs r');
  check str "small / big" "0" (bs (B.div b a));
  check str "small rem big" (bs b) (bs (B.rem b a))

let test_div_by_zero () =
  Alcotest.check_raises "divmod 0" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd () =
  check str "gcd 462 1071" "21" (bs (B.gcd (B.of_int 462) (B.of_int 1071)));
  check str "gcd 0 5" "5" (bs (B.gcd B.zero (B.of_int 5)));
  check str "gcd 0 0" "0" (bs (B.gcd B.zero B.zero));
  check str "gcd negatives" "6" (bs (B.gcd (B.of_int (-12)) (B.of_int 18)))

let test_pow () =
  check str "2^100" "1267650600228229401496703205376" (bs (B.pow B.two 100));
  check str "x^0" "1" (bs (B.pow (B.of_int 123) 0));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_compare () =
  let a = B.of_string "100000000000000000000" in
  check bool "a > 1" true (B.compare a B.one > 0);
  check bool "-a < 1" true (B.compare (B.neg a) B.one < 0);
  check bool "-a < -1" true (B.compare (B.neg a) B.minus_one < 0);
  check bool "equal" true (B.equal a (B.of_string "100000000000000000000"));
  check str "min" (bs (B.neg a)) (bs (B.min (B.neg a) a));
  check str "max" (bs a) (bs (B.max (B.neg a) a))

let test_to_float () =
  check (Alcotest.float 1e-6) "2^20" 1048576.0 (B.to_float (B.pow B.two 20));
  check (Alcotest.float 1.0) "neg" (-12345.0) (B.to_float (B.of_int (-12345)))

let test_karatsuba_large () =
  (* numbers far above the Karatsuba threshold (32 base-2^15 digits);
     division is an independent code path, so the round trip is a real
     cross-check of the multiplication *)
  let x = B.pow (B.of_string "123456789123456789") 13 in
  let y = B.pow (B.of_string "987654321987654321") 11 in
  let p = B.mul x y in
  let q, r = B.divmod p x in
  check bool "p / x = y" true (B.equal q y && B.is_zero r);
  let q2, r2 = B.divmod p y in
  check bool "p / y = x" true (B.equal q2 x && B.is_zero r2);
  (* power identity exercises repeated big multiplications *)
  let a = B.of_string "31415926535897932384626433" in
  check bool "x^7 * x^9 = x^16" true
    (B.equal (B.mul (B.pow a 7) (B.pow a 9)) (B.pow a 16));
  (* unbalanced operand sizes *)
  let small = B.of_int 65537 in
  let big = B.pow a 20 in
  let pr = B.mul big small in
  let qq, rr = B.divmod pr small in
  check bool "unbalanced sizes" true (B.equal qq big && B.is_zero rr)

let test_karatsuba_signs () =
  let a = B.pow (B.of_int 1234567) 40 in
  let b = B.pow (B.of_int 7654321) 40 in
  check bool "(-a)*b = -(a*b)" true (B.equal (B.mul (B.neg a) b) (B.neg (B.mul a b)));
  check bool "(-a)*(-b) = a*b" true (B.equal (B.mul (B.neg a) (B.neg b)) (B.mul a b))

(* ---------- Bigint properties ---------- *)

let prop_karatsuba_distributes =
  (* (x + y) * z = x*z + y*z with operands straddling the threshold *)
  QCheck.Test.make ~name:"large multiplication distributes" ~count:60
    QCheck.(triple (int_range 2 999999) (int_range 2 999999) (int_range 1 60))
    (fun (x, y, e) ->
      let bx = B.pow (B.of_int x) e in
      let by = B.pow (B.of_int y) e in
      let bz = B.pow (B.of_int (x + y)) (e / 2) in
      B.equal (B.mul (B.add bx by) bz) (B.add (B.mul bx bz) (B.mul by bz)))

let arb_int_pair = QCheck.(pair int int)

let prop_add_commutes =
  QCheck.Test.make ~name:"bigint add commutes" ~count:500 arb_int_pair (fun (x, y) ->
      B.equal (B.add (B.of_int x) (B.of_int y)) (B.add (B.of_int y) (B.of_int x)))

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int on small values" ~count:500
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (x, y) -> B.to_int_opt (B.add (B.of_int x) (B.of_int y)) = Some (x + y))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int on small values" ~count:500
    QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (x, y) -> B.to_int_opt (B.mul (B.of_int x) (B.of_int y)) = Some (x * y))

let prop_divmod_reconstructs =
  QCheck.Test.make ~name:"bigint a = q*b + r with |r| < |b|" ~count:1000
    QCheck.(pair int int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let a = B.mul (B.of_int x) (B.of_int x) (* widen beyond int *) in
      let b = B.of_int y in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:500 QCheck.int (fun x ->
      let a = B.mul (B.of_int x) (B.of_int 1234567) in
      B.equal a (B.of_string (B.to_string a)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:500 arb_int_pair (fun (x, y) ->
      QCheck.assume (x <> 0 || y <> 0);
      let g = B.gcd (B.of_int x) (B.of_int y) in
      B.is_zero (B.rem (B.of_int x) g) && B.is_zero (B.rem (B.of_int y) g))

(* ---------- Rat units ---------- *)

let test_rat_normalisation () =
  check str "2/4" "1/2" (qs (Q.of_ints 2 4));
  check str "-2/-4" "1/2" (qs (Q.of_ints (-2) (-4)));
  check str "2/-4" "-1/2" (qs (Q.of_ints 2 (-4)));
  check str "0/7" "0" (qs (Q.of_ints 0 7));
  check str "integer" "5" (qs (Q.of_ints 10 2))

let test_rat_arith () =
  check str "1/3 + 1/6" "1/2" (qs (Q.add (Q.of_ints 1 3) (Q.of_ints 1 6)));
  check str "1/2 * 2/3" "1/3" (qs (Q.mul (Q.of_ints 1 2) (Q.of_ints 2 3)));
  check str "(1/2) / (3/4)" "2/3" (qs (Q.div (Q.of_ints 1 2) (Q.of_ints 3 4)));
  check str "1 - 1/3" "2/3" (qs (Q.sub Q.one (Q.of_ints 1 3)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rat_floor_ceil () =
  check str "floor 7/2" "3" (bs (Q.floor (Q.of_ints 7 2)));
  check str "ceil 7/2" "4" (bs (Q.ceil (Q.of_ints 7 2)));
  check str "floor -7/2" "-4" (bs (Q.floor (Q.of_ints (-7) 2)));
  check str "ceil -7/2" "-3" (bs (Q.ceil (Q.of_ints (-7) 2)));
  check str "floor 3" "3" (bs (Q.floor (Q.of_int 3)));
  check str "ceil 3" "3" (bs (Q.ceil (Q.of_int 3)))

let test_rat_compare () =
  check bool "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  check bool "-1/3 > -1/2" true (Q.compare (Q.of_ints (-1) 3) (Q.of_ints (-1) 2) > 0);
  check bool "equal" true (Q.equal (Q.of_ints 3 9) (Q.of_ints 1 3));
  check bool "is_integer" true (Q.is_integer (Q.of_ints 8 4));
  check bool "not integer" false (Q.is_integer (Q.of_ints 8 3))

let test_rat_of_float () =
  check str "0.5" "1/2" (qs (Q.of_float_approx 0.5));
  check str "0.25" "1/4" (qs (Q.of_float_approx 0.25));
  check bool "0.1 close" true
    (Q.to_float (Q.abs (Q.sub (Q.of_float_approx 0.1) (Q.of_ints 1 10))) < 1e-15);
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float_approx: not finite")
    (fun () -> ignore (Q.of_float_approx Float.nan))

(* ---------- Rat properties ---------- *)

let arb_rat =
  QCheck.map
    (fun (n, d) -> Q.of_ints n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-10000) 10000) (int_range (-100) 100))

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat add associative" ~count:300
    QCheck.(triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_rat_distributive =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:300
    QCheck.(triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_rat_inverse =
  QCheck.Test.make ~name:"rat x * 1/x = 1" ~count:300 arb_rat (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_rat_floor_bounds =
  QCheck.Test.make ~name:"rat floor(x) <= x < floor(x)+1" ~count:300 arb_rat (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0)

let prop_rat_total_order =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:300
    QCheck.(pair arb_rat arb_rat)
    (fun (a, b) -> compare (Q.compare a b) 0 = compare 0 (Q.compare b a))

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "numeric"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "to_string" `Quick test_to_string_basic;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "karatsuba large" `Quick test_karatsuba_large;
          Alcotest.test_case "karatsuba signs" `Quick test_karatsuba_signs;
        ] );
      ( "bigint-props",
        qsuite
          [
            prop_add_commutes;
            prop_add_matches_int;
            prop_mul_matches_int;
            prop_divmod_reconstructs;
            prop_string_roundtrip;
            prop_gcd_divides;
            prop_karatsuba_distributes;
          ] );
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_float" `Quick test_rat_of_float;
        ] );
      ( "rat-props",
        qsuite
          [
            prop_rat_add_assoc;
            prop_rat_distributive;
            prop_rat_inverse;
            prop_rat_floor_bounds;
            prop_rat_total_order;
          ] );
    ]
