(* Tests for the textual assay description language: lexing, parsing,
   errors with line numbers, and the print/parse round trip (unit cases
   plus a property over random assays). *)

open Microfluidics
module AT = Assay_text

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int
let str = Alcotest.string

let parse_ok source =
  match AT.parse source with
  | Ok a -> a
  | Error e -> Alcotest.failf "parse failed: line %d: %s" e.AT.line e.AT.message

let parse_err source =
  match AT.parse source with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let sample =
  {|
# the paper's running example, abridged
assay "demo"

op capture {
  container   = chamber
  capacity    = tiny
  accessories = cell-trap, optical-system
  duration    = indeterminate min 8
}
op lyse { duration = 10 }
op mix {
  container   = ring
  accessories = pump
  duration    = 20
}

deps { capture -> lyse -> mix }
|}

let test_parse_sample () =
  let a = parse_ok sample in
  check str "name" "demo" (Assay.name a);
  check int_t "ops" 3 (Assay.operation_count a);
  check int_t "indeterminate" 1 (Assay.indeterminate_count a);
  let ops = Assay.operations a in
  check bool "capture is op 0" true (ops.(0).Operation.name = "capture");
  check bool "capture container" true
    (ops.(0).Operation.container = Some Components.Container.Chamber);
  check bool "capture accessories" true
    (Components.Accessory.Set.mem Components.Accessory.Cell_trap
       ops.(0).Operation.accessories);
  check int_t "lyse duration" 10 (Operation.min_duration ops.(1));
  check (Alcotest.list int_t) "chain" [ 1 ] (Assay.children a 0);
  check (Alcotest.list int_t) "chain2" [ 2 ] (Assay.children a 1)

let test_parse_replicate () =
  let a = parse_ok (sample ^ "\nreplicate 4\n") in
  check int_t "ops scaled" 12 (Assay.operation_count a);
  check int_t "indets scaled" 4 (Assay.indeterminate_count a)

let test_parse_multiple_deps_blocks () =
  let src =
    {|assay x
      op a { duration = 1 }
      op b { duration = 1 }
      op c { duration = 1 }
      deps { a -> b }
      deps { a -> c }|}
  in
  let a = parse_ok src in
  check (Alcotest.list int_t) "two children" [ 1; 2 ] (Assay.children a 0)

let test_parse_unquoted_name () =
  let a = parse_ok "assay my-assay\nop x { duration = 3 }" in
  check str "hyphenated name" "my-assay" (Assay.name a)

let expect_error ~line source =
  let e = parse_err source in
  check int_t ("error line of " ^ source) line e.AT.line

let test_errors () =
  expect_error ~line:1 "op x { duration = 0 }" (* non-positive duration *);
  expect_error ~line:2 "op x { duration = 5 }\nop x { duration = 5 }" (* dup *);
  expect_error ~line:3 "op a { duration = 1 }\nop b { duration = 1 }\ndeps { a -> zz }";
  expect_error ~line:1 "op a { durashun = 1 }";
  expect_error ~line:1 "op a { container = bowl duration = 1 }";
  expect_error ~line:1 "op a { accessories = laser duration = 1 }";
  expect_error ~line:1 "flurb";
  (* cycles *)
  expect_error ~line:4
    "op a { duration = 1 }\nop b { duration = 1 }\ndeps { a -> b }\ndeps { b -> a }";
  (* ring/tiny *)
  expect_error ~line:1 "op a { container = ring capacity = tiny duration = 1 }";
  (* empty *)
  expect_error ~line:1 "assay empty";
  (* unterminated string *)
  expect_error ~line:1 "assay \"oops";
  (* indeterminate without min *)
  expect_error ~line:1 "op a { duration = indeterminate 5 }"

let test_volume_field () =
  let a =
    parse_ok
      "op a { volume = 2.5 duration = 5 }\n\
       op b { volume = 50 duration = 5 }\n\
       op c { capacity = large container = ring volume = 1.0 duration = 5 }"
  in
  let ops = Assay.operations a in
  check bool "2.5 nl -> tiny" true
    (ops.(0).Operation.capacity = Some Components.Capacity.Tiny);
  check bool "50 nl -> medium" true
    (ops.(1).Operation.capacity = Some Components.Capacity.Medium);
  check bool "explicit capacity wins over volume" true
    (ops.(2).Operation.capacity = Some Components.Capacity.Large);
  (* out-of-range volume *)
  expect_error ~line:1 "op a { volume = 9999.0 duration = 5 }";
  (* a float duration is rejected *)
  expect_error ~line:1 "op a { duration = 5.5 }"

let test_comments_and_whitespace () =
  let a =
    parse_ok "  # leading comment\nassay t # trailing\nop a{duration=2}#end\n"
  in
  check int_t "one op" 1 (Assay.operation_count a)

let test_roundtrip_sample () =
  let a = parse_ok sample in
  let b = parse_ok (AT.to_text a) in
  check int_t "same op count" (Assay.operation_count a) (Assay.operation_count b);
  check int_t "same indets" (Assay.indeterminate_count a) (Assay.indeterminate_count b);
  let ga = Flowgraph.Digraph.edges (Assay.dependency_graph a) in
  let gb = Flowgraph.Digraph.edges (Assay.dependency_graph b) in
  check bool "same dependency structure" true (ga = gb)

let test_of_file () =
  let path = Filename.temp_file "assay" ".assay" in
  let oc = open_out path in
  output_string oc sample;
  close_out oc;
  (match AT.of_file path with
   | Ok a -> check int_t "parsed from file" 3 (Assay.operation_count a)
   | Error e -> Alcotest.failf "of_file failed: %s" e.AT.message);
  Sys.remove path

(* property: printing any random assay and re-parsing preserves structure *)
let prop_roundtrip =
  let arb =
    QCheck.make
      QCheck.Gen.(pair (int_range 1 99999) (int_range 1 25))
      ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
  in
  QCheck.Test.make ~name:"to_text/parse round trip on random assays" ~count:200 arb
    (fun (seed, n) ->
      let params =
        { Assays.Random_assay.default_params with Assays.Random_assay.op_count = n }
      in
      let a = Assays.Random_assay.generate ~seed params in
      match AT.parse (AT.to_text a) with
      | Error _ -> false
      | Ok b ->
        Assay.operation_count a = Assay.operation_count b
        && Flowgraph.Digraph.edges (Assay.dependency_graph a)
           = Flowgraph.Digraph.edges (Assay.dependency_graph b)
        && Array.for_all2
             (fun (x : Operation.t) (y : Operation.t) ->
               x.Operation.container = y.Operation.container
               && x.Operation.capacity = y.Operation.capacity
               && Components.Accessory.Set.equal x.Operation.accessories
                    y.Operation.accessories
               && x.Operation.duration = y.Operation.duration)
             (Assay.operations a) (Assay.operations b))

let test_parsed_assay_synthesises () =
  let a = parse_ok (sample ^ "\nreplicate 3\n") in
  let r = Cohls.Synthesis.run a in
  match Cohls.Schedule.validate r.Cohls.Synthesis.final with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "assay-text"
    [
      ( "parse",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "replicate" `Quick test_parse_replicate;
          Alcotest.test_case "multiple deps blocks" `Quick test_parse_multiple_deps_blocks;
          Alcotest.test_case "unquoted name" `Quick test_parse_unquoted_name;
          Alcotest.test_case "errors with line numbers" `Quick test_errors;
          Alcotest.test_case "volume field" `Quick test_volume_field;
          Alcotest.test_case "comments/whitespace" `Quick test_comments_and_whitespace;
          Alcotest.test_case "of_file" `Quick test_of_file;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "sample roundtrip" `Quick test_roundtrip_sample;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "parsed assay synthesises" `Quick
            test_parsed_assay_synthesises;
        ] );
    ]
