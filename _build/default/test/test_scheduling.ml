(* Tests for binding rules, transportation estimation, the greedy list
   scheduler, schedule validation and the hybrid-schedule runtime
   executor. *)

open Microfluidics
open Components
module LS = Cohls.List_scheduler
module T = Cohls.Transport

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let det ?container ?capacity ?(accessories = []) a name minutes =
  Assay.add_operation a ?container ?capacity ~accessories
    ~duration:(Operation.Fixed minutes) name

let indet ?(accessories = []) a name minutes =
  Assay.add_operation a ~accessories
    ~duration:(Operation.Indeterminate { min_minutes = minutes }) name

(* ---------- binding rules ---------- *)

let mixer =
  Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Small
    ~accessories:[ Accessory.Pump; Accessory.Sieve_valve ]

let test_component_oriented_rule () =
  let washing =
    Operation.make ~id:0 ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 5) "wash"
  in
  check bool "washing on mixer (superset)" true
    (Cohls.Binding.op_fits Cohls.Binding.Component_oriented washing mixer);
  check bool "exact rule refuses" false
    (Cohls.Binding.op_fits Cohls.Binding.Exact_signature washing mixer)

let test_exact_rule_matches_resolved () =
  let wash =
    Operation.make ~id:0 ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 5) "wash"
  in
  (* resolved: chamber/tiny{s} *)
  let exact_dev =
    Device.make ~id:1 ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Sieve_valve ]
  in
  check bool "exact match accepted" true
    (Cohls.Binding.op_fits Cohls.Binding.Exact_signature wash exact_dev);
  check bool "component rule also accepts" true
    (Cohls.Binding.op_fits Cohls.Binding.Component_oriented wash exact_dev)

let test_minimal_device () =
  let big_mix =
    Operation.make ~id:0 ~capacity:Capacity.Large ~duration:(Operation.Fixed 5) "m"
  in
  let d = Cohls.Binding.minimal_device big_mix ~id:3 in
  (* a large capacity forces a ring even without a container spec *)
  check bool "ring" true (Container.equal d.Device.container Container.Ring);
  check bool "large" true (Capacity.equal d.Device.capacity Capacity.Large);
  let plain = Operation.make ~id:1 ~duration:(Operation.Fixed 5) "p" in
  let d2 = Cohls.Binding.minimal_device plain ~id:4 in
  check bool "cheapest is tiny chamber" true
    (Container.equal d2.Device.container Container.Chamber
     && Capacity.equal d2.Device.capacity Capacity.Tiny)

let test_component_rule_superset_of_exact () =
  (* any binding legal under the exact rule is legal under ours *)
  let ops =
    [
      Operation.make ~id:0 ~duration:(Operation.Fixed 1) "a";
      Operation.make ~id:1 ~container:Container.Ring ~accessories:[ Accessory.Pump ]
        ~duration:(Operation.Fixed 1) "b";
      Operation.make ~id:2 ~capacity:Capacity.Medium
        ~accessories:[ Accessory.Heating_pad ] ~duration:(Operation.Fixed 1) "c";
    ]
  in
  List.iter
    (fun o ->
      let d = Cohls.Binding.minimal_device o ~id:9 in
      check bool "exact implies component" true
        ((not (Cohls.Binding.op_fits Cohls.Binding.Exact_signature o d))
         || Cohls.Binding.op_fits Cohls.Binding.Component_oriented o d))
    ops

let test_device_subsumes () =
  let small =
    Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump ]
  in
  check bool "bigger accessory set subsumes" true
    (Cohls.Binding.device_subsumes mixer small);
  check bool "smaller does not" false (Cohls.Binding.device_subsumes small mixer)

(* ---------- transport ---------- *)

let test_progression_terms () =
  let p = { T.min_term = 2; max_term = 10; term_count = 5 } in
  check int_t "term 0" 2 (T.term p 0);
  check int_t "term 4" 10 (T.term p 4);
  check int_t "term 2" 6 (T.term p 2);
  check int_t "clamped low" 2 (T.term p (-3));
  check int_t "clamped high" 10 (T.term p 99);
  let single = { T.min_term = 4; max_term = 4; term_count = 1 } in
  check int_t "single term" 4 (T.term single 0)

let test_transport_constant () =
  let t = T.constant ~op_count:3 7 in
  check int_t "all ops" 7 (T.time t 2);
  Alcotest.check_raises "negative" (Invalid_argument "Transport.constant: negative time")
    (fun () -> ignore (T.constant ~op_count:1 (-1)))

let test_transport_refine () =
  let p = { T.min_term = 1; max_term = 5; term_count = 5 } in
  (* op 0 -> op 1 cross-device on the hottest path; op 1 -> op 2 same device;
     op 3 has no children *)
  let binding = function 0 -> Some 10 | 1 -> Some 11 | 2 -> Some 11 | _ -> Some 12 in
  let children = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  let path_usage = [ ((10, 11), 9); ((11, 12), 1) ] in
  let t = T.refine p ~op_count:4 ~binding ~children ~path_usage in
  check int_t "hottest path -> fastest term" 1 (T.time t 0);
  check int_t "same device -> zero" 0 (T.time t 1);
  check int_t "no children -> zero" 0 (T.time t 2)

let test_transport_refine_unbound () =
  let p = T.default_progression in
  let t =
    T.refine p ~op_count:2
      ~binding:(fun _ -> None)
      ~children:(fun _ -> [])
      ~path_usage:[]
  in
  check int_t "unbound keeps slowest" (T.term p (p.T.term_count - 1)) (T.time t 0)

let test_transport_of_layout () =
  let p = { T.min_term = 1; max_term = 5; term_count = 5 } in
  let usage = [ ((0, 1), 9); ((1, 2), 1) ] in
  let layout = Layout.place ~device_ids:[ 0; 1; 2 ] ~path_usage:usage in
  let binding = function 0 -> Some 0 | 1 -> Some 1 | _ -> Some 2 in
  let children = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  let t = T.of_layout p ~op_count:3 ~binding ~children ~layout in
  (* adjacent hot pair is at distance 1 -> fastest bucket *)
  check int_t "hot pair fast" 1 (T.time t 0);
  check bool "cold pair not faster" true (T.time t 1 >= T.time t 0)

(* ---------- list scheduler ---------- *)

let schedule assay ~rule ~max_devices =
  let layering = Cohls.Layering.compute assay in
  let cfg =
    {
      LS.rule;
      max_devices;
      cost = Cost.default;
      weights = Cohls.Schedule.default_weights;
      device_penalty = (fun _ -> 0);
    }
  in
  let next = ref 0 in
  let fresh_id () = let i = !next in incr next; i in
  let ops = Assay.operations assay in
  let graph = Assay.dependency_graph assay in
  let outcomes =
    Array.map
      (fun layer ->
        LS.schedule_layer cfg ~ops ~graph ~layer
          ~layer_of_op:layering.Cohls.Layering.layer_of_op
          ~bound_before:(fun _ -> None)
          ~available:[] ~transport:(fun _ -> 2) ~existing_paths:[] ~fresh_id)
      layering.Cohls.Layering.layers
  in
  (layering, outcomes)

let test_list_scheduler_chain () =
  let a = Assay.create ~name:"chain" in
  let x = det a "x" 10 in
  let y = det a "y" 20 in
  Assay.add_dependency a ~parent:x ~child:y;
  let _, outcomes = schedule a ~rule:Cohls.Binding.Component_oriented ~max_devices:5 in
  let entries = outcomes.(0).LS.entries in
  check int_t "two entries" 2 (List.length entries);
  let e_of op = List.find (fun e -> e.Cohls.Schedule.op = op) entries in
  check int_t "x starts at 0" 0 (e_of x).Cohls.Schedule.start;
  (* y waits for x's 10 minutes plus 2 transport *)
  check int_t "y starts at 12" 12 (e_of y).Cohls.Schedule.start;
  (* same requirements: the chain shares one device *)
  check int_t "same device" (e_of x).Cohls.Schedule.device (e_of y).Cohls.Schedule.device;
  check int_t "makespan" 34 outcomes.(0).LS.fixed_makespan

let test_list_scheduler_parallelism () =
  let a = Assay.create ~name:"par" in
  for i = 0 to 3 do
    ignore (det a (Printf.sprintf "p%d" i) 30)
  done;
  let _, outcomes = schedule a ~rule:Cohls.Binding.Component_oriented ~max_devices:4 in
  (* four independent long ops and enough budget: all run in parallel *)
  check int_t "makespan 32" 32 outcomes.(0).LS.fixed_makespan;
  check int_t "four devices" 4 (List.length outcomes.(0).LS.created)

let test_list_scheduler_cap () =
  let a = Assay.create ~name:"cap" in
  for i = 0 to 3 do
    ignore (det a (Printf.sprintf "p%d" i) 30)
  done;
  let _, outcomes = schedule a ~rule:Cohls.Binding.Component_oriented ~max_devices:2 in
  check int_t "only two devices" 2 (List.length outcomes.(0).LS.created);
  check bool "serialised" true (outcomes.(0).LS.fixed_makespan >= 64)

let test_list_scheduler_no_device () =
  let a = Assay.create ~name:"nodev" in
  ignore (det a "x" 5);
  ignore (det ~accessories:[ Accessory.Optical_system ] a "y" 5);
  let run () = ignore (schedule a ~rule:Cohls.Binding.Exact_signature ~max_devices:1) in
  (* one device cap but two distinct signatures *)
  (try
     run ();
     Alcotest.fail "expected No_device"
   with LS.No_device _ -> ())

let test_indeterminate_last_and_distinct () =
  let a = Assay.create ~name:"ind" in
  let _ = det a "d1" 10 in
  let _ = det a "d2" 10 in
  let i1 = indet a "i1" 5 in
  let i2 = indet a "i2" 5 in
  let _, outcomes = schedule a ~rule:Cohls.Binding.Component_oriented ~max_devices:6 in
  let entries = outcomes.(0).LS.entries in
  let e_of op = List.find (fun e -> e.Cohls.Schedule.op = op) entries in
  check bool "indets on distinct devices" true
    ((e_of i1).Cohls.Schedule.device <> (e_of i2).Cohls.Schedule.device);
  (* (14): every op starts no later than each indet's minimum end *)
  List.iter
    (fun e ->
      List.iter
        (fun i ->
          check bool "(14)" true
            (e.Cohls.Schedule.start
             <= (e_of i).Cohls.Schedule.start + (e_of i).Cohls.Schedule.min_duration))
        [ i1; i2 ])
    entries

(* validity of greedy schedules on random assays, via the full validator *)
let prop_greedy_schedules_validate =
  let arb =
    QCheck.make
      QCheck.Gen.(pair (int_range 1 99999) (int_range 2 30))
      ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
  in
  QCheck.Test.make ~name:"greedy synthesis validates on random assays" ~count:100 arb
    (fun (seed, n) ->
      let params =
        { Assays.Random_assay.default_params with Assays.Random_assay.op_count = n }
      in
      let a = Assays.Random_assay.generate ~seed params in
      match Cohls.Synthesis.run a with
      | r -> Cohls.Schedule.validate r.Cohls.Synthesis.final = Ok ()
      | exception LS.No_device _ -> QCheck.assume_fail ())

(* ---------- runtime executor ---------- *)

let test_runtime_deterministic () =
  let a = Assay.create ~name:"rt" in
  let i = indet a "i" 10 in
  let d = det a "d" 5 in
  Assay.add_dependency a ~parent:i ~child:d;
  let r = Cohls.Synthesis.run a in
  let oracle = Cohls.Runtime.deterministic_oracle ~extra:7 a in
  (match Cohls.Runtime.execute r.Cohls.Synthesis.final oracle with
   | Ok trace ->
     (* layer 0 runs i for 10+7 plus transport; fixed part assumed 10+tr *)
     let wait0 = List.assoc 0 trace.Cohls.Runtime.waits in
     check int_t "waited 7 extra" 7 wait0;
     check bool "total >= fixed" true
       (trace.Cohls.Runtime.total_minutes
        >= Cohls.Schedule.total_fixed_minutes r.Cohls.Synthesis.final);
     check bool "events sorted" true
       (let rec sorted = function
          | a :: (b :: _ as rest) -> a.Cohls.Runtime.time <= b.Cohls.Runtime.time && sorted rest
          | [ _ ] | [] -> true
        in
        sorted trace.Cohls.Runtime.events);
     check int_t "start+finish per op" (2 * Assay.operation_count a)
       (List.length trace.Cohls.Runtime.events)
   | Error e -> Alcotest.fail e);
  ignore (i, d)

let test_runtime_zero_extra_matches_fixed () =
  let a = Assays.Gene_expression.base () in
  let r = Cohls.Synthesis.run a in
  let oracle = Cohls.Runtime.deterministic_oracle ~extra:0 a in
  match Cohls.Runtime.execute r.Cohls.Synthesis.final oracle with
  | Ok trace ->
    check int_t "no waiting: total = fixed"
      (Cohls.Schedule.total_fixed_minutes r.Cohls.Synthesis.final)
      trace.Cohls.Runtime.total_minutes
  | Error e -> Alcotest.fail e

let test_runtime_bad_oracle () =
  let a = Assays.Gene_expression.base () in
  let r = Cohls.Synthesis.run a in
  match Cohls.Runtime.execute r.Cohls.Synthesis.final (fun _ -> 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oracle below minimum must be rejected"

let test_seeded_oracle_reproducible () =
  let a = Assays.Gene_expression.base () in
  let o1 = Cohls.Runtime.seeded_oracle ~seed:42 ~max_extra:10 a in
  let o2 = Cohls.Runtime.seeded_oracle ~seed:42 ~max_extra:10 a in
  let o3 = Cohls.Runtime.seeded_oracle ~seed:43 ~max_extra:10 a in
  check int_t "same seed same value" (o1 0) (o2 0);
  check bool "within range" true
    (let ops = Assay.operations a in
     let base = Operation.min_duration ops.(0) in
     o3 0 >= base && o3 0 <= base + 10)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "scheduling"
    [
      ( "binding",
        [
          Alcotest.test_case "component-oriented rule" `Quick test_component_oriented_rule;
          Alcotest.test_case "exact-signature rule" `Quick test_exact_rule_matches_resolved;
          Alcotest.test_case "minimal device" `Quick test_minimal_device;
          Alcotest.test_case "component rule is a superset" `Quick
            test_component_rule_superset_of_exact;
          Alcotest.test_case "device subsumption" `Quick test_device_subsumes;
        ] );
      ( "transport",
        [
          Alcotest.test_case "progression terms" `Quick test_progression_terms;
          Alcotest.test_case "constant" `Quick test_transport_constant;
          Alcotest.test_case "refine by usage" `Quick test_transport_refine;
          Alcotest.test_case "refine unbound" `Quick test_transport_refine_unbound;
          Alcotest.test_case "refine by layout" `Quick test_transport_of_layout;
        ] );
      ( "list-scheduler",
        [
          Alcotest.test_case "dependent chain" `Quick test_list_scheduler_chain;
          Alcotest.test_case "parallelism" `Quick test_list_scheduler_parallelism;
          Alcotest.test_case "device cap serialises" `Quick test_list_scheduler_cap;
          Alcotest.test_case "no device raises" `Quick test_list_scheduler_no_device;
          Alcotest.test_case "indeterminates last and distinct" `Quick
            test_indeterminate_last_and_distinct;
        ] );
      ("scheduler-props", qsuite [ prop_greedy_schedules_validate ]);
      ( "runtime",
        [
          Alcotest.test_case "deterministic oracle" `Quick test_runtime_deterministic;
          Alcotest.test_case "zero extra = fixed part" `Quick
            test_runtime_zero_extra_matches_fixed;
          Alcotest.test_case "bad oracle rejected" `Quick test_runtime_bad_oracle;
          Alcotest.test_case "seeded oracle reproducible" `Quick
            test_seeded_oracle_reproducible;
        ] );
    ]
