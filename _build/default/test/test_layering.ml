(* Tests for Algorithm 1: dependency-based allocation (Fig. 4),
   resource-based eviction via min-cut (Fig. 5), and the layering
   invariants on both the paper's assays and random DAGs. *)

open Microfluidics
module L = Cohls.Layering

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int
let int_list = Alcotest.(list int)

let det a name = Assay.add_operation a ~duration:(Operation.Fixed 5) name

let indet a name =
  Assay.add_operation a ~duration:(Operation.Indeterminate { min_minutes = 5 }) name

(* ---------- dependency-based allocation ---------- *)

let test_single_layer_when_no_indet () =
  let a = Assay.create ~name:"det-only" in
  let x = det a "x" in
  let y = det a "y" in
  Assay.add_dependency a ~parent:x ~child:y;
  let l = L.compute a in
  check int_t "one layer" 1 (L.layer_count l);
  check int_list "all ops" [ x; y ] l.L.layers.(0).L.ops;
  check bool "check" true (L.check l = Ok ())

let test_indet_descendants_pushed () =
  (* i -> d: the descendant of an indeterminate op goes to the next layer *)
  let a = Assay.create ~name:"push" in
  let i = indet a "i" in
  let d = det a "d" in
  Assay.add_dependency a ~parent:i ~child:d;
  let l = L.compute a in
  check int_t "two layers" 2 (L.layer_count l);
  check int_list "layer0" [ i ] l.L.layers.(0).L.ops;
  check int_list "layer0 indets" [ i ] l.L.layers.(0).L.indeterminate;
  check int_list "layer1" [ d ] l.L.layers.(1).L.ops;
  check bool "check" true (L.check l = Ok ())

let test_fig4_style_selection () =
  (* Two indeterminate ops in a chain: only the one without an
     indeterminate ancestor joins the first layer. An unrelated determinate
     op stays in layer 0 (maximum-independent-set behaviour). *)
  let a = Assay.create ~name:"fig4" in
  let i1 = indet a "i1" in
  let mid = det a "mid" in
  let i2 = indet a "i2" in
  let free = det a "free" in
  Assay.add_dependency a ~parent:i1 ~child:mid;
  Assay.add_dependency a ~parent:mid ~child:i2;
  let l = L.compute a in
  check int_t "two layers" 2 (L.layer_count l);
  check int_list "layer0 keeps i1 and free op" [ i1; free ] l.L.layers.(0).L.ops;
  check int_list "layer1 gets the chain tail" [ mid; i2 ] l.L.layers.(1).L.ops;
  check int_list "i2 is layer1's indeterminate" [ i2 ] l.L.layers.(1).L.indeterminate;
  check bool "check" true (L.check l = Ok ())

let test_sibling_indets_share_layer () =
  (* Independent indeterminate ops run in parallel in one layer. *)
  let a = Assay.create ~name:"siblings" in
  let i1 = indet a "i1" in
  let i2 = indet a "i2" in
  let i3 = indet a "i3" in
  ignore (i1, i2, i3);
  let l = L.compute a in
  check int_t "one layer" 1 (L.layer_count l);
  check int_t "three indets" 3 (List.length l.L.layers.(0).L.indeterminate)

(* ---------- resource-based eviction (Fig. 5) ---------- *)

(* Fig. 5 selection: o1 (storage 1, moves nothing) is evicted before o3
   (storage 1, moves 2 ancestors) and before o2 (storage 2). *)
let fig5_assay () =
  let a = Assay.create ~name:"fig5" in
  let a1 = det a "a1" in
  let o1 = indet a "o1" in
  Assay.add_dependency a ~parent:a1 ~child:o1;
  let a2 = det a "a2" in
  let a3 = det a "a3" in
  let o2 = indet a "o2" in
  Assay.add_dependency a ~parent:a2 ~child:o2;
  Assay.add_dependency a ~parent:a3 ~child:o2;
  let a4 = det a "a4" in
  let a5 = det a "a5" in
  let o3 = indet a "o3" in
  Assay.add_dependency a ~parent:a4 ~child:a5;
  Assay.add_dependency a ~parent:a5 ~child:o3;
  Assay.add_dependency a ~parent:a4 ~child:o3;
  (a, o1, o2, o3)

let test_fig5_eviction_order () =
  let a, o1, o2, o3 = fig5_assay () in
  (* threshold 2: exactly one indeterminate op must leave; it must be o1
     (cheapest cut, fewest moved ancestors) *)
  let l = L.compute ~threshold:2 a in
  check bool "o1 evicted" true (l.L.layer_of_op.(o1) > 0);
  check int_t "o2 stays" 0 l.L.layer_of_op.(o2);
  check int_t "o3 stays" 0 l.L.layer_of_op.(o3);
  check bool "o1's ancestor stays (its output is stored)" true
    (l.L.layer_of_op.(o1) > 0);
  check bool "check" true (L.check l = Ok ())

let test_fig5_eviction_to_one () =
  let a, o1, o2, o3 = fig5_assay () in
  (* threshold 1: o1 goes first, then o3 (cut cost 1 via moving its
     ancestors beats o2's cost 2); o2 remains *)
  let l = L.compute ~threshold:1 a in
  check int_t "o2 is the survivor" 0 l.L.layer_of_op.(o2);
  check bool "o1 evicted" true (l.L.layer_of_op.(o1) > 0);
  check bool "o3 evicted" true (l.L.layer_of_op.(o3) > 0);
  check int_t "layer0 has exactly 1 indet" 1
    (List.length l.L.layers.(0).L.indeterminate);
  check bool "check" true (L.check l = Ok ())

let test_eviction_storage_recorded () =
  let a, o1, _, _ = fig5_assay () in
  let l = L.compute ~threshold:2 a in
  (* a1 stays in layer 0 while o1 moved: the a1 -> o1 transfer is stored *)
  let stored = l.L.layers.(0).L.stored_transfers in
  check bool "a1->o1 stored" true (List.exists (fun (_, c) -> c = o1) stored)

let test_threshold_validation () =
  let a = Assay.create ~name:"t" in
  ignore (det a "x");
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Layering.compute: threshold must be >= 1") (fun () ->
      ignore (L.compute ~threshold:0 a))

(* ---------- paper test cases ---------- *)

let test_case2_structure () =
  let l = L.compute (Assays.Gene_expression.testcase ()) in
  check int_t "two layers" 2 (L.layer_count l);
  check int_t "layer0 = 10 captures" 10 (List.length l.L.layers.(0).L.ops);
  check int_t "layer0 all indet" 10 (List.length l.L.layers.(0).L.indeterminate);
  check int_t "layer1 = 60 det ops" 60 (List.length l.L.layers.(1).L.ops);
  check int_t "layer1 no indets" 0 (List.length l.L.layers.(1).L.indeterminate);
  check bool "check" true (L.check l = Ok ())

let test_case3_structure () =
  let l = L.compute (Assays.Rt_qpcr.testcase ()) in
  (* 20 indeterminate captures with threshold 10: three layers as in the
     paper's 603m+I1+I2 *)
  check int_t "three layers" 3 (L.layer_count l);
  check int_t "layer0 = 10 captures" 10 (List.length l.L.layers.(0).L.indeterminate);
  check int_t "layer1 = 10 captures" 10 (List.length l.L.layers.(1).L.indeterminate);
  check int_t "layer2 no indets" 0 (List.length l.L.layers.(2).L.indeterminate);
  check int_t "all 120 ops covered" 120
    (Array.fold_left (fun acc l -> acc + List.length l.L.ops) 0 l.L.layers);
  check bool "check" true (L.check l = Ok ())

let test_case1_single_layer () =
  let l = L.compute (Assays.Kinase.testcase ()) in
  check int_t "one layer (no indets)" 1 (L.layer_count l);
  check bool "check" true (L.check l = Ok ())

let test_threshold_sweep_case3 () =
  (* a smaller threshold forces more layers, never fewer *)
  let a = Assays.Rt_qpcr.testcase () in
  let counts =
    List.map (fun t -> L.layer_count (L.compute ~threshold:t a)) [ 2; 5; 10; 20 ]
  in
  (match counts with
   | [ c2; c5; c10; c20 ] ->
     check bool "monotone" true (c2 >= c5 && c5 >= c10 && c10 >= c20);
     check int_t "threshold 20 gives 2 layers" 2 c20
   | _ -> Alcotest.fail "unexpected");
  List.iter
    (fun t -> check bool "valid" true (L.check (L.compute ~threshold:t a) = Ok ()))
    [ 2; 5; 10; 20 ]

(* ---------- properties on random assays ---------- *)

let arb_assay =
  QCheck.make
    QCheck.Gen.(
      pair (int_range 1 99999) (int_range 2 40) >>= fun (seed, n) ->
      float_range 0.0 0.5 >>= fun indet_frac ->
      return (seed, n, indet_frac))
    ~print:(fun (seed, n, f) -> Printf.sprintf "seed=%d n=%d indet=%.2f" seed n f)

let layering_of (seed, n, indet_frac) =
  let params =
    { Assays.Random_assay.default_params with
      Assays.Random_assay.op_count = n;
      indeterminate_fraction = indet_frac }
  in
  let a = Assays.Random_assay.generate ~seed params in
  (a, L.compute ~threshold:3 a)

let prop_layering_invariants =
  QCheck.Test.make ~name:"layering invariants on random assays" ~count:200 arb_assay
    (fun spec ->
      let _, l = layering_of spec in
      L.check ~strict:false l = Ok ())

let prop_layering_partitions =
  QCheck.Test.make ~name:"layers partition the operation set" ~count:200 arb_assay
    (fun spec ->
      let a, l = layering_of spec in
      let n = Assay.operation_count a in
      let covered =
        Array.fold_left (fun acc lay -> acc + List.length lay.L.ops) 0 l.L.layers
      in
      covered = n && Array.for_all (fun x -> x >= 0) l.L.layer_of_op)

let prop_indet_descendants_later =
  QCheck.Test.make ~name:"descendants of indeterminate ops are strictly later"
    ~count:200 arb_assay (fun spec ->
      let a, l = layering_of spec in
      let g = Assay.dependency_graph a in
      let ops = Assay.operations a in
      let ok = ref true in
      Flowgraph.Digraph.iter_edges
        (fun u v ->
          if Operation.is_indeterminate ops.(u) && l.L.layer_of_op.(u) >= l.L.layer_of_op.(v)
          then ok := false)
        g;
      !ok)

let prop_deterministic =
  QCheck.Test.make ~name:"layering is deterministic" ~count:50 arb_assay (fun spec ->
      let _, l1 = layering_of spec in
      let _, l2 = layering_of spec in
      Array.for_all2
        (fun (a : L.layer) (b : L.layer) -> a.L.ops = b.L.ops)
        l1.L.layers l2.L.layers)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "layering"
    [
      ( "dependency-based",
        [
          Alcotest.test_case "single layer without indets" `Quick
            test_single_layer_when_no_indet;
          Alcotest.test_case "indet descendants pushed" `Quick
            test_indet_descendants_pushed;
          Alcotest.test_case "Fig. 4 selection" `Quick test_fig4_style_selection;
          Alcotest.test_case "sibling indets share layer" `Quick
            test_sibling_indets_share_layer;
        ] );
      ( "resource-based",
        [
          Alcotest.test_case "Fig. 5 eviction order" `Quick test_fig5_eviction_order;
          Alcotest.test_case "Fig. 5 eviction to one" `Quick test_fig5_eviction_to_one;
          Alcotest.test_case "stored transfers recorded" `Quick
            test_eviction_storage_recorded;
          Alcotest.test_case "threshold validation" `Quick test_threshold_validation;
        ] );
      ( "paper-cases",
        [
          Alcotest.test_case "case 1: single layer" `Quick test_case1_single_layer;
          Alcotest.test_case "case 2: 10+60" `Quick test_case2_structure;
          Alcotest.test_case "case 3: 3 layers" `Quick test_case3_structure;
          Alcotest.test_case "threshold sweep" `Quick test_threshold_sweep_case3;
        ] );
      ( "props",
        qsuite
          [
            prop_layering_invariants;
            prop_layering_partitions;
            prop_indet_descendants_later;
            prop_deterministic;
          ] );
    ]
