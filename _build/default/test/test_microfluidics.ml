(* Tests for the microfluidic domain model: components, general devices,
   component-oriented operations, assays, cost tables, chip inventories and
   the grid layout estimator. *)

open Microfluidics
open Components

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int
let str = Alcotest.string

(* ---------- components ---------- *)

let test_capacity_order () =
  check bool "large > tiny" true (Capacity.compare Capacity.Large Capacity.Tiny > 0);
  check bool "medium > small" true (Capacity.compare Capacity.Medium Capacity.Small > 0);
  check bool "equal" true (Capacity.equal Capacity.Small Capacity.Small);
  check int_t "all four" 4 (List.length Capacity.all)

let test_container_capacities () =
  check bool "ring large ok" true (Container.capacity_allowed Container.Ring Capacity.Large);
  check bool "ring tiny not" false (Container.capacity_allowed Container.Ring Capacity.Tiny);
  check bool "chamber large not" false
    (Container.capacity_allowed Container.Chamber Capacity.Large);
  check bool "chamber tiny ok" true
    (Container.capacity_allowed Container.Chamber Capacity.Tiny);
  check int_t "ring classes" 3 (List.length (Container.allowed_capacities Container.Ring))

let test_capacity_volumes () =
  check bool "2 nl is tiny" true (Capacity.of_volume 2.0 = Some Capacity.Tiny);
  check bool "10 nl is small" true (Capacity.of_volume 10.0 = Some Capacity.Small);
  check bool "50 nl is medium" true (Capacity.of_volume 50.0 = Some Capacity.Medium);
  check bool "300 nl is large" true (Capacity.of_volume 300.0 = Some Capacity.Large);
  check bool "500 nl still large (inclusive top)" true
    (Capacity.of_volume 500.0 = Some Capacity.Large);
  check bool "too big" true (Capacity.of_volume 1000.0 = None);
  check bool "non-positive" true (Capacity.of_volume 0.0 = None);
  (* ranges tile without gaps *)
  List.iter
    (fun c ->
      let lo, hi = Capacity.volume_range c in
      check bool "lo < hi" true (lo < hi);
      check bool "lo maps to c" true (Capacity.of_volume lo = Some c);
      if c <> Capacity.Large then
        check bool "hi maps to next class" true (Capacity.of_volume hi <> Some c))
    Capacity.all

let test_accessory_codes () =
  let codes = List.map Accessory.short_code Accessory.all in
  check (Alcotest.list str) "paper's p h o s c" [ "p"; "h"; "o"; "s"; "c" ] codes;
  let s = Accessory.set_of_list [ Accessory.Pump; Accessory.Pump; Accessory.Sieve_valve ] in
  check int_t "set dedupes" 2 (Accessory.Set.cardinal s)

(* ---------- device ---------- *)

let test_device_make () =
  let d =
    Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Medium
      ~accessories:[ Accessory.Pump ]
  in
  check str "signature" "ring/medium{p}" (Device.signature d);
  Alcotest.check_raises "ring tiny rejected"
    (Invalid_argument "Device.make: ring cannot have tiny capacity") (fun () ->
      ignore
        (Device.make ~id:1 ~container:Container.Ring ~capacity:Capacity.Tiny
           ~accessories:[]))

let test_device_equal_config () =
  let mk id accs =
    Device.make ~id ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:accs
  in
  check bool "same config, different id" true
    (Device.equal_config (mk 0 [ Accessory.Pump ]) (mk 7 [ Accessory.Pump ]));
  check bool "different accessories" false
    (Device.equal_config (mk 0 [ Accessory.Pump ]) (mk 0 []))

(* ---------- operation ---------- *)

let mixer_device =
  Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Medium
    ~accessories:[ Accessory.Pump; Accessory.Sieve_valve ]

let test_operation_compat () =
  (* the §3.2 example: o1 = ring + {sieve, pump}; o2 = any + {sieve} *)
  let o1 =
    Operation.make ~id:0 ~container:Container.Ring
      ~accessories:[ Accessory.Sieve_valve; Accessory.Pump ]
      ~duration:(Operation.Fixed 5) "o1"
  in
  let o2 =
    Operation.make ~id:1 ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 5) "o2"
  in
  check bool "o1 fits mixer" true (Operation.compatible_with_device o1 mixer_device);
  check bool "o2 fits mixer too" true (Operation.compatible_with_device o2 mixer_device);
  check bool "o1 subsumes o2" true (Operation.requirements_subsume o1 o2);
  check bool "o2 does not subsume o1" false (Operation.requirements_subsume o2 o1)

let test_operation_capacity_match () =
  let o =
    Operation.make ~id:0 ~capacity:Capacity.Large ~duration:(Operation.Fixed 5) "big"
  in
  check bool "large op needs large device" false
    (Operation.compatible_with_device o mixer_device);
  let big =
    Device.make ~id:1 ~container:Container.Ring ~capacity:Capacity.Large
      ~accessories:[]
  in
  check bool "fits large ring" true (Operation.compatible_with_device o big)

let test_operation_validation () =
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Operation.make: non-positive duration") (fun () ->
      ignore (Operation.make ~id:0 ~duration:(Operation.Fixed 0) "bad"));
  Alcotest.check_raises "zero min duration"
    (Invalid_argument "Operation.make: non-positive minimum duration") (fun () ->
      ignore
        (Operation.make ~id:0 ~duration:(Operation.Indeterminate { min_minutes = 0 }) "bad"));
  Alcotest.check_raises "ring/tiny op"
    (Invalid_argument "Operation.make: ring cannot have tiny capacity") (fun () ->
      ignore
        (Operation.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Tiny
           ~duration:(Operation.Fixed 1) "bad"))

let test_operation_duration () =
  let det = Operation.make ~id:0 ~duration:(Operation.Fixed 7) "d" in
  let ind = Operation.make ~id:1 ~duration:(Operation.Indeterminate { min_minutes = 3 }) "i" in
  check bool "det" false (Operation.is_indeterminate det);
  check bool "ind" true (Operation.is_indeterminate ind);
  check int_t "det dur" 7 (Operation.min_duration det);
  check int_t "ind min dur" 3 (Operation.min_duration ind)

let test_requirement_signature () =
  let o =
    Operation.make ~id:0 ~container:Container.Chamber ~capacity:Capacity.Small
      ~accessories:[ Accessory.Optical_system; Accessory.Pump ]
      ~duration:(Operation.Fixed 1) "sig"
  in
  check str "signature" "chamber/small{po}" (Operation.requirement_signature o);
  let unspecified = Operation.make ~id:1 ~duration:(Operation.Fixed 1) "u" in
  check str "wildcards" "*/*{}" (Operation.requirement_signature unspecified)

(* ---------- assay ---------- *)

let test_assay_build () =
  let a = Assay.create ~name:"t" in
  let x = Assay.add_operation a ~duration:(Operation.Fixed 5) "x" in
  let y = Assay.add_operation a ~duration:(Operation.Fixed 5) "y" in
  Assay.add_dependency a ~parent:x ~child:y;
  check int_t "count" 2 (Assay.operation_count a);
  check (Alcotest.list int_t) "children" [ y ] (Assay.children a x);
  check (Alcotest.list int_t) "parents" [ x ] (Assay.parents a y);
  check bool "validate" true (Assay.validate a = Ok ())

let test_assay_cycle_rejected () =
  let a = Assay.create ~name:"t" in
  let x = Assay.add_operation a ~duration:(Operation.Fixed 5) "x" in
  let y = Assay.add_operation a ~duration:(Operation.Fixed 5) "y" in
  Assay.add_dependency a ~parent:x ~child:y;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Assay.add_dependency: edge would close a cycle") (fun () ->
      Assay.add_dependency a ~parent:y ~child:x);
  Alcotest.check_raises "self"
    (Invalid_argument "Assay.add_dependency: self-dependency") (fun () ->
      Assay.add_dependency a ~parent:x ~child:x)

let test_assay_replicate () =
  let a = Assay.create ~name:"t" in
  let x = Assay.add_operation a ~duration:(Operation.Fixed 5) "x" in
  let y = Assay.add_operation a ~duration:(Operation.Indeterminate { min_minutes = 2 }) "y" in
  Assay.add_dependency a ~parent:x ~child:y;
  let r = Assay.replicate a ~copies:3 in
  check int_t "ops tripled" 6 (Assay.operation_count r);
  check int_t "indeterminates tripled" 3 (Assay.indeterminate_count r);
  (* instances are independent *)
  check (Alcotest.list int_t) "no cross deps" [ 3 ] (Assay.children r 2);
  check bool "still valid" true (Assay.validate r = Ok ());
  Alcotest.check_raises "bad copies"
    (Invalid_argument "Assay.replicate: copies must be positive") (fun () ->
      ignore (Assay.replicate a ~copies:0))

let test_assay_critical_path () =
  let a = Assay.create ~name:"t" in
  let x = Assay.add_operation a ~duration:(Operation.Fixed 5) "x" in
  let y = Assay.add_operation a ~duration:(Operation.Fixed 7) "y" in
  let z = Assay.add_operation a ~duration:(Operation.Fixed 11) "z" in
  Assay.add_dependency a ~parent:x ~child:y;
  Assay.add_dependency a ~parent:x ~child:z;
  check int_t "critical path" 16 (Assay.critical_path_minutes a)

let test_assay_empty_invalid () =
  let a = Assay.create ~name:"empty" in
  check bool "empty invalid" true (Assay.validate a <> Ok ())

(* ---------- paper test cases ---------- *)

let test_paper_cases_shape () =
  let c1 = Assays.Kinase.testcase () in
  check int_t "case1 ops" 16 (Assay.operation_count c1);
  check int_t "case1 indets" 0 (Assay.indeterminate_count c1);
  let c2 = Assays.Gene_expression.testcase () in
  check int_t "case2 ops" 70 (Assay.operation_count c2);
  check int_t "case2 indets" 10 (Assay.indeterminate_count c2);
  let c3 = Assays.Rt_qpcr.testcase () in
  check int_t "case3 ops" 120 (Assay.operation_count c3);
  check int_t "case3 indets" 20 (Assay.indeterminate_count c3);
  List.iter
    (fun a -> check bool "valid" true (Assay.validate a = Ok ()))
    [ c1; c2; c3 ]

(* ---------- cost ---------- *)

let test_cost_tables () =
  let c = Cost.default in
  check bool "ring medium > chamber medium (area)" true
    (Cost.area c Container.Ring Capacity.Medium
     > Cost.area c Container.Chamber Capacity.Medium);
  check bool "larger costs more" true
    (Cost.area c Container.Ring Capacity.Large > Cost.area c Container.Ring Capacity.Small);
  Alcotest.check_raises "illegal combo"
    (Invalid_argument "Cost.area: capacity not allowed for container") (fun () ->
      ignore (Cost.area c Container.Ring Capacity.Tiny))

let test_cost_device () =
  let c = Cost.default in
  let bare =
    Device.make ~id:0 ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[]
  in
  let loaded =
    Device.make ~id:1 ~container:Container.Chamber ~capacity:Capacity.Tiny
      ~accessories:[ Accessory.Pump; Accessory.Optical_system ]
  in
  check bool "accessories add processing" true
    (Cost.device_processing c loaded > Cost.device_processing c bare);
  check int_t "accessories add no area" (Cost.device_area c bare)
    (Cost.device_area c loaded)

(* ---------- chip ---------- *)

let test_chip () =
  let chip = Chip.create () in
  let d0 = Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Small ~accessories:[ Accessory.Pump ] in
  let d1 = Device.make ~id:1 ~container:Container.Chamber ~capacity:Capacity.Tiny ~accessories:[] in
  Chip.add_device chip d0;
  Chip.add_device chip d1;
  check int_t "devices" 2 (Chip.device_count chip);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Chip.add_device: duplicate device id") (fun () ->
      Chip.add_device chip d0);
  Chip.note_transport chip ~src:0 ~dst:1;
  Chip.note_transport chip ~src:1 ~dst:0 (* same unordered pair *);
  Chip.note_transport chip ~src:0 ~dst:0 (* same device: ignored *);
  check int_t "one path" 1 (Chip.path_count chip);
  (match Chip.path_usage chip with
   | [ ((0, 1), 2) ] -> ()
   | _ -> Alcotest.fail "expected path (0,1) used twice");
  check bool "area positive" true (Chip.total_area Cost.default chip > 0);
  Alcotest.check_raises "unknown device"
    (Invalid_argument "Chip.note_transport: unknown source device") (fun () ->
      Chip.note_transport chip ~src:9 ~dst:1)

(* ---------- layout ---------- *)

let test_layout_placement () =
  let usage = [ ((0, 1), 10); ((1, 2), 5); ((2, 3), 1) ] in
  let l = Layout.place ~device_ids:[ 0; 1; 2; 3 ] ~path_usage:usage in
  check int_t "grid side" 2 l.Layout.side;
  check int_t "all placed" 4 (List.length l.Layout.placements);
  (* heaviest pair adjacent *)
  (match Layout.path_length l 0 1 with
   | Some len -> check int_t "hot pair adjacent" 1 len
   | None -> Alcotest.fail "missing path length");
  check bool "wirelength positive" true (Layout.total_wirelength l ~path_usage:usage > 0)

let test_layout_usage_rank () =
  let usage = [ ((0, 1), 10); ((1, 2), 5) ] in
  check int_t "rank of hottest" 0 (Layout.usage_rank ~path_usage:usage (0, 1));
  check int_t "rank of second" 1 (Layout.usage_rank ~path_usage:usage (2, 1));
  check int_t "unknown ranks last" 2 (Layout.usage_rank ~path_usage:usage (0, 9))

let test_layout_single_device () =
  let l = Layout.place ~device_ids:[ 42 ] ~path_usage:[] in
  check int_t "side 1" 1 l.Layout.side;
  check int_t "one placement" 1 (List.length l.Layout.placements)

let () =
  Alcotest.run "microfluidics"
    [
      ( "components",
        [
          Alcotest.test_case "capacity order" `Quick test_capacity_order;
          Alcotest.test_case "capacity volumes" `Quick test_capacity_volumes;
          Alcotest.test_case "container capacities" `Quick test_container_capacities;
          Alcotest.test_case "accessory codes" `Quick test_accessory_codes;
        ] );
      ( "device",
        [
          Alcotest.test_case "make/signature" `Quick test_device_make;
          Alcotest.test_case "equal config" `Quick test_device_equal_config;
        ] );
      ( "operation",
        [
          Alcotest.test_case "compatibility (Fig. 6 example)" `Quick test_operation_compat;
          Alcotest.test_case "capacity matching" `Quick test_operation_capacity_match;
          Alcotest.test_case "validation" `Quick test_operation_validation;
          Alcotest.test_case "durations" `Quick test_operation_duration;
          Alcotest.test_case "requirement signature" `Quick test_requirement_signature;
        ] );
      ( "assay",
        [
          Alcotest.test_case "build" `Quick test_assay_build;
          Alcotest.test_case "cycle rejected" `Quick test_assay_cycle_rejected;
          Alcotest.test_case "replicate" `Quick test_assay_replicate;
          Alcotest.test_case "critical path" `Quick test_assay_critical_path;
          Alcotest.test_case "empty invalid" `Quick test_assay_empty_invalid;
          Alcotest.test_case "paper cases 16/70/120" `Quick test_paper_cases_shape;
        ] );
      ( "cost",
        [
          Alcotest.test_case "tables" `Quick test_cost_tables;
          Alcotest.test_case "device costs" `Quick test_cost_device;
        ] );
      ("chip", [ Alcotest.test_case "inventory and paths" `Quick test_chip ]);
      ( "layout",
        [
          Alcotest.test_case "placement" `Quick test_layout_placement;
          Alcotest.test_case "usage rank" `Quick test_layout_usage_rank;
          Alcotest.test_case "single device" `Quick test_layout_single_device;
        ] );
    ]
