(* Unit and property tests for the graph substrate: digraphs, DAG
   algorithms and the Ford–Fulkerson max-flow / min-cut kernel the layering
   algorithm depends on. *)

module G = Flowgraph.Digraph
module Dag = Flowgraph.Dag
module F = Flowgraph.Maxflow

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int
let int_list = Alcotest.(list int)

(* ---------- Digraph ---------- *)

let test_digraph_basic () =
  let g = G.create 4 in
  check int_t "vertices" 4 (G.vertex_count g);
  check int_t "no edges" 0 (G.edge_count g);
  G.add_edge g 0 1;
  G.add_edge g 0 2;
  G.add_edge g 0 1 (* duplicate ignored *);
  check int_t "edges" 2 (G.edge_count g);
  check bool "mem" true (G.mem_edge g 0 1);
  check bool "not mem" false (G.mem_edge g 1 0);
  check int_list "succ" [ 1; 2 ] (G.succ g 0);
  check int_list "pred" [ 0 ] (G.pred g 1);
  check int_t "out degree" 2 (G.out_degree g 0);
  check int_t "in degree" 1 (G.in_degree g 2);
  G.remove_edge g 0 1;
  check bool "removed" false (G.mem_edge g 0 1);
  check int_t "edges after remove" 1 (G.edge_count g)

let test_digraph_errors () =
  let g = G.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop")
    (fun () -> G.add_edge g 0 0);
  Alcotest.check_raises "range" (Invalid_argument "Digraph: vertex out of range")
    (fun () -> G.add_edge g 0 5);
  Alcotest.check_raises "negative size" (Invalid_argument "Digraph.create: negative size")
    (fun () -> ignore (G.create (-1)))

let test_digraph_transpose () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let t = G.transpose g in
  check bool "reversed" true (G.mem_edge t 1 0 && G.mem_edge t 2 1);
  check int_t "same count" (G.edge_count g) (G.edge_count t);
  let c = G.copy g in
  G.add_edge c 0 2;
  check bool "copy independent" false (G.mem_edge g 0 2)

let test_digraph_edges_order () =
  let g = G.of_edges 3 [ (2, 1); (0, 2); (0, 1) ] in
  check (Alcotest.list (Alcotest.pair int_t int_t)) "ascending"
    [ (0, 1); (0, 2); (2, 1) ] (G.edges g)

(* ---------- Dag ---------- *)

let diamond () = G.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_topo_order () =
  check int_list "diamond" [ 0; 1; 2; 3 ] (Dag.topological_order (diamond ()));
  check int_list "empty" [] (Dag.topological_order (G.create 0));
  check int_list "isolated" [ 0; 1; 2 ] (Dag.topological_order (G.create 3))

let test_topo_cycle () =
  let g = G.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  (match Dag.topological_order g with
   | _ -> Alcotest.fail "expected Cycle"
   | exception Dag.Cycle cyc -> check bool "cycle non-empty" true (List.length cyc >= 1));
  check bool "is_dag false" false (Dag.is_dag g);
  check bool "is_dag true" true (Dag.is_dag (diamond ()))

let test_descendants_ancestors () =
  let g = diamond () in
  check int_list "desc 0" [ 1; 2; 3 ] (Dag.descendants g 0);
  check int_list "desc 3" [] (Dag.descendants g 3);
  check int_list "anc 3" [ 0; 1; 2 ] (Dag.ancestors g 3);
  check int_list "anc 0" [] (Dag.ancestors g 0);
  let r = Dag.reachable_set g 1 in
  check bool "reach self" true r.(1);
  check bool "reach 3" true r.(3);
  check bool "not reach 2" false r.(2)

let test_longest_path () =
  let g = diamond () in
  let d = Dag.longest_path_lengths g ~weight:(fun _ -> 1) in
  check int_t "sink depth" 3 d.(3);
  check int_t "source depth" 1 d.(0);
  let d2 = Dag.longest_path_lengths g ~weight:(fun v -> if v = 1 then 10 else 1) in
  check int_t "weighted" 12 d2.(3)

let test_sources_sinks () =
  let g = diamond () in
  check int_list "sources" [ 0 ] (Dag.sources g);
  check int_list "sinks" [ 3 ] (Dag.sinks g)

let test_transitive_closure () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let tc = Dag.transitive_closure g in
  check bool "0->2 added" true (G.mem_edge tc 0 2)

let test_induced_subgraph () =
  let g = diamond () in
  let h, old_of_new, new_of_old = Dag.induced_subgraph g ~keep:(fun v -> v <> 1) in
  check int_t "size" 3 (G.vertex_count h);
  check int_t "dropped" (-1) new_of_old.(1);
  check int_t "mapping" 2 old_of_new.(new_of_old.(2));
  check bool "edge kept" true (G.mem_edge h new_of_old.(0) new_of_old.(2));
  check bool "edge through dropped vertex gone" false
    (G.mem_edge h new_of_old.(0) new_of_old.(3))

(* ---------- Maxflow ---------- *)

(* CLRS figure: max flow 23. *)
let clrs_network () =
  let n = F.create 6 in
  F.add_edge n ~src:0 ~dst:1 ~cap:16;
  F.add_edge n ~src:0 ~dst:2 ~cap:13;
  F.add_edge n ~src:1 ~dst:3 ~cap:12;
  F.add_edge n ~src:2 ~dst:1 ~cap:4;
  F.add_edge n ~src:2 ~dst:4 ~cap:14;
  F.add_edge n ~src:3 ~dst:2 ~cap:9;
  F.add_edge n ~src:3 ~dst:5 ~cap:20;
  F.add_edge n ~src:4 ~dst:3 ~cap:7;
  F.add_edge n ~src:4 ~dst:5 ~cap:4;
  n

let test_maxflow_clrs () =
  check int_t "clrs" 23 (F.max_flow (clrs_network ()) ~source:0 ~sink:5)

let test_maxflow_disconnected () =
  let n = F.create 3 in
  F.add_edge n ~src:0 ~dst:1 ~cap:5;
  check int_t "no path" 0 (F.max_flow n ~source:0 ~sink:2)

let test_maxflow_parallel_edges () =
  let n = F.create 2 in
  F.add_edge n ~src:0 ~dst:1 ~cap:3;
  F.add_edge n ~src:0 ~dst:1 ~cap:4;
  check int_t "merged" 7 (F.max_flow n ~source:0 ~sink:1)

let test_maxflow_rerun () =
  let n = clrs_network () in
  check int_t "first" 23 (F.max_flow n ~source:0 ~sink:5);
  check int_t "second run identical" 23 (F.max_flow n ~source:0 ~sink:5)

let test_mincut_value_and_side () =
  let n = clrs_network () in
  let value, side = F.min_cut n ~source:0 ~sink:5 in
  check int_t "value" 23 value;
  check bool "source on source side" true side.(0);
  check bool "sink on sink side" false side.(5);
  let crossing = F.cut_edges n side in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 crossing in
  check int_t "cut capacity = flow" 23 total

let test_mincut_nearest_sink () =
  (* Path a -> b -> c with unit capacities everywhere: any single edge is a
     min cut; the nearest-sink variant must put only the sink on the sink
     side. *)
  let n = F.create 3 in
  F.add_edge n ~src:0 ~dst:1 ~cap:1;
  F.add_edge n ~src:1 ~dst:2 ~cap:1;
  let value, side = F.min_cut_nearest_sink n ~source:0 ~sink:2 in
  check int_t "value" 1 value;
  check bool "middle vertex on source side" true side.(1);
  check bool "sink on sink side" false side.(2);
  (* the source-nearest variant puts the middle vertex on the sink side *)
  let n2 = F.create 3 in
  F.add_edge n2 ~src:0 ~dst:1 ~cap:1;
  F.add_edge n2 ~src:1 ~dst:2 ~cap:1;
  let _, side' = F.min_cut n2 ~source:0 ~sink:2 in
  check bool "source-side cut differs" false side'.(1)

let test_maxflow_errors () =
  let n = F.create 2 in
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      F.add_edge n ~src:0 ~dst:1 ~cap:(-1));
  Alcotest.check_raises "self loop" (Invalid_argument "Maxflow.add_edge: self-loop")
    (fun () -> F.add_edge n ~src:0 ~dst:0 ~cap:1);
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Maxflow.max_flow: source = sink") (fun () ->
      ignore (F.max_flow n ~source:0 ~sink:0))

(* ---------- properties ---------- *)

(* Random small DAG via forward edges. *)
let arb_dag =
  let gen =
    QCheck.Gen.(
      int_range 2 10 >>= fun n ->
      list_size (int_range 0 (n * 2)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun raw ->
      let edges =
        List.filter_map (fun (a, b) -> if a < b then Some (a, b) else None) raw
      in
      return (n, edges))
  in
  QCheck.make gen ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects every edge" ~count:300 arb_dag
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let order = Dag.topological_order g in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all (fun (a, b) -> pos.(a) < pos.(b)) edges)

let prop_ancestors_dual_descendants =
  QCheck.Test.make ~name:"v in descendants(u) iff u in ancestors(v)" ~count:200 arb_dag
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> List.mem v (Dag.descendants g u) = List.mem u (Dag.ancestors g v))
            (List.init n Fun.id))
        (List.init n Fun.id))

(* Random flow network: max-flow equals brute-force min-cut capacity. *)
let arb_network =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun n ->
      list_size (int_range 1 12)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 10))
      >>= fun edges -> return (n, edges))
  in
  QCheck.make gen ~print:(fun (n, e) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";" (List.map (fun (a, b, c) -> Printf.sprintf "%d-%d:%d" a b c) e)))

let brute_force_min_cut n edges ~source ~sink =
  let best = ref max_int in
  let subsets = 1 lsl n in
  for mask = 0 to subsets - 1 do
    if mask land (1 lsl source) <> 0 && mask land (1 lsl sink) = 0 then begin
      let cap =
        List.fold_left
          (fun acc (a, b, c) ->
            if a <> b && mask land (1 lsl a) <> 0 && mask land (1 lsl b) = 0 then acc + c
            else acc)
          0 edges
      in
      if cap < !best then best := cap
    end
  done;
  !best

let prop_maxflow_equals_mincut =
  QCheck.Test.make ~name:"max flow = brute-force min cut" ~count:300 arb_network
    (fun (n, edges) ->
      let net = F.create n in
      List.iter (fun (a, b, c) -> if a <> b then F.add_edge net ~src:a ~dst:b ~cap:c) edges;
      let flow = F.max_flow net ~source:0 ~sink:(n - 1) in
      flow = brute_force_min_cut n edges ~source:0 ~sink:(n - 1))

let prop_both_cuts_same_value =
  QCheck.Test.make ~name:"nearest-sink cut has the same value" ~count:200 arb_network
    (fun (n, edges) ->
      let mk () =
        let net = F.create n in
        List.iter
          (fun (a, b, c) -> if a <> b then F.add_edge net ~src:a ~dst:b ~cap:c)
          edges;
        net
      in
      let v1, _ = F.min_cut (mk ()) ~source:0 ~sink:(n - 1) in
      let v2, side2 = F.min_cut_nearest_sink (mk ()) ~source:0 ~sink:(n - 1) in
      (* and the reported side is a valid cut of that capacity *)
      let cap =
        List.fold_left
          (fun acc (a, b, c) ->
            if a <> b && side2.(a) && not side2.(b) then acc + c else acc)
          0 edges
      in
      v1 = v2 && cap = v2 && side2.(0) && not side2.(n - 1))

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "flowgraph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "errors" `Quick test_digraph_errors;
          Alcotest.test_case "transpose/copy" `Quick test_digraph_transpose;
          Alcotest.test_case "edges order" `Quick test_digraph_edges_order;
        ] );
      ( "dag",
        [
          Alcotest.test_case "topological order" `Quick test_topo_order;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "descendants/ancestors" `Quick test_descendants_ancestors;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "CLRS network" `Quick test_maxflow_clrs;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_maxflow_parallel_edges;
          Alcotest.test_case "rerun resets flow" `Quick test_maxflow_rerun;
          Alcotest.test_case "min cut value and side" `Quick test_mincut_value_and_side;
          Alcotest.test_case "nearest-sink cut" `Quick test_mincut_nearest_sink;
          Alcotest.test_case "errors" `Quick test_maxflow_errors;
        ] );
      ( "props",
        qsuite
          [
            prop_topo_respects_edges;
            prop_ancestors_dual_descendants;
            prop_maxflow_equals_mincut;
            prop_both_cuts_same_value;
          ] );
    ]
