(* Telemetry subsystem: spans, counters, histograms, exporters, and the
   pipeline counters that ride on them. All tests run in one process and
   share the global collector, so each starts with reset + enable and
   restores the wall clock when it installed a fake one. *)

let with_fixed_clock ?(step = 1.0) f =
  let t = ref 0.0 in
  Telemetry.Clock.set_source (fun () ->
      let v = !t in
      t := v +. step;
      v);
  Fun.protect ~finally:Telemetry.Clock.use_wall_clock f

let fresh () =
  Telemetry.enable ();
  Telemetry.reset ()

(* ------------------------------------------------- tiny JSON validator *)

(* Recursive-descent check that a string is one well-formed JSON value.
   Enough for "the exporters emit valid JSON" without a json dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and literal lit =
    String.iter (fun c -> expect c) lit
  and string_lit () =
    expect '"';
    let rec go () =
      if !fail then ()
      else
        match peek () with
        | None -> fail := true
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
             advance ();
             go ()
           | Some 'u' ->
             advance ();
             for _ = 1 to 4 do
               match peek () with
               | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
               | _ -> fail := true
             done;
             go ()
           | _ -> fail := true)
        | Some _ ->
          advance ();
          go ()
    in
    go ()
  and number () =
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail := true
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail := true
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          items ()
        | Some ']' -> advance ()
        | _ -> fail := true
      in
      items ()
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

(* ------------------------------------------------------------- spans *)

let test_span_nesting () =
  fresh ();
  with_fixed_clock (fun () ->
      Telemetry.reset ();
      let r =
        Telemetry.span "outer" (fun () ->
            Telemetry.span "inner1" (fun () -> ());
            Telemetry.span "inner2" ~attrs:[ ("k", "v") ] (fun () -> 41) + 1)
      in
      Alcotest.(check int) "span returns the body's value" 42 r;
      let sps = Telemetry.spans () in
      Alcotest.(check (list string))
        "start order" [ "outer"; "inner1"; "inner2" ]
        (List.map (fun s -> s.Telemetry.span_name) sps);
      Alcotest.(check (list int))
        "depths" [ 0; 1; 1 ]
        (List.map (fun s -> s.Telemetry.depth) sps);
      let outer = List.hd sps in
      let inner1 = List.nth sps 1 in
      Alcotest.(check bool) "outer spans its children" true
        (outer.Telemetry.duration_s > inner1.Telemetry.duration_s);
      let inner2 = List.nth sps 2 in
      Alcotest.(check (list (pair string string)))
        "attrs preserved" [ ("k", "v") ] inner2.Telemetry.span_attrs)

let test_span_exception () =
  fresh ();
  (try Telemetry.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Telemetry.spans ()));
  (* the depth stack must have been unwound *)
  Telemetry.span "after" (fun () -> ());
  let after = List.nth (Telemetry.spans ()) 1 in
  Alcotest.(check int) "depth back to 0" 0 after.Telemetry.depth

(* ----------------------------------------------------------- counters *)

let test_counters () =
  fresh ();
  Telemetry.count "b";
  Telemetry.count ~by:2 "a";
  Telemetry.count ~by:3 "a";
  Telemetry.count "b";
  Alcotest.(check (list (pair string int)))
    "aggregated and sorted"
    [ ("a", 5); ("b", 2) ]
    (Telemetry.counters ());
  Alcotest.(check int) "counter_value" 5 (Telemetry.counter_value "a");
  Alcotest.(check int) "missing counter is 0" 0 (Telemetry.counter_value "zz")

let test_histograms () =
  fresh ();
  Telemetry.observe ~buckets:[| 1.0; 10.0 |] "h" 0.5;
  Telemetry.observe "h" 5.0;
  Telemetry.observe "h" 50.0;
  match Telemetry.histograms () with
  | [ ("h", h) ] ->
    Alcotest.(check int) "samples" 3 h.Telemetry.samples;
    Alcotest.(check (float 1e-9)) "sum" 55.5 h.Telemetry.sum;
    Alcotest.(check (float 1e-9)) "min" 0.5 h.Telemetry.min_v;
    Alcotest.(check (float 1e-9)) "max" 50.0 h.Telemetry.max_v;
    Alcotest.(check (array int))
      "fixed buckets incl. overflow" [| 1; 1; 1 |] h.Telemetry.bucket_counts
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

(* ----------------------------------------------------------- disabled *)

let test_disabled_noop () =
  Telemetry.enable ();
  Telemetry.reset ();
  Telemetry.disable ();
  let r = Telemetry.span "s" (fun () -> 7) in
  Telemetry.count "c";
  Telemetry.observe "h" 1.0;
  Alcotest.(check int) "span still runs the body" 7 r;
  Alcotest.(check int) "no spans" 0 (List.length (Telemetry.spans ()));
  Alcotest.(check int) "no counters" 0 (List.length (Telemetry.counters ()));
  Alcotest.(check int) "no histograms" 0 (List.length (Telemetry.histograms ()));
  Telemetry.enable ()

(* ---------------------------------------------------------- exporters *)

let record_sample_run () =
  Telemetry.reset ();
  Telemetry.span "outer" ~attrs:[ ("case", "x\"y\\z") ] (fun () ->
      Telemetry.span "inner" (fun () -> ());
      Telemetry.count ~by:3 "nodes";
      Telemetry.observe "gap" 0.25)

let test_exporters_valid_and_deterministic () =
  fresh ();
  with_fixed_clock (fun () ->
      record_sample_run ();
      let trace1 = Telemetry.Export.chrome_trace () in
      let stats1 = Telemetry.Export.stats_json ~meta:[ ("k", Telemetry.Json.String "v") ] () in
      Alcotest.(check bool) "chrome trace is valid JSON" true (json_valid trace1);
      Alcotest.(check bool) "stats is valid JSON" true (json_valid stats1);
      (* identical run under the same fixed clock must serialise identically *)
      Telemetry.Clock.set_source
        (let t = ref 0.0 in
         fun () ->
           let v = !t in
           t := v +. 1.0;
           v);
      record_sample_run ();
      let trace2 = Telemetry.Export.chrome_trace () in
      let stats2 = Telemetry.Export.stats_json ~meta:[ ("k", Telemetry.Json.String "v") ] () in
      Alcotest.(check string) "chrome trace deterministic" trace1 trace2;
      Alcotest.(check string) "stats deterministic" stats1 stats2;
      (* spot-check content *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "trace names the span" true (contains trace1 "\"outer\"");
      Alcotest.(check bool) "attr escaped" true (contains trace1 "x\\\"y\\\\z");
      Alcotest.(check bool) "counter exported" true (contains stats1 "\"nodes\""))

let test_stats_table () =
  fresh ();
  with_fixed_clock (fun () ->
      record_sample_run ();
      let table = Telemetry.Export.stats_table () in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "table mentions %s" needle)
            true
            (let nh = String.length table and nn = String.length needle in
             let rec go i = i + nn <= nh && (String.sub table i nn = needle || go (i + 1)) in
             go 0))
        [ "outer"; "inner"; "nodes"; "gap" ])

(* --------------------------------------------- pipeline integration *)

let tiny_indeterminate_assay () =
  let open Microfluidics in
  let a = Assay.create ~name:"telemetry-regress" in
  let o1 = Assay.add_operation a ~duration:(Operation.Fixed 5) "prep" in
  let o2 =
    Assay.add_operation a
      ~duration:(Operation.Indeterminate { min_minutes = 5 })
      "culture"
  in
  let o3 = Assay.add_operation a ~duration:(Operation.Fixed 5) "detect" in
  Assay.add_dependency a ~parent:o1 ~child:o2;
  Assay.add_dependency a ~parent:o2 ~child:o3;
  a

let test_retry_oracle_interventions_reported () =
  fresh ();
  let assay = tiny_indeterminate_assay () in
  let r = Cohls.Synthesis.run assay in
  (* success probability low enough that some op retries under the fixed
     splitmix hash stream; scan seeds so the test is not hash-brittle *)
  let intervened seed =
    let oracle =
      Cohls.Runtime.retry_oracle ~seed ~success_probability:0.2
        ~attempt_minutes:7 assay
    in
    (match Cohls.Runtime.execute r.Cohls.Synthesis.final oracle with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "execute failed: %s" e);
    Telemetry.counter_value "runtime.retry_oracle.interventions" > 0
  in
  let any = List.exists intervened [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check bool) "retry oracle intervention counted" true any;
  Alcotest.(check bool) "oracle calls counted" true
    (Telemetry.counter_value "runtime.retry_oracle.calls" > 0);
  (* ...and the counter surfaces in both stats exports *)
  let table = Telemetry.Export.stats_table () in
  let json = Telemetry.Export.stats_json () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats table reports interventions" true
    (contains table "runtime.retry_oracle.interventions");
  Alcotest.(check bool) "stats json reports interventions" true
    (contains json "runtime.retry_oracle.interventions");
  Alcotest.(check bool) "stats json valid" true (json_valid json)

let test_synthesis_spans_recorded () =
  fresh ();
  let assay = tiny_indeterminate_assay () in
  ignore (Cohls.Synthesis.run assay);
  let names = List.map (fun s -> s.Telemetry.span_name) (Telemetry.spans ()) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "synthesis.run"; "synthesis.pass"; "layering.compute"; "layer.solve" ];
  Alcotest.(check bool) "per-layer solves counted" true
    (Telemetry.counter_value "layer.solves" > 0);
  Telemetry.disable ()

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter aggregation" `Quick test_counters;
          Alcotest.test_case "histogram buckets" `Quick test_histograms;
          Alcotest.test_case "disabled collector no-op" `Quick test_disabled_noop;
        ] );
      ( "export",
        [
          Alcotest.test_case "valid + deterministic JSON" `Quick
            test_exporters_valid_and_deterministic;
          Alcotest.test_case "ascii stats table" `Quick test_stats_table;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "retry oracle interventions in report" `Quick
            test_retry_oracle_interventions_reported;
          Alcotest.test_case "synthesis spans recorded" `Quick
            test_synthesis_spans_recorded;
        ] );
    ]
