(* Tests for the from-scratch LP/MILP solver: linear expressions, the model
   builder, both simplex instantiations, presolve and branch-and-bound. *)

module Q = Numeric.Rat
module E = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex
module BB = Lp.Branch_bound

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int
let str = Alcotest.string
let flt = Alcotest.float 1e-6

(* ---------- Linexpr ---------- *)

let test_linexpr_basic () =
  let e = E.add (E.iterm 2 0) (E.iterm 3 1) in
  check str "coeff x0" "2" (Q.to_string (E.coeff e 0));
  check str "coeff x1" "3" (Q.to_string (E.coeff e 1));
  check str "coeff x9" "0" (Q.to_string (E.coeff e 9));
  check int_t "terms" 2 (List.length (E.terms e));
  check int_t "max var" 1 (E.max_var e);
  check bool "not constant" false (E.is_constant e);
  check bool "zero constant" true (E.is_constant E.zero)

let test_linexpr_cancellation () =
  let e = E.add (E.iterm 2 0) (E.iterm (-2) 0) in
  check bool "cancelled term disappears" true (E.is_constant e);
  check int_t "max var of cancelled" (-1) (E.max_var e)

let test_linexpr_eval () =
  let e = E.add_constant (E.add (E.iterm 2 0) (E.iterm 3 1)) (Q.of_int 7) in
  let value v = Q.of_int (if v = 0 then 10 else 1) in
  check str "eval" "30" (Q.to_string (E.eval value e));
  check flt "eval_float" 30.0 (E.eval_float (fun v -> if v = 0 then 10.0 else 1.0) e)

let test_linexpr_scale_map () =
  let e = E.scale_int 3 (E.add (E.var 0) (E.of_int 2)) in
  check str "scaled coeff" "3" (Q.to_string (E.coeff e 0));
  check str "scaled const" "6" (Q.to_string (E.const_part e));
  let shifted = E.map_vars (fun v -> v + 5) e in
  check str "mapped" "3" (Q.to_string (E.coeff shifted 5));
  check str "orig var empty" "0" (Q.to_string (E.coeff shifted 0))

(* ---------- Model ---------- *)

let test_model_basics () =
  let m = M.create ~name:"t" () in
  let x = M.add_var m "x" in
  let y = M.add_var m ~kind:M.Binary "y" in
  check int_t "vars" 2 (M.var_count m);
  check str "name" "x" (M.var_name m x);
  check bool "binary is integer" true (M.is_integer_var m y);
  check bool "continuous is not" false (M.is_integer_var m x);
  check bool "binary ub" true (M.var_ub m y = Some Q.one);
  M.add_constr m (E.var x) M.Le (E.of_int 5);
  check int_t "constraints" 1 (M.constr_count m);
  (* constants folded to the rhs *)
  M.add_constr m (E.add (E.var x) (E.of_int 3)) M.Le (E.of_int 5);
  (match M.constraints m with
   | [ _; (_, _, _, rhs) ] -> check str "folded rhs" "2" (Q.to_string rhs)
   | _ -> Alcotest.fail "expected two constraints")

let test_model_unknown_var () =
  let m = M.create () in
  Alcotest.check_raises "constr with unknown var"
    (Invalid_argument "Model.add_constr: expression uses unknown variable")
    (fun () -> M.add_constr m (E.var 3) M.Le (E.of_int 1))

let test_model_check_feasible () =
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 10) "x" in
  M.add_constr m (E.var x) M.Ge (E.of_int 2);
  check int_t "feasible" 0 (List.length (M.check_feasible m (fun _ -> 3.0)));
  check bool "bound violation detected" true
    (List.length (M.check_feasible m (fun _ -> 11.0)) > 0);
  check bool "constraint violation detected" true
    (List.length (M.check_feasible m (fun _ -> 1.0)) > 0);
  check bool "integrality violation detected" true
    (List.length (M.check_feasible m (fun _ -> 2.5)) > 0)

(* ---------- Simplex ---------- *)

let wyndor () =
  let m = M.create ~name:"wyndor" () in
  let x = M.add_var m "x" in
  let y = M.add_var m "y" in
  M.add_constr m (E.var x) M.Le (E.of_int 4);
  M.add_constr m (E.iterm 2 y) M.Le (E.of_int 12);
  M.add_constr m (E.add (E.iterm 3 x) (E.iterm 2 y)) M.Le (E.of_int 18);
  M.set_objective m `Maximize (E.add (E.iterm 3 x) (E.iterm 5 y));
  (m, x, y)

let test_simplex_optimal () =
  let m, x, y = wyndor () in
  (match S.solve_relaxation_float m with
   | S.Optimal { objective; values } ->
     check flt "objective" 36.0 objective;
     check flt "x" 2.0 values.(x);
     check flt "y" 6.0 values.(y)
   | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal");
  match S.solve_relaxation_exact m with
  | S.Optimal { objective; values } ->
    check str "exact objective" "36" (Q.to_string objective);
    check str "exact x" "2" (Q.to_string values.(x));
    check str "exact y" "6" (Q.to_string values.(y))
  | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal (exact)"

let test_simplex_infeasible () =
  let m = M.create () in
  let x = M.add_var m "x" in
  M.add_constr m (E.var x) M.Ge (E.of_int 5);
  M.add_constr m (E.var x) M.Le (E.of_int 2);
  (match S.solve_relaxation_float m with
   | S.Infeasible -> ()
   | S.Optimal _ | S.Unbounded -> Alcotest.fail "expected infeasible")

let test_simplex_unbounded () =
  let m = M.create () in
  let x = M.add_var m "x" in
  M.set_objective m `Maximize (E.var x);
  (match S.solve_relaxation_float m with
   | S.Unbounded -> ()
   | S.Optimal _ | S.Infeasible -> Alcotest.fail "expected unbounded")

let test_simplex_equality_and_free () =
  (* min x + y st x + y = 10, x - y = 4, x free, y free -> x=7 y=3 *)
  let m = M.create () in
  let x = M.add_var m "x" in
  let y = M.add_var m "y" in
  M.set_bounds m x None None;
  M.set_bounds m y None None;
  M.add_constr m (E.add (E.var x) (E.var y)) M.Eq (E.of_int 10);
  M.add_constr m (E.sub (E.var x) (E.var y)) M.Eq (E.of_int 4);
  M.set_objective m `Minimize (E.add (E.var x) (E.var y));
  match S.solve_relaxation_float m with
  | S.Optimal { objective; values } ->
    check flt "objective" 10.0 objective;
    check flt "x" 7.0 values.(x);
    check flt "y" 3.0 values.(y)
  | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal"

let test_simplex_negative_bounds () =
  (* min x st x >= -5 -> -5 *)
  let m = M.create () in
  let x = M.add_var m ~lb:(Q.of_int (-5)) "x" in
  M.set_objective m `Minimize (E.var x);
  (match S.solve_relaxation_float m with
   | S.Optimal { objective; _ } -> check flt "objective" (-5.0) objective
   | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal");
  (* max x st x <= -2 (upper bound only) *)
  let m2 = M.create () in
  let y = M.add_var m2 "y" in
  M.set_bounds m2 y None (Some (Q.of_int (-2)));
  M.set_objective m2 `Maximize (E.var y);
  match S.solve_relaxation_float m2 with
  | S.Optimal { objective; _ } -> check flt "ub only" (-2.0) objective
  | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal"

let test_simplex_fixed_var () =
  let m = M.create () in
  let x = M.add_var m ~lb:(Q.of_int 3) ~ub:(Q.of_int 3) "x" in
  let y = M.add_var m ~ub:(Q.of_int 10) "y" in
  M.add_constr m (E.add (E.var x) (E.var y)) M.Le (E.of_int 8);
  M.set_objective m `Maximize (E.add (E.var x) (E.var y));
  match S.solve_relaxation_float m with
  | S.Optimal { objective; values } ->
    check flt "objective" 8.0 objective;
    check flt "fixed" 3.0 values.(x)
  | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal"

let test_simplex_crossed_bounds () =
  let m = M.create () in
  let _ = M.add_var m ~lb:(Q.of_int 5) ~ub:(Q.of_int 2) "x" in
  match S.solve_relaxation_float m with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "expected infeasible"

let test_simplex_degenerate () =
  (* Classic cycling-prone instance (Beale); Bland fallback must terminate. *)
  let m = M.create () in
  let x = Array.init 4 (fun i -> M.add_var m (Printf.sprintf "x%d" i)) in
  let c q v = E.term (Q.of_float_approx q) v in
  M.add_constr m
    (E.sum [ c 0.25 x.(0); c (-8.0) x.(1); c (-1.0) x.(2); c 9.0 x.(3) ])
    M.Le E.zero;
  M.add_constr m
    (E.sum [ c 0.5 x.(0); c (-12.0) x.(1); c (-0.5) x.(2); c 3.0 x.(3) ])
    M.Le E.zero;
  M.add_constr m (E.var x.(2)) M.Le (E.of_int 1);
  M.set_objective m `Maximize
    (E.sum [ c 0.75 x.(0); c (-20.0) x.(1); c 0.5 x.(2); c (-6.0) x.(3) ]);
  match S.solve_relaxation_float m with
  | S.Optimal { objective; _ } -> check flt "beale optimum" 1.25 objective
  | S.Infeasible | S.Unbounded -> Alcotest.fail "expected optimal"

(* exact and float simplex agree on random small LPs *)
let arb_lp =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun nvars ->
      int_range 1 5 >>= fun nrows ->
      let coeff = int_range (-5) 5 in
      list_size (return nrows)
        (pair (list_size (return nvars) coeff) (int_range 0 20))
      >>= fun rows ->
      list_size (return nvars) coeff >>= fun obj -> return (nvars, rows, obj))
  in
  QCheck.make gen ~print:(fun (n, rows, obj) ->
      Printf.sprintf "n=%d rows=%s obj=%s" n
        (String.concat ";"
           (List.map
              (fun (cs, b) ->
                String.concat "," (List.map string_of_int cs) ^ "<=" ^ string_of_int b)
              rows))
        (String.concat "," (List.map string_of_int obj)))

let build_lp (nvars, rows, obj) =
  let m = M.create () in
  let xs = Array.init nvars (fun i -> M.add_var m ~ub:(Q.of_int 50) (Printf.sprintf "x%d" i)) in
  List.iter
    (fun (cs, b) ->
      let e = E.sum (List.mapi (fun i c -> E.iterm c xs.(i)) cs) in
      M.add_constr m e M.Le (E.of_int b))
    rows;
  M.set_objective m `Maximize (E.sum (List.mapi (fun i c -> E.iterm c xs.(i)) obj));
  m

let prop_exact_matches_float =
  QCheck.Test.make ~name:"exact and float simplex agree" ~count:150 arb_lp (fun spec ->
      let m = build_lp spec in
      match (S.solve_relaxation_float m, S.solve_relaxation_exact m) with
      | S.Optimal { objective = f; _ }, S.Optimal { objective = q; _ } ->
        Float.abs (f -. Q.to_float q) < 1e-6
      | S.Infeasible, S.Infeasible | S.Unbounded, S.Unbounded -> true
      | _, _ -> false)

(* A warm dual re-solve after a bound change must land on the same optimum
   as a cold solve of the changed model. Rows are [<= b] with [b >= 0] and
   variables live in [0, 50], so the origin stays feasible under any
   tightened upper bound and both solves are always [Optimal]. *)
let arb_lp_rebound =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun nvars ->
      int_range 1 5 >>= fun nrows ->
      let coeff = int_range (-5) 5 in
      list_size (return nrows)
        (pair (list_size (return nvars) coeff) (int_range 0 20))
      >>= fun rows ->
      list_size (return nvars) coeff >>= fun obj ->
      int_range 0 (nvars - 1) >>= fun vi ->
      int_range 0 50 >>= fun new_ub -> return ((nvars, rows, obj), vi, new_ub))
  in
  QCheck.make gen ~print:(fun ((n, rows, obj), vi, new_ub) ->
      Printf.sprintf "n=%d rows=%s obj=%s change x%d.ub=%d" n
        (String.concat ";"
           (List.map
              (fun (cs, b) ->
                String.concat "," (List.map string_of_int cs) ^ "<=" ^ string_of_int b)
              rows))
        (String.concat "," (List.map string_of_int obj))
        vi new_ub)

let prop_warm_resolve_matches_cold =
  QCheck.Test.make ~name:"warm dual re-solve matches cold optimum" ~count:150
    arb_lp_rebound (fun ((nvars, _, _) as spec, vi, new_ub) ->
      let m = build_lp spec in
      let cell = S.new_basis () in
      match S.solve_relaxation_float ~basis:cell m with
      | S.Infeasible | S.Unbounded -> false (* the box forbids both *)
      | S.Optimal _ ->
        let bounds =
          Array.init nvars (fun i ->
              let ub = if i = vi then new_ub else 50 in
              (Some Q.zero, Some (Q.of_int ub)))
        in
        (* the cell now holds the optimal basis of the unchanged model;
           re-solving under [bounds] exercises the dual repair path *)
        let warm = S.solve_relaxation_float ~bounds ~basis:cell m in
        let cold = S.solve_relaxation_float ~bounds m in
        (match (warm, cold) with
         | S.Optimal { objective = w; _ }, S.Optimal { objective = c; _ } ->
           Float.abs (w -. c) < 1e-6
         | _, _ -> false))

(* ---------- Presolve ---------- *)

let test_presolve_tightens () =
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 100) "x" in
  let y = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 100) "y" in
  (* Maximise so duality fixing cannot fix x/y at their lower bounds and the
     propagated upper bounds stay observable. *)
  M.set_objective m `Maximize (E.add (E.var x) (E.var y));
  M.add_constr m (E.add (E.var x) (E.var y)) M.Le (E.of_int 7);
  (match Lp.Presolve.run m with
   | Lp.Presolve.Ok changes -> check bool "changed" true (changes > 0)
   | Lp.Presolve.Proved_infeasible -> Alcotest.fail "not infeasible");
  check bool "x ub tightened" true (M.var_ub m x = Some (Q.of_int 7));
  check bool "y ub tightened" true (M.var_ub m y = Some (Q.of_int 7))

let test_presolve_integer_rounding () =
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 10) "x" in
  M.set_objective m `Maximize (E.var x);
  M.add_constr m (E.iterm 2 x) M.Le (E.of_int 7);
  ignore (Lp.Presolve.run m);
  check bool "rounded down to 3" true (M.var_ub m x = Some (Q.of_int 3))

let test_presolve_infeasible () =
  let m = M.create () in
  let x = M.add_var m ~ub:(Q.of_int 1) "x" in
  M.add_constr m (E.var x) M.Ge (E.of_int 5);
  match Lp.Presolve.run m with
  | Lp.Presolve.Proved_infeasible -> ()
  | Lp.Presolve.Ok _ -> Alcotest.fail "expected infeasible"

(* Presolve must preserve the optimal objective value (not necessarily the
   optimal point: duality fixing may pick one optimum among several) on
   random small ILPs. Variables are boxed, so every instance is either
   Optimal or Infeasible and branch-and-bound terminates. *)
let arb_ilp =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun nvars ->
      int_range 1 4 >>= fun nrows ->
      let coeff = int_range (-3) 3 in
      list_size (return nrows)
        (triple (list_size (return nvars) coeff) (int_range 0 2) (int_range (-4) 12))
      >>= fun rows ->
      list_size (return nvars) coeff >>= fun obj ->
      bool >>= fun maximize -> return (nvars, rows, obj, maximize))
  in
  QCheck.make gen ~print:(fun (n, rows, obj, maximize) ->
      Printf.sprintf "n=%d rows=%s obj=%s dir=%s" n
        (String.concat ";"
           (List.map
              (fun (cs, s, b) ->
                Printf.sprintf "%s %s %d"
                  (String.concat "," (List.map string_of_int cs))
                  (match s with 0 -> "<=" | 1 -> ">=" | _ -> "=")
                  b)
              rows))
        (String.concat "," (List.map string_of_int obj))
        (if maximize then "max" else "min"))

let build_ilp (nvars, rows, obj, maximize) =
  let m = M.create () in
  let xs =
    Array.init nvars (fun i ->
        M.add_var m ~kind:M.Integer ~ub:(Q.of_int 6) (Printf.sprintf "x%d" i))
  in
  List.iter
    (fun (cs, s, b) ->
      let e = E.sum (List.mapi (fun i c -> E.iterm c xs.(i)) cs) in
      let sense = match s with 0 -> M.Le | 1 -> M.Ge | _ -> M.Eq in
      M.add_constr m e sense (E.of_int b))
    rows;
  M.set_objective m
    (if maximize then `Maximize else `Minimize)
    (E.sum (List.mapi (fun i c -> E.iterm c xs.(i)) obj));
  m

let prop_presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves the ILP optimum" ~count:120 arb_ilp
    (fun spec ->
      (* solve with branch-and-bound's own presolve off, so the only
         difference between the two runs is the explicit Presolve.run *)
      let options = { BB.default_options with BB.presolve = false } in
      let original = build_ilp spec in
      let r1 = BB.solve ~options original in
      let presolved = build_ilp spec in
      match Lp.Presolve.run presolved with
      | Lp.Presolve.Proved_infeasible -> r1.BB.status = BB.Infeasible
      | Lp.Presolve.Ok _ -> begin
        let r2 = BB.solve ~options presolved in
        match (r1.BB.status, r2.BB.status) with
        | BB.Optimal, BB.Optimal -> begin
          match (r1.BB.objective, r2.BB.objective) with
          | Some o1, Some o2 -> Float.abs (o1 -. o2) < 1e-6
          | _ -> false
        end
        | s1, s2 -> s1 = s2
      end)

(* ---------- Branch and bound ---------- *)

let test_bb_knapsack () =
  let m = M.create () in
  let xs = Array.init 4 (fun i -> M.add_var m ~kind:M.Binary (Printf.sprintf "x%d" i)) in
  let w = [| 5; 7; 4; 3 |] and p = [| 8; 11; 6; 4 |] in
  M.add_constr m
    (E.sum (List.init 4 (fun i -> E.iterm w.(i) xs.(i))))
    M.Le (E.of_int 14);
  M.set_objective m `Maximize (E.sum (List.init 4 (fun i -> E.iterm p.(i) xs.(i))));
  let r = BB.solve m in
  check bool "optimal" true (r.BB.status = BB.Optimal);
  (match r.BB.objective with
   | Some obj -> check flt "objective 21" 21.0 obj
   | None -> Alcotest.fail "no objective");
  check bool "gap zero" true (r.BB.gap = Some 0.0)

let test_bb_integer_infeasible () =
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 10) "x" in
  M.add_constr m (E.iterm 2 x) M.Eq (E.of_int 1);
  let r = BB.solve m in
  check bool "infeasible" true (r.BB.status = BB.Infeasible)

let test_bb_unbounded () =
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer "x" in
  M.set_objective m `Maximize (E.var x);
  let r = BB.solve m in
  check bool "unbounded" true (r.BB.status = BB.Unbounded)

let test_bb_warm_start () =
  let m = M.create () in
  let xs = Array.init 3 (fun i -> M.add_var m ~kind:M.Binary (Printf.sprintf "x%d" i)) in
  M.add_constr m (E.sum (Array.to_list (Array.map E.var xs))) M.Le (E.of_int 2);
  M.set_objective m `Maximize (E.sum (Array.to_list (Array.map E.var xs)));
  let warm = [| 1.0; 1.0; 0.0 |] in
  let r = BB.solve ~warm_start:warm m in
  (match r.BB.objective with
   | Some obj -> check flt "optimum found" 2.0 obj
   | None -> Alcotest.fail "no objective")

let test_bb_node_limit () =
  (* A tiny node limit must still return the warm-start incumbent. *)
  let m = M.create () in
  let xs = Array.init 6 (fun i -> M.add_var m ~kind:M.Binary (Printf.sprintf "x%d" i)) in
  M.add_constr m
    (E.sum (List.init 6 (fun i -> E.iterm (i + 3) xs.(i))))
    M.Le (E.of_int 11);
  M.set_objective m `Maximize (E.sum (Array.to_list (Array.map E.var xs)));
  let warm = [| 1.0; 1.0; 0.0; 0.0; 0.0; 0.0 |] in
  let options = { BB.default_options with BB.node_limit = Some 1 } in
  let r = BB.solve ~options ~warm_start:warm m in
  check bool "has incumbent" true (r.BB.values <> None);
  check bool "not proved optimal" true (r.BB.status <> BB.Infeasible)

let test_bb_minimize () =
  (* min 3x + 4y st x + 2y >= 7, ints -> x=1 y=3: 15  or x=7 y=0: 21; optimum
     x=1,y=3 = 15?  check: x+2y>=7 minimise 3x+4y: try y=3,x=1 -> 15; y=2,x=3
     -> 17; y=4 x=0 -> 16. So 15. *)
  let m = M.create () in
  let x = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 10) "x" in
  let y = M.add_var m ~kind:M.Integer ~ub:(Q.of_int 10) "y" in
  M.add_constr m (E.add (E.var x) (E.iterm 2 y)) M.Ge (E.of_int 7);
  M.set_objective m `Minimize (E.add (E.iterm 3 x) (E.iterm 4 y));
  let r = BB.solve m in
  match r.BB.objective with
  | Some obj -> check flt "minimum 15" 15.0 obj
  | None -> Alcotest.fail "no objective"

(* brute force 0/1 knapsack comparison *)
let arb_knapsack =
  let gen =
    QCheck.Gen.(
      int_range 2 8 >>= fun n ->
      list_size (return n) (pair (int_range 1 9) (int_range 1 9)) >>= fun items ->
      int_range 5 25 >>= fun capacity -> return (items, capacity))
  in
  QCheck.make gen ~print:(fun (items, cap) ->
      Printf.sprintf "cap=%d items=%s" cap
        (String.concat ";" (List.map (fun (w, p) -> Printf.sprintf "%d/%d" w p) items)))

let brute_knapsack items capacity =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0 and p = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w + fst arr.(i);
        p := !p + snd arr.(i)
      end
    done;
    if !w <= capacity && !p > !best then best := !p
  done;
  !best

let prop_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch-and-bound solves knapsacks exactly" ~count:100
    arb_knapsack (fun (items, capacity) ->
      let m = M.create () in
      let xs =
        List.mapi (fun i _ -> M.add_var m ~kind:M.Binary (Printf.sprintf "x%d" i)) items
      in
      M.add_constr m
        (E.sum (List.map2 (fun x (w, _) -> E.iterm w x) xs items))
        M.Le (E.of_int capacity);
      M.set_objective m `Maximize
        (E.sum (List.map2 (fun x (_, p) -> E.iterm p x) xs items));
      let r = BB.solve m in
      match r.BB.objective with
      | Some obj ->
        Float.abs (obj -. float_of_int (brute_knapsack items capacity)) < 1e-6
      | None -> false)

(* The parallel tree search must be a pure implementation detail: on models
   solved to completion, 1 domain and 4 domains return the same status and
   optimum. Reuses the boxed-ILP generator, so every run terminates. *)
let prop_bb_domains_agree =
  QCheck.Test.make ~name:"domains=1 and domains=4 agree" ~count:60 arb_ilp
    (fun spec ->
      let solve_with domains =
        BB.solve ~options:{ BB.default_options with BB.domains } (build_ilp spec)
      in
      let r1 = solve_with 1 and r4 = solve_with 4 in
      r1.BB.status = r4.BB.status
      &&
      match (r1.BB.objective, r4.BB.objective) with
      | Some o1, Some o4 -> Float.abs (o1 -. o4) < 1e-6
      | None, None -> true
      | _, _ -> false)

(* Under the synchronous-wave deterministic mode, even *budget-stopped*
   searches must agree across domain counts, bit for bit: a tiny node limit
   forces most runs to stop mid-tree. *)
let prop_bb_deterministic_budget_stable =
  QCheck.Test.make ~name:"deterministic mode is budget-stable across domains"
    ~count:60 arb_ilp (fun spec ->
      let solve_with domains =
        BB.solve
          ~options:
            {
              BB.default_options with
              BB.domains;
              deterministic = true;
              node_limit = Some 7;
            }
          (build_ilp spec)
      in
      let r1 = solve_with 1 and r4 = solve_with 4 in
      r1.BB.status = r4.BB.status
      && r1.BB.objective = r4.BB.objective
      && r1.BB.values = r4.BB.values
      && r1.BB.nodes = r4.BB.nodes)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "lp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basic" `Quick test_linexpr_basic;
          Alcotest.test_case "cancellation" `Quick test_linexpr_cancellation;
          Alcotest.test_case "eval" `Quick test_linexpr_eval;
          Alcotest.test_case "scale/map" `Quick test_linexpr_scale_map;
        ] );
      ( "model",
        [
          Alcotest.test_case "basics" `Quick test_model_basics;
          Alcotest.test_case "unknown var" `Quick test_model_unknown_var;
          Alcotest.test_case "check_feasible" `Quick test_model_check_feasible;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "optimal" `Quick test_simplex_optimal;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "equality + free vars" `Quick test_simplex_equality_and_free;
          Alcotest.test_case "negative bounds" `Quick test_simplex_negative_bounds;
          Alcotest.test_case "fixed var" `Quick test_simplex_fixed_var;
          Alcotest.test_case "crossed bounds" `Quick test_simplex_crossed_bounds;
          Alcotest.test_case "degenerate (Beale)" `Quick test_simplex_degenerate;
        ] );
      ( "simplex-props",
        qsuite [ prop_exact_matches_float; prop_warm_resolve_matches_cold ] );
      ( "presolve",
        [
          Alcotest.test_case "tightens bounds" `Quick test_presolve_tightens;
          Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
          Alcotest.test_case "proves infeasible" `Quick test_presolve_infeasible;
        ] );
      ("presolve-props", qsuite [ prop_presolve_preserves_optimum ]);
      ( "branch-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
          Alcotest.test_case "integer infeasible" `Quick test_bb_integer_infeasible;
          Alcotest.test_case "unbounded" `Quick test_bb_unbounded;
          Alcotest.test_case "warm start" `Quick test_bb_warm_start;
          Alcotest.test_case "node limit keeps incumbent" `Quick test_bb_node_limit;
          Alcotest.test_case "minimisation" `Quick test_bb_minimize;
        ] );
      ( "bb-props",
        qsuite
          [
            prop_bb_matches_brute_force;
            prop_bb_domains_agree;
            prop_bb_deterministic_budget_stable;
          ] );
    ]
