(* Tests for the §4 ILP model: construction, constraint structure, warm
   starting from the greedy schedule, solving small instances exactly and
   extracting valid schedules. *)

open Microfluidics
open Components
module IM = Cohls.Ilp_model
module Syn = Cohls.Synthesis

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let small_assay () =
  (* wash -> elute chain plus an independent detect: 3 ops, shareable under
     the component-oriented rule *)
  let a = Assay.create ~name:"small" in
  let wash =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 10) "wash"
  in
  let elute =
    Assay.add_operation a ~accessories:[ Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 5) "elute"
  in
  let detect =
    Assay.add_operation a ~accessories:[ Accessory.Optical_system ]
      ~duration:(Operation.Fixed 8) "detect"
  in
  Assay.add_dependency a ~parent:wash ~child:elute;
  (a, wash, elute, detect)

let spec_of assay ~slots ~rule =
  let layering = Cohls.Layering.compute assay in
  {
    IM.ops = Assay.operations assay;
    graph = Assay.dependency_graph assay;
    layer = layering.Cohls.Layering.layers.(0);
    layer_of_op = layering.Cohls.Layering.layer_of_op;
    bound_before = (fun _ -> None);
    slots;
    rule;
    transport = (fun _ -> 2);
    cost = Cost.default;
    weights = Cohls.Schedule.default_weights;
    existing_paths = [];
  }

let free_slots n = Array.init n (fun i -> IM.Free { id = 100 + i })

let test_build_statistics () =
  let a, _, _, _ = small_assay () in
  let spec = spec_of a ~slots:(free_slots 3) ~rule:Cohls.Binding.Component_oriented in
  let built = IM.build spec in
  let lp = IM.model built in
  check bool "has variables" true (Lp.Model.var_count lp > 20);
  check bool "has constraints" true (Lp.Model.constr_count lp > 20);
  check int_t "horizon = serial sum" (12 + 7 + 10) (IM.horizon built)

let test_build_requires_compatible_slot () =
  let a, _, _, _ = small_assay () in
  let wrong =
    Device.make ~id:0 ~container:Container.Ring ~capacity:Capacity.Small
      ~accessories:[ Accessory.Pump ]
  in
  let spec = spec_of a ~slots:[| IM.Fixed wrong |] ~rule:Cohls.Binding.Component_oriented in
  (try
     ignore (IM.build spec);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let solve_small rule =
  let a, _, _, _ = small_assay () in
  let spec = spec_of a ~slots:(free_slots 3) ~rule in
  let built = IM.build spec in
  let options =
    { Lp.Branch_bound.default_options with Lp.Branch_bound.time_limit = Some 30.0 }
  in
  let result = Lp.Branch_bound.solve ~options (IM.model built) in
  (a, spec, built, result)

let test_solve_and_extract_component () =
  let _, spec, built, result = solve_small Cohls.Binding.Component_oriented in
  check bool "solved" true (result.Lp.Branch_bound.values <> None);
  match result.Lp.Branch_bound.values with
  | None -> Alcotest.fail "no solution"
  | Some values ->
    let entries, devices = IM.extract built ~values in
    check int_t "all ops bound" 3 (List.length entries);
    check bool "at most 2 devices (wash/elute share)" true (List.length devices <= 2);
    (* replay the entries through the schedule validator *)
    let chip = Chip.create () in
    List.iter (fun d -> Chip.add_device chip d) devices;
    List.iter
      (fun (e : Cohls.Schedule.entry) ->
        List.iter
          (fun p ->
            match List.find_opt (fun (pe : Cohls.Schedule.entry) -> pe.Cohls.Schedule.op = p) entries with
            | Some pe when pe.Cohls.Schedule.device <> e.Cohls.Schedule.device ->
              Chip.note_transport chip ~src:pe.Cohls.Schedule.device
                ~dst:e.Cohls.Schedule.device
            | Some _ | None -> ())
          (Flowgraph.Digraph.pred spec.IM.graph e.Cohls.Schedule.op))
      entries;
    let layering = Cohls.Layering.compute (Assays.Kinase.base ()) in
    ignore layering;
    let fixed_makespan =
      List.fold_left
        (fun acc (e : Cohls.Schedule.entry) ->
          max acc (e.Cohls.Schedule.start + e.Cohls.Schedule.min_duration + e.Cohls.Schedule.transport))
        0 entries
    in
    check bool "makespan sane" true (fixed_makespan >= 17 && fixed_makespan <= IM.horizon built)

let test_domains_agree_on_assay () =
  (* Domain count must not leak into results: on an example-assay layer
     model solved to completion, 1 and 4 domains return the same status and
     objective. *)
  let a, _, _, _ = small_assay () in
  let spec = spec_of a ~slots:(free_slots 3) ~rule:Cohls.Binding.Component_oriented in
  let solve domains =
    let built = IM.build spec in
    let options =
      {
        Lp.Branch_bound.default_options with
        Lp.Branch_bound.time_limit = Some 30.0;
        domains;
      }
    in
    Lp.Branch_bound.solve ~options (IM.model built)
  in
  let r1 = solve 1 and r4 = solve 4 in
  check bool "same status" true
    (r1.Lp.Branch_bound.status = r4.Lp.Branch_bound.status);
  match (r1.Lp.Branch_bound.objective, r4.Lp.Branch_bound.objective) with
  | Some o1, Some o4 ->
    check bool "same objective" true (Float.abs (o1 -. o4) < 1e-6)
  | None, None -> ()
  | _, _ -> Alcotest.fail "one domain count found a solution, the other did not"

let test_exact_rule_needs_more_devices () =
  let _, _, _, result_c = solve_small Cohls.Binding.Component_oriented in
  let _, _, built_e, result_e = solve_small Cohls.Binding.Exact_signature in
  match (result_c.Lp.Branch_bound.values, result_e.Lp.Branch_bound.values) with
  | Some _, Some values_e ->
    let _, devices_e = IM.extract built_e ~values:values_e in
    (* wash and elute resolve to chamber/tiny{s} so they can still share,
       but detect needs its own device: at least 2 devices *)
    check bool "exact needs >= 2 devices" true (List.length devices_e >= 2)
  | _, _ -> Alcotest.fail "solve failed"

let test_warm_start_feasible () =
  let a, _, _, _ = small_assay () in
  let layering = Cohls.Layering.compute a in
  let cfg =
    {
      Cohls.List_scheduler.rule = Cohls.Binding.Component_oriented;
      max_devices = 3;
      cost = Cost.default;
      weights = Cohls.Schedule.default_weights;
      device_penalty = (fun _ -> 0);
    }
  in
  let next = ref 100 in
  let fresh_id () = let i = !next in incr next; i in
  let heur =
    Cohls.List_scheduler.schedule_layer cfg ~ops:(Assay.operations a)
      ~graph:(Assay.dependency_graph a)
      ~layer:layering.Cohls.Layering.layers.(0)
      ~layer_of_op:layering.Cohls.Layering.layer_of_op
      ~bound_before:(fun _ -> None)
      ~available:[] ~transport:(fun _ -> 2) ~existing_paths:[] ~fresh_id
  in
  let spec = spec_of a ~slots:(free_slots 3) ~rule:Cohls.Binding.Component_oriented in
  let built = IM.build spec in
  match IM.warm_start built heur.Cohls.List_scheduler.entries with
  | None -> Alcotest.fail "warm start mapping failed"
  | Some values ->
    let violations = Lp.Model.check_feasible (IM.model built) (fun v -> values.(v)) in
    if violations <> [] then
      Alcotest.fail
        ("warm start infeasible: "
        ^ String.concat ", " (List.map fst violations))

let test_indeterminate_constraints () =
  (* one det + one indet op, independent: the ILP must place them on
     distinct-or-ordered devices with the indet last *)
  let a = Assay.create ~name:"ind" in
  let d =
    Assay.add_operation a ~duration:(Operation.Fixed 6) "d"
  in
  let i =
    Assay.add_operation a ~duration:(Operation.Indeterminate { min_minutes = 4 }) "i"
  in
  ignore (d, i);
  let layering = Cohls.Layering.compute a in
  let spec =
    {
      IM.ops = Assay.operations a;
      graph = Assay.dependency_graph a;
      layer = layering.Cohls.Layering.layers.(0);
      layer_of_op = layering.Cohls.Layering.layer_of_op;
      bound_before = (fun _ -> None);
      slots = free_slots 2;
      rule = Cohls.Binding.Component_oriented;
      transport = (fun _ -> 1);
      cost = Cost.default;
      weights = Cohls.Schedule.default_weights;
      existing_paths = [];
    }
  in
  let built = IM.build spec in
  let result = Lp.Branch_bound.solve (IM.model built) in
  match result.Lp.Branch_bound.values with
  | None -> Alcotest.fail "no solution"
  | Some values ->
    let entries, _ = IM.extract built ~values in
    let e_of op = List.find (fun (e : Cohls.Schedule.entry) -> e.Cohls.Schedule.op = op) entries in
    let ed = e_of d and ei = e_of i in
    (* (14): the determinate op starts no later than the indet's min end *)
    check bool "(14)" true
      (ed.Cohls.Schedule.start <= ei.Cohls.Schedule.start + ei.Cohls.Schedule.min_duration);
    (* our strengthened rule: same device -> det fully precedes indet *)
    if ed.Cohls.Schedule.device = ei.Cohls.Schedule.device then
      check bool "det precedes indet on shared device" true
        (ed.Cohls.Schedule.start + ed.Cohls.Schedule.min_duration + ed.Cohls.Schedule.transport
         <= ei.Cohls.Schedule.start)

let test_pruned_matches_unpruned () =
  (* The pruning families (ASAP/ALAP start windows, pair skipping with
     per-pair big-M, free-slot symmetry rows, machine-load cuts) must not
     change the optimal objective — [prune:false] reproduces the full §4
     grid, so the two builds are solved to optimality and compared. *)
  let a, _, _, _ = small_assay () in
  let ind = Assay.create ~name:"ind" in
  let _ = Assay.add_operation ind ~duration:(Operation.Fixed 6) "d" in
  let _ =
    Assay.add_operation ind ~duration:(Operation.Indeterminate { min_minutes = 4 }) "i"
  in
  let specs =
    [
      spec_of a ~slots:(free_slots 3) ~rule:Cohls.Binding.Component_oriented;
      spec_of a ~slots:(free_slots 2) ~rule:Cohls.Binding.Exact_signature;
      spec_of ind ~slots:(free_slots 2) ~rule:Cohls.Binding.Component_oriented;
    ]
  in
  let options =
    { Lp.Branch_bound.default_options with Lp.Branch_bound.time_limit = Some 30.0 }
  in
  List.iteri
    (fun i spec ->
      let pruned = Lp.Branch_bound.solve ~options (IM.model (IM.build spec)) in
      let full =
        Lp.Branch_bound.solve ~options (IM.model (IM.build ~prune:false spec))
      in
      check bool
        (Printf.sprintf "spec %d: both optimal" i)
        true
        (pruned.Lp.Branch_bound.status = Lp.Branch_bound.Optimal
        && full.Lp.Branch_bound.status = Lp.Branch_bound.Optimal);
      match (pruned.Lp.Branch_bound.objective, full.Lp.Branch_bound.objective) with
      | Some p, Some f ->
        if Float.abs (p -. f) > 1e-6 then
          Alcotest.failf "spec %d: pruned %.6g <> unpruned %.6g" i p f
      | _ -> Alcotest.failf "spec %d: missing objective" i)
    specs

let test_ilp_engine_end_to_end () =
  (* full synthesis with the ILP engine on the small kinase protocol must
     validate and be no worse than the heuristic on the weighted objective *)
  let assay = Assays.Kinase.base () in
  let ilp_cfg =
    {
      Syn.default_config with
      Syn.engine =
        Cohls.Layer_solver.Ilp
          {
            options =
              {
                Lp.Branch_bound.default_options with
                Lp.Branch_bound.time_limit = Some 5.0;
              };
            extra_free_slots = 1;
          };
      max_devices = 6;
      max_iterations = 1;
    }
  in
  let heur_cfg = { ilp_cfg with Syn.engine = Cohls.Layer_solver.Heuristic } in
  let r_ilp = Syn.run ~config:ilp_cfg assay in
  let r_heur = Syn.run ~config:heur_cfg assay in
  (match Cohls.Schedule.validate r_ilp.Syn.final with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("ilp schedule invalid: " ^ e));
  check bool "ilp no worse (weighted)" true
    (r_ilp.Syn.final_breakdown.Cohls.Schedule.weighted
     <= r_heur.Syn.final_breakdown.Cohls.Schedule.weighted)

let test_ilp_never_worse_than_greedy_random () =
  (* Cross-engine check on small random assays: branch-and-bound warm
     started with the greedy schedule can only match or improve the
     weighted objective, and its schedules must validate. *)
  let tried = ref 0 in
  let seed = ref 0 in
  while !tried < 8 do
    incr seed;
    let params =
      {
        Assays.Random_assay.default_params with
        Assays.Random_assay.op_count = 5;
        indeterminate_fraction = 0.2;
        edge_probability = 0.25;
      }
    in
    let assay = Assays.Random_assay.generate ~seed:!seed params in
    let mk engine =
      Syn.run
        ~config:
          { Syn.default_config with Syn.engine; max_devices = 8; max_iterations = 1 }
        assay
    in
    match mk Cohls.Layer_solver.Heuristic with
    | exception Cohls.List_scheduler.No_device _ -> ()
    | heur ->
      incr tried;
      let ilp =
        mk
          (Cohls.Layer_solver.Ilp
             {
               options =
                 {
                   Lp.Branch_bound.default_options with
                   Lp.Branch_bound.time_limit = Some 3.0;
                 };
               extra_free_slots = 1;
             })
      in
      (match Cohls.Schedule.validate ilp.Syn.final with
       | Ok () -> ()
       | Error e -> Alcotest.failf "seed %d: ilp schedule invalid: %s" !seed e);
      check bool
        (Printf.sprintf "seed %d: ilp weighted <= greedy" !seed)
        true
        (ilp.Syn.final_breakdown.Cohls.Schedule.weighted
         <= heur.Syn.final_breakdown.Cohls.Schedule.weighted)
  done

let () =
  Alcotest.run "ilp-model"
    [
      ( "build",
        [
          Alcotest.test_case "statistics" `Quick test_build_statistics;
          Alcotest.test_case "incompatible slot rejected" `Quick
            test_build_requires_compatible_slot;
        ] );
      ( "solve",
        [
          Alcotest.test_case "solve + extract (component rule)" `Slow
            test_solve_and_extract_component;
          Alcotest.test_case "domains 1 and 4 agree on assay" `Slow
            test_domains_agree_on_assay;
          Alcotest.test_case "exact rule device count" `Slow
            test_exact_rule_needs_more_devices;
          Alcotest.test_case "warm start is feasible" `Quick test_warm_start_feasible;
          Alcotest.test_case "indeterminate constraints" `Slow
            test_indeterminate_constraints;
          Alcotest.test_case "pruned optimum matches unpruned" `Slow
            test_pruned_matches_unpruned;
        ] );
      ( "engine",
        [
          Alcotest.test_case "end-to-end ILP synthesis" `Slow test_ilp_engine_end_to_end;
          Alcotest.test_case "ILP never worse than greedy (random)" `Slow
            test_ilp_never_worse_than_greedy_random;
        ] );
    ]
