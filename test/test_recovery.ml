(* Property-style tests for fault injection and layer-boundary recovery:
   seeded fault plans over the bundled assays must yield recovered
   schedules that validate and respect the layering invariants, executed
   operations must never be re-scheduled, and a zero fault rate must
   reproduce the fault-free trace byte-for-byte. *)

open Microfluidics

let check = Alcotest.check
let bool = Alcotest.bool
let int_t = Alcotest.int

let bundled =
  [
    ("kinase", lazy (Assays.Kinase.testcase ()));
    ("gene-expression", lazy (Assays.Gene_expression.testcase ()));
    ("mda", lazy (Assays.Mda.testcase ()));
    ("chip", lazy (Assays.Chip_assay.testcase ()));
  ]

let synthesised = Hashtbl.create 8

let schedule_of label assay =
  match Hashtbl.find_opt synthesised label with
  | Some s -> s
  | None ->
    let r = Cohls.Synthesis.run (Lazy.force assay) in
    Hashtbl.replace synthesised label r.Cohls.Synthesis.final;
    r.Cohls.Synthesis.final

(* ---------- fault plans ---------- *)

let test_plan_deterministic () =
  let plan = Cohls.Faults.seeded ~seed:7 ~rate:0.3 in
  for device = 0 to 20 do
    for layer = 0 to 5 do
      check bool "probe is reproducible" true
        (Cohls.Faults.probe plan ~device ~layer
         = Cohls.Faults.probe plan ~device ~layer)
    done
  done

let test_plan_rates () =
  let zero = Cohls.Faults.seeded ~seed:3 ~rate:0.0 in
  let one = Cohls.Faults.seeded ~seed:3 ~rate:1.0 in
  for device = 0 to 30 do
    check bool "rate 0 never faults" true
      (Cohls.Faults.probe zero ~device ~layer:device = None);
    check bool "rate 1 always faults" true
      (Cohls.Faults.probe one ~device ~layer:device <> None);
    check bool "none never faults" true
      (Cohls.Faults.probe Cohls.Faults.none ~device ~layer:device = None)
  done;
  (match Cohls.Faults.seeded ~seed:1 ~rate:1.5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "rate > 1 must be rejected")

(* ---------- rate 0.0 reproduces the fault-free trace ---------- *)

let test_zero_rate_byte_for_byte () =
  List.iter
    (fun (label, assay) ->
      let s = schedule_of label assay in
      let oracle = Cohls.Runtime.seeded_oracle ~seed:9 ~max_extra:15 (Lazy.force assay) in
      let reference =
        match Cohls.Runtime.execute s oracle with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      List.iter
        (fun plan ->
          match Cohls.Recovery.execute ~plan ~oracle s with
          | Ok o ->
            check bool (label ^ ": no recovery attempts") true
              (o.Cohls.Recovery.attempts = []);
            check bool (label ^ ": identical trace") true
              (o.Cohls.Recovery.trace = reference)
          | Error e ->
            Alcotest.fail (Format.asprintf "%s: %a" label Cohls.Recovery.pp_error e))
        [ Cohls.Faults.none; Cohls.Faults.seeded ~seed:123 ~rate:0.0 ])
    bundled

(* ---------- seeded sweep invariants ---------- *)

let ops_started_exactly_once label assay (trace : Cohls.Runtime.trace) =
  let n = Assay.operation_count (Lazy.force assay) in
  let starts = Array.make n 0 and finishes = Array.make n 0 in
  List.iter
    (fun (e : Cohls.Runtime.event) ->
      match e.Cohls.Runtime.kind with
      | `Start -> starts.(e.Cohls.Runtime.op) <- starts.(e.Cohls.Runtime.op) + 1
      | `Finish -> finishes.(e.Cohls.Runtime.op) <- finishes.(e.Cohls.Runtime.op) + 1)
    trace.Cohls.Runtime.events;
  Array.iteri
    (fun op c ->
      check int_t (Printf.sprintf "%s: op %d started exactly once" label op) 1 c;
      check int_t
        (Printf.sprintf "%s: op %d finished exactly once" label op)
        1 finishes.(op))
    starts

let boundaries_strictly_increasing label (trace : Cohls.Runtime.trace) =
  let rec go = function
    | (l1, t1) :: ((l2, t2) :: _ as rest) ->
      check bool (label ^ ": global layer indices strictly increase") true (l1 < l2);
      check bool (label ^ ": boundary times never regress") true (t1 <= t2);
      go rest
    | [ _ ] | [] -> ()
  in
  go trace.Cohls.Runtime.layer_boundaries

let test_seeded_sweep () =
  let completed_with_recovery = ref 0 in
  let structured_failures = ref 0 in
  List.iter
    (fun (label, assay) ->
      let s = schedule_of label assay in
      let oracle = Cohls.Runtime.seeded_oracle ~seed:2 ~max_extra:10 (Lazy.force assay) in
      List.iter
        (fun allow_new_devices ->
          for seed = 1 to 10 do
            let plan = Cohls.Faults.seeded ~seed ~rate:0.1 in
            match Cohls.Recovery.execute ~allow_new_devices ~plan ~oracle s with
            | Ok o ->
              if o.Cohls.Recovery.attempts <> [] then incr completed_with_recovery;
              ops_started_exactly_once label assay o.Cohls.Recovery.trace;
              boundaries_strictly_increasing label o.Cohls.Recovery.trace;
              List.iter
                (fun rs ->
                  check bool (label ^ ": recovered schedule validates") true
                    (Cohls.Schedule.validate rs = Ok ());
                  check bool (label ^ ": recovered layering invariants") true
                    (Cohls.Layering.check rs.Cohls.Schedule.layering = Ok ()))
                o.Cohls.Recovery.recovered_schedules;
              check bool (label ^ ": one recovered schedule per attempt") true
                (List.length o.Cohls.Recovery.recovered_schedules
                 = List.length o.Cohls.Recovery.attempts);
              check bool (label ^ ": makespan covers last event") true
                (List.for_all
                   (fun (e : Cohls.Runtime.event) ->
                     e.Cohls.Runtime.time <= o.Cohls.Recovery.trace.Cohls.Runtime.total_minutes)
                   o.Cohls.Recovery.trace.Cohls.Runtime.events)
            | Error _ ->
              (* a structured Recovery_failed is an acceptable outcome (a
                 single-instance specialised device died); an exception is
                 not, and would fail the test harness *)
              incr structured_failures
          done)
        [ false; true ])
    bundled;
  check bool "sweep exercised at least one successful recovery" true
    (!completed_with_recovery > 0);
  check bool "sweep exercised the strict no-new-devices failure path" true
    (!structured_failures > 0)

(* ---------- executed prefix is untouched ---------- *)

let test_prefix_preserved () =
  (* find a faulted run whose first fault is at boundary >= 1 and compare
     the executed prefix against the fault-free replay: recovery must not
     touch (or re-schedule) anything already run *)
  let label, assay = List.nth bundled 1 (* gene-expression *) in
  let s = schedule_of label assay in
  let oracle = Cohls.Runtime.seeded_oracle ~seed:2 ~max_extra:10 (Lazy.force assay) in
  let reference =
    match Cohls.Runtime.execute s oracle with Ok t -> t | Error e -> Alcotest.fail e
  in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 50 do
    incr seed;
    let plan = Cohls.Faults.seeded ~seed:!seed ~rate:0.1 in
    match Cohls.Recovery.execute ~allow_new_devices:true ~plan ~oracle s with
    | Ok o -> begin
      match o.Cohls.Recovery.attempts with
      | { Cohls.Recovery.at_global_layer; _ } :: _
        when at_global_layer >= 1
             && o.Cohls.Recovery.stats.Cohls.Runtime.transient_retries = 0 -> begin
        found := true;
        (* ops of layers before the fault boundary executed identically *)
        let executed_ops =
          List.concat_map
            (fun (l : Cohls.Schedule.layer_schedule) ->
              if l.Cohls.Schedule.layer_index < at_global_layer then
                List.map (fun (e : Cohls.Schedule.entry) -> e.Cohls.Schedule.op)
                  l.Cohls.Schedule.entries
              else [])
            (Array.to_list s.Cohls.Schedule.layers)
        in
        let prefix_of (t : Cohls.Runtime.trace) =
          List.filter
            (fun (e : Cohls.Runtime.event) -> List.mem e.Cohls.Runtime.op executed_ops)
            t.Cohls.Runtime.events
        in
        check bool "executed prefix identical to fault-free replay" true
          (prefix_of o.Cohls.Recovery.trace = prefix_of reference)
      end
      | _ -> ()
    end
    | Error _ -> ()
  done;
  check bool "found a mid-assay permanent fault within 50 seeds" true !found

(* ---------- no feasible device set ---------- *)

let test_no_feasible_devices_is_structured () =
  let a = Assay.create ~name:"lonely" in
  let _op =
    Assay.add_operation a ~container:Components.Container.Ring
      ~accessories:[ Components.Accessory.Pump ] ~duration:(Operation.Fixed 10) "mix"
  in
  let config = { Cohls.Synthesis.default_config with Cohls.Synthesis.max_devices = 1 } in
  let r = Cohls.Synthesis.run ~config a in
  let device =
    match Cohls.Schedule.binding r.Cohls.Synthesis.final 0 with
    | Some d -> d
    | None -> Alcotest.fail "op unbound"
  in
  (* pick a seed whose plan kills that device permanently at boundary 0 *)
  let seed = ref 0 in
  let plan = ref Cohls.Faults.none in
  (try
     for s = 1 to 1000 do
       let p = Cohls.Faults.seeded ~seed:s ~rate:1.0 in
       if Cohls.Faults.probe p ~device ~layer:0 = Some Cohls.Faults.Permanent then begin
         seed := s;
         plan := p;
         raise Exit
       end
     done
   with Exit -> ());
  check bool "found a killing seed" true (!seed > 0);
  match
    Cohls.Recovery.execute ~config ~plan:!plan ~oracle:(fun _ -> 10)
      r.Cohls.Synthesis.final
  with
  | Ok _ -> Alcotest.fail "recovery without any surviving device must fail"
  | Error e -> begin
    match e.Cohls.Recovery.failure with
    | Cohls.Recovery.No_feasible_binding { op } ->
      check int_t "reports the original op id" 0 op;
      check bool "reports the dead device" true
        (e.Cohls.Recovery.dead_devices = [ device ])
    | _ -> Alcotest.fail "expected No_feasible_binding"
  end

(* ---------- transient faults ---------- *)

let test_transient_backoff_extends_makespan () =
  let label, assay = List.nth bundled 1 in
  let s = schedule_of label assay in
  let oracle = Cohls.Runtime.seeded_oracle ~seed:2 ~max_extra:10 (Lazy.force assay) in
  let baseline =
    match Cohls.Runtime.execute s oracle with
    | Ok t -> t.Cohls.Runtime.total_minutes
    | Error e -> Alcotest.fail e
  in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 100 do
    incr seed;
    let plan = Cohls.Faults.seeded ~seed:!seed ~rate:0.08 in
    match Cohls.Recovery.execute ~plan ~oracle s with
    | Ok o
      when o.Cohls.Recovery.attempts = []
           && o.Cohls.Recovery.stats.Cohls.Runtime.transient_retries > 0 ->
      found := true;
      check bool "backoff minutes extend the makespan" true
        (o.Cohls.Recovery.trace.Cohls.Runtime.total_minutes > baseline)
    | Ok _ | Error _ -> ()
  done;
  check bool "found a transient-only run within 100 seeds" true !found

(* ---------- telemetry ---------- *)

let test_counters_recorded () =
  Telemetry.enable ();
  Telemetry.reset ();
  let label, assay = List.nth bundled 1 in
  let s = schedule_of label assay in
  let oracle = Cohls.Runtime.seeded_oracle ~seed:2 ~max_extra:10 (Lazy.force assay) in
  let plan = Cohls.Faults.seeded ~seed:1 ~rate:0.1 in
  (match Cohls.Recovery.execute ~allow_new_devices:true ~plan ~oracle s with
   | Ok o -> check bool "run recovered" true (o.Cohls.Recovery.attempts <> [])
   | Error e -> Alcotest.fail (Format.asprintf "%a" Cohls.Recovery.pp_error e));
  check bool "faults.injected counted" true
    (Telemetry.counter_value "faults.injected" > 0);
  check bool "recovery.invocations counted" true
    (Telemetry.counter_value "recovery.invocations" > 0);
  check bool "recovery.resynth_layers counted" true
    (Telemetry.counter_value "recovery.resynth_layers" > 0);
  Telemetry.disable ()

let test_retry_oracle_cap_counter () =
  Telemetry.enable ();
  Telemetry.reset ();
  let a = Assay.create ~name:"cap" in
  let _i =
    Assay.add_operation a
      ~duration:(Operation.Indeterminate { min_minutes = 5 })
      "capture"
  in
  let oracle =
    Cohls.Runtime.retry_oracle ~max_attempts:2 ~seed:1
      ~success_probability:0.000001 ~attempt_minutes:7 a
  in
  check int_t "duration capped at max_attempts * attempt_minutes" 14 (oracle 0);
  check bool "capped counter bumped" true
    (Telemetry.counter_value "runtime.retry_oracle.capped" >= 1);
  (try
     let (_ : Cohls.Runtime.oracle) =
       Cohls.Runtime.retry_oracle ~max_attempts:0 ~seed:1 ~success_probability:0.5
         ~attempt_minutes:1 a
     in
     Alcotest.fail "max_attempts < 1 must be rejected"
   with Invalid_argument _ -> ());
  Telemetry.disable ()

let () =
  Alcotest.run "recovery"
    [
      ( "faults",
        [
          Alcotest.test_case "plan is deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "rate extremes" `Quick test_plan_rates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rate 0.0 reproduces the fault-free trace" `Quick
            test_zero_rate_byte_for_byte;
          Alcotest.test_case "seeded sweep invariants" `Slow test_seeded_sweep;
          Alcotest.test_case "executed prefix preserved" `Quick test_prefix_preserved;
          Alcotest.test_case "no feasible device set is structured" `Quick
            test_no_feasible_devices_is_structured;
          Alcotest.test_case "transient backoff extends makespan" `Quick
            test_transient_backoff_extends_makespan;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "fault/recovery counters" `Quick test_counters_recorded;
          Alcotest.test_case "retry oracle cap" `Quick test_retry_oracle_cap_counter;
        ] );
    ]
