(* Benchmark harness regenerating every table and figure of the paper's
   evaluation section, plus the ablations called out in DESIGN.md and
   Bechamel micro-benchmarks of the computational kernels.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table2     -- one experiment
     (table2 | table3 | fig4 | fig5 | fig6 | ablation | faults | micro) *)

open Microfluidics
module Syn = Cohls.Synthesis

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.=== %s ===@." title

(* ---------------------------------------------------------------- cases *)

type case = {
  label : string;
  assay : Assay.t Lazy.t;
  ops : int;
  indets : int;
  paper_conv : string; (* the paper's reported numbers, for side-by-side *)
  paper_ours : string;
}

let cases =
  [
    {
      label = "1 [10] kinase";
      assay = lazy (Assays.Kinase.testcase ());
      ops = 16;
      indets = 0;
      paper_conv = "225m, 3D, 3P";
      paper_ours = "220m, 2D, 2P";
    };
    {
      label = "2 [7] gene-expr";
      assay = lazy (Assays.Gene_expression.testcase ());
      ops = 70;
      indets = 10;
      paper_conv = "277m+I1, 24D, 82P";
      paper_ours = "244m+I1, 21D, 33P";
    };
    {
      label = "3 [17] rt-qpcr";
      assay = lazy (Assays.Rt_qpcr.testcase ());
      ops = 120;
      indets = 20;
      paper_conv = "603m+I1+I2, 24D, 95P";
      paper_ours = "492m+I1+I2, 24D, 85P";
    };
  ]

let results = Hashtbl.create 8
let case_seconds = Hashtbl.create 8

(* --ilp-domains N: worker domains for the branch-and-bound legs (0 = the
   library default). The CI determinism gate runs the bench at 1 and 4 and
   diffs the JSON artifacts, so the ILP leg runs the deterministic
   synchronous-wave search under a node budget: the explored tree — and
   with it every schedule-quality field in the JSON — depends only on the
   budget, never on the domain count or the machine's clock. *)
let ilp_domains = ref 0
let ilp_node_budget = 1500 (* per layer solve; ~10 s sequential *)

let ilp_options () =
  let base =
    {
      Lp.Branch_bound.default_options with
      Lp.Branch_bound.time_limit = None;
      node_limit = Some ilp_node_budget;
      deterministic = true;
    }
  in
  if !ilp_domains <= 0 then base
  else { base with Lp.Branch_bound.domains = !ilp_domains }

(* ILP layer-refinement leg of table 2 (case 1 at the default per-layer
   budget), kept for the JSON artifact the CI perf gate diffs. *)
let ilp_leg : Syn.result option ref = ref None

let run_case case =
  match Hashtbl.find_opt results case.label with
  | Some r -> r
  | None ->
    let assay = Lazy.force case.assay in
    let (ours, conv), dt =
      Telemetry.Clock.timed (fun () ->
          let ours = Syn.run assay in
          let conv = Cohls.Baseline.run assay in
          (ours, conv))
    in
    Hashtbl.replace case_seconds case.label dt;
    (match Cohls.Schedule.validate ours.Syn.final with
     | Ok () -> ()
     | Error e -> Format.fprintf fmt "WARNING %s ours invalid: %s@." case.label e);
    (match Cohls.Schedule.validate conv.Syn.final with
     | Ok () -> ()
     | Error e -> Format.fprintf fmt "WARNING %s conv invalid: %s@." case.label e);
    Hashtbl.replace results case.label (ours, conv);
    (ours, conv)

(* ---------------------------------------------------------------- table 2 *)

let table2 () =
  section "Table 2: Synthesis Results for Bioassays";
  let rows =
    List.map
      (fun case ->
        let ours, conv = run_case case in
        {
          Cohls.Report.testcase = case.label;
          op_count = case.ops;
          indeterminate_count = case.indets;
          conventional = conv;
          ours;
        })
      cases
  in
  Cohls.Report.table2 fmt rows;
  Format.fprintf fmt "@.Paper reference values:@.";
  List.iter
    (fun case ->
      Format.fprintf fmt "  %-16s paper conv: %-22s paper ours: %s@." case.label
        case.paper_conv case.paper_ours)
    cases;
  section "Table 2b: ILP layer refinement, case 1 at default budget";
  let ilp =
    Syn.run
      ~config:
        {
          Syn.default_config with
          Syn.engine =
            Cohls.Layer_solver.Ilp
              { options = ilp_options (); extra_free_slots = 1 };
        }
      (Lazy.force (List.hd cases).assay)
  in
  ilp_leg := Some ilp;
  let bi = ilp.Syn.final_breakdown in
  Format.fprintf fmt
    "  kinase (ILP): time %dm  devices %d  paths %d  weighted %d  (%.1fs)@."
    bi.Cohls.Schedule.fixed_minutes bi.Cohls.Schedule.devices
    bi.Cohls.Schedule.paths bi.Cohls.Schedule.weighted ilp.Syn.runtime_seconds;
  Format.fprintf fmt
    "@.Shape check (expected: ours <= conv on every column):@.";
  List.iter
    (fun case ->
      let ours, conv = run_case case in
      let bo = ours.Syn.final_breakdown and bc = conv.Syn.final_breakdown in
      Format.fprintf fmt
        "  %-16s time %4dm vs %4dm (%.1f%%)  devices %2d vs %2d  paths %2d vs %2d@."
        case.label bo.Cohls.Schedule.fixed_minutes bc.Cohls.Schedule.fixed_minutes
        (100.0
         *. float_of_int bo.Cohls.Schedule.fixed_minutes
         /. float_of_int bc.Cohls.Schedule.fixed_minutes)
        bo.Cohls.Schedule.devices bc.Cohls.Schedule.devices bo.Cohls.Schedule.paths
        bc.Cohls.Schedule.paths)
    cases

(* ---------------------------------------------------------------- table 3 *)

let table3 () =
  section "Table 3: Improvement from Progressive Re-Synthesis";
  let entries =
    List.filter_map
      (fun case ->
        if case.indets > 0 then begin
          let ours, _ = run_case case in
          Some (case.label, ours)
        end
        else None)
      cases
  in
  Cohls.Report.table3 fmt entries;
  Format.fprintf fmt
    "@.Paper reference: case 2: 295m -> 247m (16.27%%) -> 244m (1.21%%), #D 21 \
     constant;@.                 case 3: 641m -> 530m (17.32%%) -> 492m (7.17%%), \
     #D 24 constant.@."

(* ---------------------------------------------------------------- fig 4 *)

let fig4 () =
  section "Fig. 4: dependency-based allocation (max independent set)";
  (* the figure's situation: a chain of indeterminate ops; only those
     without indeterminate ancestors in the working set join the layer *)
  let a = Assay.create ~name:"fig4" in
  let ind name = Assay.add_operation a ~duration:(Operation.Indeterminate { min_minutes = 5 }) name in
  let det name = Assay.add_operation a ~duration:(Operation.Fixed 5) name in
  let oa = ind "o_a" in
  let m1 = det "m1" in
  let ob = ind "o_b" in
  let m2 = det "m2" in
  let oc = ind "o_c" in
  let free = det "free" in
  Assay.add_dependency a ~parent:oa ~child:m1;
  Assay.add_dependency a ~parent:m1 ~child:ob;
  Assay.add_dependency a ~parent:ob ~child:m2;
  Assay.add_dependency a ~parent:m2 ~child:oc;
  ignore free;
  let l = Cohls.Layering.compute a in
  Format.fprintf fmt "%a@." Cohls.Layering.pp l;
  Array.iter
    (fun (layer : Cohls.Layering.layer) ->
      Format.fprintf fmt "  L%d ops: %s@." layer.Cohls.Layering.index
        (String.concat ", "
           (List.map
              (fun v -> (Assay.operation a v).Operation.name)
              layer.Cohls.Layering.ops)))
    l.Cohls.Layering.layers;
  Format.fprintf fmt
    "expected: three layers peeling one indeterminate op each (o_a, o_b, o_c), \
     the free op in layer 0.@."

(* ---------------------------------------------------------------- fig 5 *)

let fig5 () =
  section "Fig. 5: resource-based eviction (storage-aware min-cut)";
  let a = Assay.create ~name:"fig5" in
  let ind name = Assay.add_operation a ~duration:(Operation.Indeterminate { min_minutes = 5 }) name in
  let det name = Assay.add_operation a ~duration:(Operation.Fixed 5) name in
  let a1 = det "a1" in
  let o1 = ind "o1" in
  Assay.add_dependency a ~parent:a1 ~child:o1;
  let a2 = det "a2" in
  let a3 = det "a3" in
  let o2 = ind "o2" in
  Assay.add_dependency a ~parent:a2 ~child:o2;
  Assay.add_dependency a ~parent:a3 ~child:o2;
  let a4 = det "a4" in
  let a5 = det "a5" in
  let o3 = ind "o3" in
  Assay.add_dependency a ~parent:a4 ~child:a5;
  Assay.add_dependency a ~parent:a5 ~child:o3;
  Assay.add_dependency a ~parent:a4 ~child:o3;
  List.iter
    (fun threshold ->
      let l = Cohls.Layering.compute ~threshold a in
      let name v = (Assay.operation a v).Operation.name in
      Format.fprintf fmt "threshold %d: layer0 indets = {%s}, stored = %d@." threshold
        (String.concat ", " (List.map name l.Cohls.Layering.layers.(0).Cohls.Layering.indeterminate))
        (List.length l.Cohls.Layering.layers.(0).Cohls.Layering.stored_transfers))
    [ 3; 2; 1 ];
  Format.fprintf fmt
    "expected: t=3 keeps all; t=2 evicts o1 (storage 1, moves nothing);@.\
    \          t=1 additionally evicts o3 (cut cost 1 moving 2 ancestors beats \
     o2's storage 2).@."

(* ---------------------------------------------------------------- fig 6 *)

let fig6 () =
  section "Fig. 6: device inheritance risk and progressive re-synthesis";
  (* o2 (chamber-ish, {s}) in layer 0; o1 (ring, {s,p}) in layer 1. Pass 1
     integrates a cheap device for o2 that o1 cannot reuse; re-synthesis
     notices and binds o2 to o1's ring. The layering is forced by an
     indeterminate op between them. *)
  let a = Assay.create ~name:"fig6" in
  let o2 =
    Assay.add_operation a ~accessories:[ Components.Accessory.Sieve_valve ]
      ~duration:(Operation.Fixed 10) "o2-wash"
  in
  let gate =
    Assay.add_operation a
      ~duration:(Operation.Indeterminate { min_minutes = 5 })
      "gate"
  in
  let o1 =
    Assay.add_operation a ~container:Components.Container.Ring
      ~capacity:Components.Capacity.Small
      ~accessories:[ Components.Accessory.Sieve_valve; Components.Accessory.Pump ]
      ~duration:(Operation.Fixed 10) "o1-mix"
  in
  Assay.add_dependency a ~parent:o2 ~child:gate;
  Assay.add_dependency a ~parent:gate ~child:o1;
  let r = Syn.run a in
  List.iteri
    (fun k (it : Syn.iteration) ->
      let s = it.Syn.schedule in
      let dev op = match Cohls.Schedule.binding s op with Some d -> d | None -> -1 in
      Format.fprintf fmt
        "iteration %d: o2 on d%d, o1 on d%d, devices %d, weighted %d@." k (dev o2)
        (dev o1)
        it.Syn.breakdown.Cohls.Schedule.devices
        it.Syn.breakdown.Cohls.Schedule.weighted)
    r.Syn.iterations;
  let final_devices = r.Syn.final_breakdown.Cohls.Schedule.devices in
  Format.fprintf fmt
    "expected: the final pass shares one ring/sieve-valve device between o1 and \
     o2 where the first pass built a separate chamber (devices: %d).@."
    final_devices

(* ---------------------------------------------------------------- ablation *)

let ablation () =
  section "Ablation: layer-solver engine (ILP vs heuristic, small protocol)";
  let assay = Assays.Kinase.base () in
  let mk engine =
    Syn.run
      ~config:{ Syn.default_config with Syn.engine; max_devices = 6; max_iterations = 1 }
      assay
  in
  let heur = mk Cohls.Layer_solver.Heuristic in
  let ilp =
    mk
      (Cohls.Layer_solver.Ilp
         { options = ilp_options (); extra_free_slots = 1 })
  in
  let show tag (r : Syn.result) =
    let b = r.Syn.final_breakdown in
    Format.fprintf fmt "  %-10s time %3dm devices %d paths %d weighted %6d (%.2fs)@."
      tag b.Cohls.Schedule.fixed_minutes b.Cohls.Schedule.devices b.Cohls.Schedule.paths
      b.Cohls.Schedule.weighted r.Syn.runtime_seconds
  in
  show "heuristic" heur;
  show "ilp" ilp;

  section "Ablation: binding rule (the paper's central claim, case 2)";
  let assay2 = Assays.Gene_expression.testcase () in
  let with_rule rule =
    Syn.run ~config:{ Syn.default_config with Syn.rule } assay2
  in
  show "component" (with_rule Cohls.Binding.Component_oriented);
  show "exact-sig" (with_rule Cohls.Binding.Exact_signature);

  section "Ablation: transportation refinement on/off (case 3)";
  let assay3 = Assays.Rt_qpcr.testcase () in
  let refined = Syn.run assay3 in
  let unrefined =
    Syn.run ~config:{ Syn.default_config with Syn.max_iterations = 1 } assay3
  in
  show "refined" refined;
  show "constant-t" unrefined;

  section "Ablation: indeterminate threshold sweep (case 3)";
  List.iter
    (fun threshold ->
      let r = Syn.run ~config:{ Syn.default_config with Syn.threshold } assay3 in
      let b = r.Syn.final_breakdown in
      Format.fprintf fmt
        "  threshold %2d: %d layers, time %3dm devices %d paths %d@." threshold
        (Array.length r.Syn.final.Cohls.Schedule.layers)
        b.Cohls.Schedule.fixed_minutes b.Cohls.Schedule.devices b.Cohls.Schedule.paths)
    [ 2; 5; 10; 20 ];

  section "Ablation: transport refinement source (usage rank vs grid layout, case 2)";
  show "usage-rank" (Syn.run assay2);
  show "grid-layout" (Syn.run ~config:{ Syn.default_config with Syn.refine_by_layout = true } assay2);

  section "Ablation: control-layer effort (valves and switching events)";
  (* fewer transportation paths (contribution III) translate into fewer
     path-gate valves and fewer switching events, the metric minimised by
     the paper's reference [4] *)
  List.iter
    (fun case ->
      let ours, conv = run_case case in
      let stats (r : Syn.result) =
        let layer = Control.Control_layer.of_chip r.Syn.final.Cohls.Schedule.chip in
        let timeline = Control.Actuation.synthesise layer r.Syn.final in
        (Control.Control_layer.valve_count layer,
         Control.Actuation.switch_count timeline)
      in
      let vo, so = stats ours and vc, sc = stats conv in
      Format.fprintf fmt "  %-16s ours %3d valves / %4d switches   conv %3d valves / %4d switches@."
        case.label vo so vc sc)
    cases;

  section "Ablation: phase-1 selection order (the paper's 'randomly choose')";
  (* Algorithm 1 picks the next eligible indeterminate op "randomly"; the
     layering outcome should be essentially insensitive to that order *)
  let a3 = Assays.Rt_qpcr.testcase () in
  let base_layers = Cohls.Layering.layer_count (Cohls.Layering.compute a3) in
  let seeds = [ 1; 7; 42; 1234 ] in
  let counts =
    List.map
      (fun seed ->
        Cohls.Layering.layer_count
          (Cohls.Layering.compute ~choice:(Cohls.Layering.Seeded seed) a3))
      seeds
  in
  Format.fprintf fmt
    "  case3: smallest-id gives %d layers; seeded picks give %s layers@."
    base_layers
    (String.concat ", " (List.map string_of_int counts));

  section "Ablation: binding-rule robustness over random protocols";
  let wins = ref 0 and ties = ref 0 and losses = ref 0 in
  let tried = ref 0 in
  let seed = ref 0 in
  while !tried < 10 do
    incr seed;
    let params =
      { Assays.Random_assay.default_params with Assays.Random_assay.op_count = 24 }
    in
    let assay = Assays.Random_assay.generate ~seed:!seed params in
    match (Syn.run assay, Cohls.Baseline.run assay) with
    | exception Cohls.List_scheduler.No_device _ -> ()
    | ours, conv ->
      incr tried;
      let o = ours.Syn.final_breakdown.Cohls.Schedule.fixed_minutes in
      let c = conv.Syn.final_breakdown.Cohls.Schedule.fixed_minutes in
      if o < c then incr wins else if o = c then incr ties else incr losses
  done;
  Format.fprintf fmt
    "  over %d random 24-op assays: ours faster %d, tied %d, slower %d@." !tried
    !wins !ties !losses;

  section "Ablation: physical design quality (floorplan + maze routing)";
  (* fewer transportation paths should also yield a cheaper physical
     design: shorter total channel length and fewer channel crossings *)
  List.iter
    (fun case ->
      let ours, conv = run_case case in
      let q (r : Syn.result) =
        Physical.Physical_design.quality
          (Physical.Physical_design.of_schedule Cost.default r.Syn.final)
      in
      let da, la, ca = q ours and dc, lc, cc = q conv in
      Format.fprintf fmt
        "  %-16s ours die %4d len %4d cross %3d   conv die %4d len %4d cross %3d@."
        case.label da la ca dc lc cc)
    cases;

  section "Ablation: scaling (replicated gene-expression protocol, the paper's scaling method)";
  List.iter
    (fun copies ->
      let assay = Assay.replicate (Assays.Gene_expression.base ()) ~copies in
      let r, dt = Telemetry.Clock.timed (fun () -> Syn.run assay) in
      Format.fprintf fmt "  %4d ops: %7.3fs, %d layers, %d devices, time %s@."
        (Assay.operation_count assay)
        dt
        (Array.length r.Syn.final.Cohls.Schedule.layers)
        r.Syn.final_breakdown.Cohls.Schedule.devices
        (Cohls.Report.exe_time_string r))
    [ 10; 20; 40; 80 ];

  section "Ablation: hybrid vs fully static scheduling (slot fragility)";
  (* the paper's motivation for hybrid scheduling: a one-layer fixed-slot
     schedule breaks downstream slots whenever an indeterminate operation
     overruns; the layered hybrid schedule has zero in-layer exposure by
     constraint (14) *)
  List.iter
    (fun (label, assay) ->
      let static, hybrid = Cohls.Static_baseline.compare_hybrid assay in
      Format.fprintf fmt
        "  %-16s static: %3d/%3d slots exposed (worst chain %3d)   hybrid: %d exposed@."
        label static.Cohls.Static_baseline.exposed_slots
        static.Cohls.Static_baseline.total_slots
        static.Cohls.Static_baseline.worst_chain
        hybrid.Cohls.Static_baseline.exposed_slots)
    [
      ("case2 gene-expr", Assays.Gene_expression.testcase ());
      ("case3 rt-qpcr", Assays.Rt_qpcr.testcase ());
      ("mda [12]", Assays.Mda.testcase ());
    ];

  section "Ablation: hybrid execution (realised I_k under an indeterminacy oracle)";
  let r = Syn.run assay2 in
  List.iter
    (fun extra ->
      match
        Cohls.Runtime.execute r.Syn.final
          (Cohls.Runtime.deterministic_oracle ~extra (Lazy.force (lazy assay2)))
      with
      | Ok trace ->
        Format.fprintf fmt "  capture overrun +%2dm: total %dm (fixed %dm)@." extra
          trace.Cohls.Runtime.total_minutes
          (Cohls.Schedule.total_fixed_minutes r.Syn.final)
      | Error e -> Format.fprintf fmt "  oracle error: %s@." e)
    [ 0; 5; 15; 30 ]

(* ---------------------------------------------------------------- faults *)

(* Fault-rate sweep: makespan overhead and recovery cost of fault-tolerant
   execution vs. the fault-free replay of the same schedule (the protocol
   of EXPERIMENTS.md). Everything is seeded, so re-runs reproduce the same
   numbers exactly. *)
let faults () =
  section "Fault injection: recovery count, latency, and makespan overhead";
  let fcases =
    [
      ("case2 gene-expr", Assays.Gene_expression.testcase ());
      ("mda [12]", Assays.Mda.testcase ());
    ]
  in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun (label, assay) ->
      let r = Syn.run assay in
      let oracle = Cohls.Runtime.seeded_oracle ~seed:1 ~max_extra:20 assay in
      let baseline =
        match Cohls.Runtime.execute r.Syn.final oracle with
        | Ok t -> t.Cohls.Runtime.total_minutes
        | Error e -> failwith ("fault-free replay failed: " ^ e)
      in
      Format.fprintf fmt "  %-16s fault-free realised %dm; %d seeds per rate@."
        label baseline (List.length seeds);
      List.iter
        (fun rate ->
          let completed = ref 0 and failed = ref 0 in
          let injected = ref 0 and recoveries = ref 0 in
          let overhead = ref 0.0 and latency = ref 0.0 in
          List.iter
            (fun seed ->
              let plan = Cohls.Faults.seeded ~seed ~rate in
              match
                Cohls.Recovery.execute ~allow_new_devices:true ~plan ~oracle
                  r.Syn.final
              with
              | Ok o ->
                incr completed;
                injected :=
                  !injected
                  + o.Cohls.Recovery.stats.Cohls.Runtime.faults_injected;
                recoveries := !recoveries + List.length o.Cohls.Recovery.attempts;
                latency :=
                  !latency
                  +. List.fold_left
                       (fun acc (a : Cohls.Recovery.attempt) ->
                         acc +. a.Cohls.Recovery.resynth_seconds)
                       0.0 o.Cohls.Recovery.attempts;
                overhead :=
                  !overhead
                  +. 100.0
                     *. float_of_int
                          (o.Cohls.Recovery.trace.Cohls.Runtime.total_minutes
                          - baseline)
                     /. float_of_int (max 1 baseline)
              | Error _ -> incr failed)
            seeds;
          Format.fprintf fmt
            "    rate %.2f: %d/%d completed (%3d faults, %2d recoveries), mean \
             overhead %+5.1f%%, mean recovery latency %5.1fms, %d failed@."
            rate !completed (List.length seeds) !injected !recoveries
            (if !completed > 0 then !overhead /. float_of_int !completed else 0.0)
            (if !recoveries > 0 then 1000.0 *. !latency /. float_of_int !recoveries
             else 0.0)
            !failed)
        [ 0.0; 0.02; 0.05; 0.1; 0.2 ])
    fcases

(* ---------------------------------------------------------------- micro *)

let wyndor_solve () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  let open Lp.Linexpr in
  Lp.Model.add_constr m (var x) Lp.Model.Le (of_int 4);
  Lp.Model.add_constr m (iterm 2 y) Lp.Model.Le (of_int 12);
  Lp.Model.add_constr m (add (iterm 3 x) (iterm 2 y)) Lp.Model.Le (of_int 18);
  Lp.Model.set_objective m `Maximize (add (iterm 3 x) (iterm 5 y));
  ignore (Lp.Simplex.solve_relaxation_float m)

let maxflow_grid () =
  (* an 8x8 grid network with unit-ish capacities *)
  let side = 8 in
  let id r c = (r * side) + c in
  let net = Flowgraph.Maxflow.create (side * side) in
  for r = 0 to side - 1 do
    for c = 0 to side - 1 do
      if c + 1 < side then
        Flowgraph.Maxflow.add_edge net ~src:(id r c) ~dst:(id r (c + 1)) ~cap:((r mod 3) + 1);
      if r + 1 < side then
        Flowgraph.Maxflow.add_edge net ~src:(id r c) ~dst:(id (r + 1) c) ~cap:((c mod 3) + 1)
    done
  done;
  ignore (Flowgraph.Maxflow.max_flow net ~source:0 ~sink:(side * side - 1))

let micro () =
  section "Bechamel micro-benchmarks of the computational kernels";
  let open Bechamel in
  let assay2 = Assays.Gene_expression.testcase () in
  let assay3 = Assays.Rt_qpcr.testcase () in
  let stagef f = Staged.stage f in
  let tests =
    [
      Test.make ~name:"layering/case3"
        (stagef (fun () -> ignore (Cohls.Layering.compute assay3)));
      Test.make ~name:"list-scheduler/case2-pass"
        (stagef (fun () ->
             ignore
               (Syn.run
                  ~config:{ Syn.default_config with Syn.max_iterations = 1 }
                  assay2)));
      Test.make ~name:"simplex/wyndor-float" (stagef wyndor_solve);
      Test.make ~name:"maxflow/8x8-grid" (stagef maxflow_grid);
      Test.make ~name:"bigint/mul-256-digit"
        (stagef (fun () ->
             let a = Numeric.Bigint.pow (Numeric.Bigint.of_int 12345) 64 in
             ignore (Numeric.Bigint.mul a a)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let report test =
    let raw = Benchmark.all cfg [ instance ] test in
    let analysed = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ ns_per_run ] ->
          Format.fprintf fmt "  %-28s %12.0f ns/run@." name ns_per_run
        | Some _ | None -> Format.fprintf fmt "  %-28s (no estimate)@." name)
      analysed
  in
  List.iter report tests

(* ---------------------------------------------------------------- json *)

(* Machine-readable perf-trajectory artifact: per-case synthesis quality
   and wall time plus the full telemetry stats of the run, so successive
   benchmark runs can be diffed by tooling rather than by eye. *)
let json_report ~experiment ~wall_seconds =
  let module J = Telemetry.Json in
  let breakdown_json (r : Syn.result) =
    let b = r.Syn.final_breakdown in
    J.Obj
      [
        ("exe_time", J.String (Cohls.Report.exe_time_string r));
        ("fixed_minutes", J.Int b.Cohls.Schedule.fixed_minutes);
        ("devices", J.Int b.Cohls.Schedule.devices);
        ("paths", J.Int b.Cohls.Schedule.paths);
        ("area", J.Int b.Cohls.Schedule.area);
        ("processing", J.Int b.Cohls.Schedule.processing);
        ("weighted", J.Int b.Cohls.Schedule.weighted);
        ("iterations", J.Int (List.length r.Syn.iterations));
        ("runtime_seconds", J.Float r.Syn.runtime_seconds);
      ]
  in
  let case_json case =
    match Hashtbl.find_opt results case.label with
    | None -> None
    | Some (ours, conv) ->
      Some
        (J.Obj
           [
             ("label", J.String case.label);
             ("ops", J.Int case.ops);
             ("indeterminate_ops", J.Int case.indets);
             ( "wall_seconds",
               match Hashtbl.find_opt case_seconds case.label with
               | Some dt -> J.Float dt
               | None -> J.Null );
             ("ours", breakdown_json ours);
             ("conventional", breakdown_json conv);
             ("paper_conventional", J.String case.paper_conv);
             ("paper_ours", J.String case.paper_ours);
           ])
  in
  let meta =
    [
      ("tool", J.String "cohls bench");
      ("experiment", J.String experiment);
      ("wall_seconds", J.Float wall_seconds);
    ]
  in
  let cases_json = J.List (List.filter_map case_json cases) in
  let ilp_json =
    match !ilp_leg with None -> J.Null | Some r -> breakdown_json r
  in
  (* splice: both sides are compact JSON objects, so we can graft the
     telemetry report in as a field without re-parsing it *)
  let telemetry = Telemetry.Export.stats_json () in
  let head =
    J.to_string
      (J.Obj
         (("meta", J.Obj meta) :: [ ("cases", cases_json); ("ilp", ilp_json) ]))
  in
  String.sub head 0 (String.length head - 1) ^ ",\"telemetry\":" ^ telemetry ^ "}"

(* ---------------------------------------------------------------- main *)

let () =
  let json_path = ref None in
  let what = ref None in
  let rec parse i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
       | "--json" when i + 1 < Array.length Sys.argv ->
         json_path := Some Sys.argv.(i + 1);
         parse (i + 2) |> ignore
       | "--json" ->
         Format.fprintf fmt "--json expects a file argument@.";
         exit 1
       | "--ilp-domains" when i + 1 < Array.length Sys.argv ->
         (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n ->
            ilp_domains := n;
            parse (i + 2) |> ignore
          | None ->
            Format.fprintf fmt "--ilp-domains expects an integer@.";
            exit 1)
       | "--ilp-domains" ->
         Format.fprintf fmt "--ilp-domains expects an integer@.";
         exit 1
       | arg ->
         (match !what with
          | None -> what := Some arg
          | Some _ ->
            Format.fprintf fmt "unexpected argument %s@." arg;
            exit 1);
         parse (i + 1) |> ignore);
      ()
    end
  in
  parse 1;
  let what = Option.value !what ~default:"all" in
  if !json_path <> None then begin
    Telemetry.enable ();
    Telemetry.reset ()
  end;
  let t0 = Telemetry.Clock.now_s () in
  (match what with
   | "table2" -> table2 ()
   | "table3" -> table3 ()
   | "fig4" -> fig4 ()
   | "fig5" -> fig5 ()
   | "fig6" -> fig6 ()
   | "ablation" -> ablation ()
   | "faults" -> faults ()
   | "micro" -> micro ()
   | "all" ->
     table2 ();
     table3 ();
     fig4 ();
     fig5 ();
     fig6 ();
     ablation ();
     faults ();
     micro ()
   | other ->
     Format.fprintf fmt
       "unknown experiment %s (table2|table3|fig4|fig5|fig6|ablation|faults|micro|all)@."
       other;
     exit 1);
  let wall = Telemetry.Clock.now_s () -. t0 in
  (match !json_path with
   | Some path ->
     Telemetry.Export.write_atomic path (json_report ~experiment:what ~wall_seconds:wall);
     Format.fprintf fmt "@.wrote %s@." path
   | None -> ());
  Format.fprintf fmt "@.total bench wall time: %.1fs@." wall
