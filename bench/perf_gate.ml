(* CI perf gate over `bench/main.exe table2 --json` artifacts.

     perf_gate BASELINE.json CURRENT.json
     perf_gate --same A.json B.json

   Compares the current run against the checked-in baseline and exits
   nonzero on regression; every check runs (a readable per-check report
   plus a solver-counter diff table), not just the first mismatch. The
   rules, and why each is machine-independent:

   - per table-2 case, `ours.fixed_minutes` and `ours.weighted` must not
     exceed the baseline's: the heuristic path is deterministic, so any
     increase is a real quality regression (no tolerance; improvements
     pass, and should prompt a baseline refresh);
   - `lp.simplex.deadline_aborts` must not exceed the baseline's (0): an
     abort means a single LP relaxation outlived the whole per-layer
     budget, which only a pathological solver produces, however slow the
     machine — routine budget exhaustion stops between relaxations and is
     not counted;
   - the ILP leg's `weighted` must not exceed the baseline *heuristic*
     weighted for the same case: the branch-and-bound incumbent depends on
     how many nodes fit the time budget, so comparing ILP-to-ILP across
     machines would be flaky, but the layer solver only ever accepts
     strict improvements over the heuristic, so "no worse than the
     deterministic heuristic" holds on any machine;
   - warm starts must be alive: `lp.bb.warm_hits` > 0 whenever the
     baseline has any, and the warm-hit *rate*
     hits / (hits + fallbacks) must be at least half the baseline's rate.
     The rate is a ratio, so it is machine-independent; absolute hit
     counts scale with how many nodes fit the budget and are not compared.
     Halving the baseline rate means the dual re-solve path is going stale
     on models it used to repair — a real solver regression;
   - node throughput: the mean of the `lp.bb.nodes_per_sec` histogram must
     be at least 1/4 of the baseline's. This is the one machine-dependent
     check, hence the wide 4x tolerance: CI machines are slower than dev
     machines, but the regressions this exists to catch (e.g. a dual ratio
     test that re-prices per bound flip) are order-of-magnitude;
   - presolve must have fired: `lp.presolve.rows_removed` and
     `lp.presolve.cols_fixed` nonzero in the current telemetry;
   - wall-clock fields are ignored entirely.

   `--same A.json B.json` is the domain-count determinism gate: it deep
   compares the two artifacts' `cases` and `ilp` sections — the solver
   results — ignoring the timing fields (`runtime_seconds`, `exe_time`,
   `wall_seconds`) and the `meta`/`telemetry` sections (wall times, node
   counts and the work split between domains are scheduling noise). CI
   runs the bench at --ilp-domains 1 and 4 and requires identical results.

   The baseline is regenerated with:
     dune exec bench/main.exe -- table2 --json bench/baseline.json

   Telemetry.Json is a serialiser only, so this file carries its own
   minimal JSON reader (objects, arrays, strings, numbers, true/false/null;
   enough for the bench artifact — not a general-purpose parser). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           (* artifact strings are ASCII; decode the escape to '?' rather
              than carrying a UTF-16 decoder *)
           for _ = 1 to 4 do advance () done;
           Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------- artifact accessors *)

let member key = function
  | Obj fields -> (try List.assoc key fields with Not_found -> Null)
  | _ -> Null

let as_int = function Num f -> int_of_float f | _ -> 0
let as_float = function Num f -> f | _ -> 0.0
let as_str = function Str s -> s | _ -> ""
let as_list = function Arr l -> l | _ -> []

let cases doc =
  List.map (fun c -> (as_str (member "label" c), c)) (as_list (member "cases" doc))

let counter doc name =
  let rec find = function
    | [] -> 0
    | c :: rest -> if as_str (member "name" c) = name then as_int (member "value" c) else find rest
  in
  find (as_list (member "counters" (member "telemetry" doc)))

let hist_mean doc name =
  let rec find = function
    | [] -> 0.0
    | h :: rest ->
      if as_str (member "name" h) = name then as_float (member "mean" h)
      else find rest
  in
  find (as_list (member "histograms" (member "telemetry" doc)))

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  match parse content with
  | v -> v
  | exception Parse_error msg ->
    Printf.eprintf "perf_gate: %s: %s\n" path msg;
    exit 2

(* ------------------------------------------------------------- checks *)

let failures = ref 0

let check ok fmt =
  Printf.ksprintf
    (fun msg ->
      if ok then Printf.printf "ok    %s\n" msg
      else begin
        incr failures;
        Printf.printf "FAIL  %s\n" msg
      end)
    fmt

(* ------------------------------------------------------- --same mode *)

(* Deep structural diff of the solver-result sections, with timing fields
   masked out. Reports every difference with its JSON path. *)
let timing_field = function
  | "runtime_seconds" | "exe_time" | "wall_seconds" -> true
  | _ -> false

let rec diff_json path a b diffs =
  match (a, b) with
  | Obj fa, Obj fb ->
    let keys =
      List.sort_uniq compare (List.map fst fa @ List.map fst fb)
    in
    List.fold_left
      (fun acc k ->
        if timing_field k then acc
        else
          diff_json (path ^ "." ^ k) (member k (Obj fa)) (member k (Obj fb)) acc)
      diffs keys
  | Arr xa, Arr xb when List.length xa = List.length xb ->
    let rec go i xs ys acc =
      match (xs, ys) with
      | x :: xs', y :: ys' ->
        go (i + 1) xs' ys' (diff_json (Printf.sprintf "%s[%d]" path i) x y acc)
      | _, _ -> acc
    in
    go 0 xa xb diffs
  | Arr xa, Arr xb ->
    (Printf.sprintf "%s: array length %d vs %d" path (List.length xa)
       (List.length xb))
    :: diffs
  | _ ->
    let rec show = function
      | Null -> "null"
      | Bool b -> string_of_bool b
      | Num f -> Printf.sprintf "%g" f
      | Str s -> Printf.sprintf "%S" s
      | Arr l -> Printf.sprintf "[%s]" (String.concat "," (List.map show l))
      | Obj _ -> "{...}"
    in
    if a = b then diffs else Printf.sprintf "%s: %s vs %s" path (show a) (show b) :: diffs

let same_mode path_a path_b =
  let a = load path_a and b = load path_b in
  let pick doc = Obj [ ("cases", member "cases" doc); ("ilp", member "ilp" doc) ] in
  let diffs = List.rev (diff_json "$" (pick a) (pick b) []) in
  if diffs = [] then begin
    Printf.printf "same: %s and %s agree on all solver results\n" path_a path_b;
    exit 0
  end
  else begin
    Printf.printf "same: %d difference(s) between %s and %s:\n"
      (List.length diffs) path_a path_b;
    List.iter (fun d -> Printf.printf "  %s\n" d) diffs;
    exit 1
  end

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; "--same"; a; b |] -> same_mode a b
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline
        "usage: perf_gate BASELINE.json CURRENT.json | perf_gate --same A.json B.json";
      exit 2
  in
  let baseline = load baseline_path in
  let current = load current_path in
  let cur_cases = cases current in
  List.iter
    (fun (label, base_case) ->
      match List.assoc_opt label cur_cases with
      | None -> check false "case %S present" label
      | Some cur_case ->
        let metric name =
          ( as_int (member name (member "ours" cur_case)),
            as_int (member name (member "ours" base_case)) )
        in
        let cur_mk, base_mk = metric "fixed_minutes" in
        let cur_w, base_w = metric "weighted" in
        check (cur_mk <= base_mk) "%S makespan %dm <= baseline %dm" label cur_mk base_mk;
        check (cur_w <= base_w) "%S weighted %d <= baseline %d" label cur_w base_w)
    (cases baseline);
  let cur_aborts = counter current "lp.simplex.deadline_aborts" in
  let base_aborts = counter baseline "lp.simplex.deadline_aborts" in
  check (cur_aborts <= base_aborts) "deadline aborts %d <= baseline %d" cur_aborts
    base_aborts;
  (match (member "ilp" current, cases baseline) with
   | Null, _ -> check false "ILP leg present in current artifact"
   | ilp, (_, first_base) :: _ ->
     let w = as_int (member "weighted" ilp) in
     let heur_w = as_int (member "weighted" (member "ours" first_base)) in
     check (w > 0 && w <= heur_w) "ILP weighted %d <= baseline heuristic %d" w heur_w
   | _, [] -> check false "baseline has cases");
  let rows_removed = counter current "lp.presolve.rows_removed" in
  let cols_fixed = counter current "lp.presolve.cols_fixed" in
  check (rows_removed > 0) "presolve removed rows (%d)" rows_removed;
  check (cols_fixed > 0) "presolve fixed columns (%d)" cols_fixed;
  (* Solver-counter diff table: context for the checks below, printed for
     every run so a failure report is self-contained. *)
  let diff_counters =
    [
      "lp.bb.nodes";
      "lp.bb.warm_hits";
      "lp.bb.warm_fallbacks";
      "lp.bb.steals";
      "lp.bb.pruned_by_bound";
      "lp.simplex.warm_solves";
      "lp.simplex.dual_pivots";
      "lp.simplex.bound_flips";
      "lp.simplex.deadline_aborts";
    ]
  in
  Printf.printf "\n%-32s %12s %12s %8s\n" "counter" "baseline" "current" "ratio";
  Printf.printf "%s\n" (String.make 68 '-');
  List.iter
    (fun name ->
      let b = counter baseline name and c = counter current name in
      let ratio =
        if b = 0 then (if c = 0 then "-" else "new")
        else Printf.sprintf "%.2f" (float_of_int c /. float_of_int b)
      in
      Printf.printf "%-32s %12d %12d %8s\n" name b c ratio)
    diff_counters;
  Printf.printf "\n";
  (* Warm-start health: rate is machine-independent; see header. *)
  let rate doc =
    let h = counter doc "lp.bb.warm_hits" in
    let f = counter doc "lp.bb.warm_fallbacks" in
    if h + f = 0 then 0.0 else float_of_int h /. float_of_int (h + f)
  in
  let base_hits = counter baseline "lp.bb.warm_hits" in
  if base_hits > 0 then begin
    let cur_hits = counter current "lp.bb.warm_hits" in
    check (cur_hits > 0) "warm starts alive (hits %d)" cur_hits;
    let br = rate baseline and cr = rate current in
    check
      (cr >= 0.5 *. br)
      "warm-hit rate %.3f >= half of baseline %.3f" cr br
  end;
  (* Node throughput: machine-dependent, wide 4x tolerance; see header. *)
  let base_nps = hist_mean baseline "lp.bb.nodes_per_sec" in
  if base_nps > 0.0 then begin
    let cur_nps = hist_mean current "lp.bb.nodes_per_sec" in
    check
      (cur_nps >= 0.25 *. base_nps)
      "nodes/sec %.1f >= 1/4 of baseline %.1f" cur_nps base_nps
  end;
  if !failures > 0 then begin
    Printf.printf "\nperf gate: %d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "\nperf gate: all checks passed"
