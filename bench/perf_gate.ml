(* CI perf gate over `bench/main.exe table2 --json` artifacts.

     perf_gate BASELINE.json CURRENT.json

   Compares the current run against the checked-in baseline and exits
   nonzero on regression. The rules, and why each is machine-independent:

   - per table-2 case, `ours.fixed_minutes` and `ours.weighted` must not
     exceed the baseline's: the heuristic path is deterministic, so any
     increase is a real quality regression (no tolerance; improvements
     pass, and should prompt a baseline refresh);
   - `lp.simplex.deadline_aborts` must not exceed the baseline's (0): an
     abort means a single LP relaxation outlived the whole per-layer
     budget, which only a pathological solver produces, however slow the
     machine — routine budget exhaustion stops between relaxations and is
     not counted;
   - the ILP leg's `weighted` must not exceed the baseline *heuristic*
     weighted for the same case: the branch-and-bound incumbent depends on
     how many nodes fit the time budget, so comparing ILP-to-ILP across
     machines would be flaky, but the layer solver only ever accepts
     strict improvements over the heuristic, so "no worse than the
     deterministic heuristic" holds on any machine;
   - presolve must have fired: `lp.presolve.rows_removed` and
     `lp.presolve.cols_fixed` nonzero in the current telemetry;
   - wall-clock fields are ignored entirely.

   The baseline is regenerated with:
     dune exec bench/main.exe -- table2 --json bench/baseline.json

   Telemetry.Json is a serialiser only, so this file carries its own
   minimal JSON reader (objects, arrays, strings, numbers, true/false/null;
   enough for the bench artifact — not a general-purpose parser). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           (* artifact strings are ASCII; decode the escape to '?' rather
              than carrying a UTF-16 decoder *)
           for _ = 1 to 4 do advance () done;
           Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------- artifact accessors *)

let member key = function
  | Obj fields -> (try List.assoc key fields with Not_found -> Null)
  | _ -> Null

let as_int = function Num f -> int_of_float f | _ -> 0
let as_str = function Str s -> s | _ -> ""
let as_list = function Arr l -> l | _ -> []

let cases doc =
  List.map (fun c -> (as_str (member "label" c), c)) (as_list (member "cases" doc))

let counter doc name =
  let rec find = function
    | [] -> 0
    | c :: rest -> if as_str (member "name" c) = name then as_int (member "value" c) else find rest
  in
  find (as_list (member "counters" (member "telemetry" doc)))

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  match parse content with
  | v -> v
  | exception Parse_error msg ->
    Printf.eprintf "perf_gate: %s: %s\n" path msg;
    exit 2

(* ------------------------------------------------------------- checks *)

let failures = ref 0

let check ok fmt =
  Printf.ksprintf
    (fun msg ->
      if ok then Printf.printf "ok    %s\n" msg
      else begin
        incr failures;
        Printf.printf "FAIL  %s\n" msg
      end)
    fmt

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline "usage: perf_gate BASELINE.json CURRENT.json";
      exit 2
  in
  let baseline = load baseline_path in
  let current = load current_path in
  let cur_cases = cases current in
  List.iter
    (fun (label, base_case) ->
      match List.assoc_opt label cur_cases with
      | None -> check false "case %S present" label
      | Some cur_case ->
        let metric name =
          ( as_int (member name (member "ours" cur_case)),
            as_int (member name (member "ours" base_case)) )
        in
        let cur_mk, base_mk = metric "fixed_minutes" in
        let cur_w, base_w = metric "weighted" in
        check (cur_mk <= base_mk) "%S makespan %dm <= baseline %dm" label cur_mk base_mk;
        check (cur_w <= base_w) "%S weighted %d <= baseline %d" label cur_w base_w)
    (cases baseline);
  let cur_aborts = counter current "lp.simplex.deadline_aborts" in
  let base_aborts = counter baseline "lp.simplex.deadline_aborts" in
  check (cur_aborts <= base_aborts) "deadline aborts %d <= baseline %d" cur_aborts
    base_aborts;
  (match (member "ilp" current, cases baseline) with
   | Null, _ -> check false "ILP leg present in current artifact"
   | ilp, (_, first_base) :: _ ->
     let w = as_int (member "weighted" ilp) in
     let heur_w = as_int (member "weighted" (member "ours" first_base)) in
     check (w > 0 && w <= heur_w) "ILP weighted %d <= baseline heuristic %d" w heur_w
   | _, [] -> check false "baseline has cases");
  let rows_removed = counter current "lp.presolve.rows_removed" in
  let cols_fixed = counter current "lp.presolve.cols_fixed" in
  check (rows_removed > 0) "presolve removed rows (%d)" rows_removed;
  check (cols_fixed > 0) "presolve fixed columns (%d)" cols_fixed;
  if !failures > 0 then begin
    Printf.printf "\nperf gate: %d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "\nperf gate: all checks passed"
