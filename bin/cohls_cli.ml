(* Command-line front end for the component-oriented synthesiser.

     cohls_cli synth    --case case2 --rule conventional --schedule
     cohls_cli layering --case case3 --threshold 5
     cohls_cli execute  --case case2 --seed 7 --max-extra 20
     cohls_cli compare  --case case1 *)

open Cmdliner
module Syn = Cohls.Synthesis

let assay_of_case name =
  match name with
  | "case1" | "kinase" -> Ok (Assays.Kinase.testcase ())
  | "case2" | "gene-expression" -> Ok (Assays.Gene_expression.testcase ())
  | "case3" | "rt-qpcr" -> Ok (Assays.Rt_qpcr.testcase ())
  | "chip" | "auto-chip" -> Ok (Assays.Chip_assay.testcase ())
  | "mda" -> Ok (Assays.Mda.testcase ())
  | other ->
    (match String.index_opt other ':' with
     | Some i when String.sub other 0 i = "random" -> begin
       match int_of_string_opt (String.sub other (i + 1) (String.length other - i - 1)) with
       | Some seed ->
         Ok (Assays.Random_assay.generate ~seed Assays.Random_assay.default_params)
       | None -> Error (`Msg "random:<seed> expects an integer seed")
     end
     | Some _ | None ->
       Error (`Msg (Printf.sprintf "unknown case %S (case1|case2|case3|chip|mda|random:<seed>)" other)))

let case_arg =
  let doc = "Test case: case1 (kinase), case2 (gene-expression), case3 (rt-qpcr) chip (auto-chip), mda, or random:<seed>." in
  Arg.(value & opt string "case1" & info [ "c"; "case" ] ~docv:"CASE" ~doc)

let file_arg =
  let doc = "Read the assay from a .assay description file instead of --case (see lib/microfluidics/assay_text.mli for the grammar)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let assay_of ~case ~file =
  match file with
  | Some path -> begin
    match Microfluidics.Assay_text.of_file path with
    | Ok a -> Ok a
    | Error e ->
      Error (`Msg (Format.asprintf "%s: %a" path Microfluidics.Assay_text.pp_error e))
  end
  | None -> assay_of_case case

let rule_arg =
  let doc = "Binding rule: component (ours) or conventional (exact-signature baseline)." in
  Arg.(value & opt (enum [ ("component", `Component); ("conventional", `Conventional) ]) `Component
       & info [ "rule" ] ~doc)

let threshold_arg =
  let doc = "Maximum indeterminate operations per layer (Algorithm 1)." in
  Arg.(value & opt int 10 & info [ "t"; "threshold" ] ~doc)

let devices_arg =
  let doc = "Device cap |D|." in
  Arg.(value & opt int 25 & info [ "d"; "devices" ] ~doc)

let iterations_arg =
  let doc = "Maximum progressive re-synthesis iterations." in
  Arg.(value & opt int 5 & info [ "iterations" ] ~doc)

let ilp_arg =
  let doc = "Solve each layer with the exact ILP (time-limited branch-and-bound warm-started by the greedy schedule)." in
  Arg.(value & flag & info [ "ilp" ] ~doc)

let ilp_seconds_arg =
  let doc = "Per-layer ILP time limit in seconds." in
  Arg.(value & opt float 10.0 & info [ "ilp-seconds" ] ~doc)

let ilp_domains_arg =
  let doc =
    "Worker domains for the parallel branch-and-bound tree search (0 = \
     auto: min 4 (cpus-1))."
  in
  Arg.(value & opt int 0 & info [ "ilp-domains" ] ~docv:"N" ~doc)

let schedule_arg =
  let doc = "Print the full schedule, not just the summary." in
  Arg.(value & flag & info [ "schedule" ] ~doc)

let gantt_arg =
  let doc = "Print an ASCII Gantt chart of the schedule." in
  Arg.(value & flag & info [ "gantt" ] ~doc)

let control_arg =
  let doc = "Print the control layer (valves) and the actuation switch count." in
  Arg.(value & flag & info [ "control" ] ~doc)

let physical_arg =
  let doc = "Print the floorplan and routed-channel quality of the resulting chip." in
  Arg.(value & flag & info [ "physical" ] ~doc)

let dot_arg =
  let doc = "Write a Graphviz rendering of the bound schedule to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let csv_arg =
  let doc = "Write the schedule as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record telemetry and write a Chrome trace_event JSON of the run to \
     $(docv) (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let config_of ~rule ~threshold ~devices ~iterations ~ilp ~ilp_seconds
    ~ilp_domains =
  let engine =
    if ilp then
      Cohls.Layer_solver.Ilp
        {
          options =
            {
              Lp.Branch_bound.default_options with
              Lp.Branch_bound.time_limit = Some ilp_seconds;
              domains =
                (if ilp_domains <= 0 then
                   Lp.Branch_bound.default_options.Lp.Branch_bound.domains
                 else ilp_domains);
            };
          extra_free_slots = 1;
        }
    else Cohls.Layer_solver.Heuristic
  in
  {
    Syn.default_config with
    Syn.rule =
      (match rule with
       | `Component -> Cohls.Binding.Component_oriented
       | `Conventional -> Cohls.Binding.Exact_signature);
    threshold;
    max_devices = devices;
    max_iterations = iterations;
    engine;
  }

let handle_result = function
  | Ok () -> `Ok ()
  | Error (`Msg m) -> `Error (false, m)

(* List_scheduler.No_device must never escape as a backtrace: every
   subcommand that synthesises funnels through this guard and exits with a
   clean diagnostic and nonzero status instead. *)
let catch_no_device ~devices f =
  try f () with
  | Cohls.List_scheduler.No_device op ->
    Error
      (`Msg
         (Printf.sprintf "device cap %d too small (operation %d fits no device)"
            devices op))
  | Sys_error e -> Error (`Msg e)

(* ---------- synth ---------- *)

let write_file path content = Telemetry.Export.write_atomic path content

(* Enable the collector for the duration of [f] when a trace file was
   requested, then dump the Chrome trace. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Telemetry.enable ();
    Telemetry.reset ();
    let result = f () in
    write_file path (Telemetry.Export.chrome_trace ());
    Telemetry.disable ();
    Format.printf "wrote %s@." path;
    result

let synth case file rule threshold devices iterations ilp ilp_seconds
    ilp_domains schedule gantt control physical dot csv trace =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of ~case ~file in
     let config =
       config_of ~rule ~threshold ~devices ~iterations ~ilp ~ilp_seconds
         ~ilp_domains
     in
     let run () =
       let r = Syn.run ~config assay in
       Format.printf "%a@." Cohls.Report.schedule_summary r;
       if schedule then Format.printf "@.%a@." Cohls.Schedule.pp r.Syn.final;
       if gantt then Format.printf "@.%s@." (Export.Gantt.render r.Syn.final);
       if control then begin
         let layer = Control.Control_layer.of_chip r.Syn.final.Cohls.Schedule.chip in
         let timeline = Control.Actuation.synthesise layer r.Syn.final in
         Format.printf "@.%a@." Control.Control_layer.pp layer;
         Format.printf "actuation: %d valve switching events over %dm@."
           (Control.Actuation.switch_count timeline)
           timeline.Control.Actuation.horizon
       end;
       if physical then begin
         let design = Physical.Physical_design.of_schedule Microfluidics.Cost.default r.Syn.final in
         let die, len, crossings = Physical.Physical_design.quality design in
         Format.printf "@.%a@." Physical.Physical_design.pp design;
         Format.printf "physical quality: die %d, channel length %d, crossings %d@."
           die len crossings
       end;
       (match dot with
        | Some path ->
          write_file path (Export.Dot.schedule r.Syn.final);
          Format.printf "wrote %s@." path
        | None -> ());
       (match csv with
        | Some path ->
          write_file path (Export.Csv.schedule r.Syn.final);
          Format.printf "wrote %s@." path
        | None -> ());
       (match Cohls.Schedule.validate r.Syn.final with
        | Ok () -> Format.printf "schedule validates: OK@."; Ok ()
        | Error e -> Error (`Msg ("internal: schedule invalid: " ^ e)))
     in
     catch_no_device ~devices (fun () -> with_trace trace run))

let synth_cmd =
  let info = Cmd.info "synth" ~doc:"Synthesise a hybrid schedule for a bioassay." in
  Cmd.v info
    Term.(
      ret
        (const synth $ case_arg $ file_arg $ rule_arg $ threshold_arg $ devices_arg
         $ iterations_arg $ ilp_arg $ ilp_seconds_arg $ ilp_domains_arg
         $ schedule_arg $ gantt_arg $ control_arg $ physical_arg $ dot_arg
         $ csv_arg $ trace_arg))

(* ---------- fault-injection options (stats, simulate) ---------- *)

let fault_seed_arg =
  let doc = "Fault-plan seed (deterministic per (seed, device, layer))." in
  Arg.(value & opt int 1 & info [ "faults" ] ~docv:"SEED" ~doc)

let fault_rate_arg =
  let doc = "Per-(device, layer-boundary) fault probability in [0, 1]." in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)

let allow_new_devices_arg =
  let doc =
    "Let recovery integrate fresh devices (beyond re-binding the surviving \
     chip) up to the device cap."
  in
  Arg.(value & flag & info [ "allow-new-devices" ] ~doc)

let fault_plan ~fault_seed ~fault_rate =
  if fault_rate < 0.0 || fault_rate > 1.0 then
    Error (`Msg "fault rate must be in [0, 1]")
  else Ok (Cohls.Faults.seeded ~seed:fault_seed ~rate:fault_rate)

(* ---------- stats ---------- *)

let stats_json_arg =
  let doc = "Write the solver-statistics report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let stats case file rule threshold devices iterations ilp ilp_seconds
    ilp_domains json trace fault_seed fault_rate =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of ~case ~file in
     let* plan = fault_plan ~fault_seed ~fault_rate in
     let config =
       config_of ~rule ~threshold ~devices ~iterations ~ilp ~ilp_seconds
         ~ilp_domains
     in
     catch_no_device ~devices (fun () ->
       let ( let* ) = Result.bind in
       Telemetry.enable ();
       Telemetry.reset ();
       let r = Syn.run ~config assay in
       (* with --fault-rate > 0 also exercise the fault-tolerant executor so
          the faults.* / recovery.* counters appear in the report *)
       let* () =
         if fault_rate > 0.0 then begin
           let oracle = Cohls.Runtime.seeded_oracle ~seed:1 ~max_extra:20 assay in
           match Cohls.Recovery.execute ~config ~plan ~oracle r.Syn.final with
           | Ok _ -> Ok ()
           | Error e ->
             Format.printf "%a@." Cohls.Recovery.pp_error e;
             Ok ()
         end
         else Ok ()
       in
       (match trace with
        | Some path ->
          write_file path (Telemetry.Export.chrome_trace ());
          Format.printf "wrote %s@." path
        | None -> ());
       Format.printf "%a@.@." Cohls.Report.schedule_summary r;
       print_string (Telemetry.Export.stats_table ());
       (match json with
        | Some path ->
          let meta =
            [
              ("tool", Telemetry.Json.String "cohls stats");
              ("case", Telemetry.Json.String case);
              ( "rule",
                Telemetry.Json.String (Cohls.Binding.rule_name config.Syn.rule) );
            ]
          in
          write_file path (Telemetry.Export.stats_json ~meta ());
          Format.printf "wrote %s@." path
        | None -> ());
       Telemetry.disable ();
       Ok ()))

let stats_cmd =
  let info =
    Cmd.info "stats"
      ~doc:
        "Synthesise with the telemetry collector enabled and report solver \
         counters (simplex pivots, branch-and-bound nodes, layering \
         evictions, re-synthesis passes, fault injection and recovery) as a \
         table or JSON."
  in
  Cmd.v info
    Term.(
      ret
        (const stats $ case_arg $ file_arg $ rule_arg $ threshold_arg $ devices_arg
         $ iterations_arg $ ilp_arg $ ilp_seconds_arg $ ilp_domains_arg
         $ stats_json_arg $ trace_arg $ fault_seed_arg $ fault_rate_arg))

(* ---------- layering ---------- *)

let layering case threshold =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of_case case in
     let l = Cohls.Layering.compute ~threshold assay in
     Format.printf "%a@." Cohls.Layering.pp l;
     Array.iter
       (fun (layer : Cohls.Layering.layer) ->
         Format.printf "  L%d: %s@." layer.Cohls.Layering.index
           (String.concat ", "
              (List.map
                 (fun v ->
                   let o = Microfluidics.Assay.operation assay v in
                   Printf.sprintf "%d:%s" v o.Microfluidics.Operation.name)
                 layer.Cohls.Layering.ops)))
       l.Cohls.Layering.layers;
     match Cohls.Layering.check l with
     | Ok () -> Format.printf "layering invariants: OK@."; Ok ()
     | Error e -> Error (`Msg e))

let layering_cmd =
  let info = Cmd.info "layering" ~doc:"Show the hybrid-scheduling layers of a bioassay." in
  Cmd.v info Term.(ret (const layering $ case_arg $ threshold_arg))

(* ---------- execute ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Oracle seed.")

let max_extra_arg =
  Arg.(value & opt int 20 & info [ "max-extra" ]
       ~doc:"Maximum extra minutes an indeterminate operation may take.")

let execute case seed max_extra =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of_case case in
     catch_no_device ~devices:Syn.default_config.Syn.max_devices (fun () ->
       let r = Syn.run assay in
       let oracle = Cohls.Runtime.seeded_oracle ~seed ~max_extra assay in
       match Cohls.Runtime.execute r.Syn.final oracle with
       | Ok trace ->
         Format.printf "fixed part: %dm, realised total: %dm@."
           (Cohls.Schedule.total_fixed_minutes r.Syn.final)
           trace.Cohls.Runtime.total_minutes;
         List.iter
           (fun (layer, wait) -> Format.printf "  layer %d waited %dm for indeterminate ops@." layer wait)
           trace.Cohls.Runtime.waits;
         Ok ()
       | Error e -> Error (`Msg e)))

let execute_cmd =
  let info = Cmd.info "execute" ~doc:"Replay a hybrid schedule under an indeterminacy oracle." in
  Cmd.v info Term.(ret (const execute $ case_arg $ seed_arg $ max_extra_arg))

(* ---------- simulate ---------- *)

let print_outcome ~baseline (o : Cohls.Recovery.outcome) =
  let s = o.Cohls.Recovery.stats in
  Format.printf
    "faults: %d injected, %d transient retries paid, %d escalated@."
    s.Cohls.Runtime.faults_injected s.Cohls.Runtime.transient_retries
    s.Cohls.Runtime.transients_escalated;
  List.iteri
    (fun i (a : Cohls.Recovery.attempt) ->
      Format.printf
        "recovery %d: boundary %d, device %d dead%s; re-synthesised %d ops into \
         %d layers on %d survivors (+%d fresh) in %.3fs%s@."
        (i + 1) a.Cohls.Recovery.at_global_layer a.Cohls.Recovery.dead_device
        (if a.Cohls.Recovery.escalated then " (escalated transient)" else "")
        a.Cohls.Recovery.suffix_ops a.Cohls.Recovery.resynth_layers
        a.Cohls.Recovery.surviving_devices a.Cohls.Recovery.fresh_devices
        a.Cohls.Recovery.resynth_seconds
        (if a.Cohls.Recovery.degraded_to_heuristic then " [degraded to heuristic]"
         else ""))
    o.Cohls.Recovery.attempts;
  let total = o.Cohls.Recovery.trace.Cohls.Runtime.total_minutes in
  Format.printf "realised total: %dm (fault-free %dm, overhead %+.1f%%)@." total
    baseline
    (100.0 *. float_of_int (total - baseline) /. float_of_int (max 1 baseline));
  List.iteri
    (fun i s ->
      match Cohls.Schedule.validate s with
      | Ok () -> Format.printf "recovered schedule %d validates: OK@." (i + 1)
      | Error e -> Format.printf "recovered schedule %d INVALID: %s@." (i + 1) e)
    o.Cohls.Recovery.recovered_schedules

let simulate case file rule threshold devices iterations ilp ilp_seconds
    ilp_domains seed max_extra fault_seed fault_rate allow_new_devices
    show_stats =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of ~case ~file in
     let* plan = fault_plan ~fault_seed ~fault_rate in
     let config =
       config_of ~rule ~threshold ~devices ~iterations ~ilp ~ilp_seconds
         ~ilp_domains
     in
     catch_no_device ~devices (fun () ->
       if show_stats then begin
         Telemetry.enable ();
         Telemetry.reset ()
       end;
       let r = Syn.run ~config assay in
       let oracle = Cohls.Runtime.seeded_oracle ~seed ~max_extra assay in
       let baseline =
         match Cohls.Runtime.execute r.Syn.final oracle with
         | Ok t -> t.Cohls.Runtime.total_minutes
         | Error e -> failwith ("fault-free replay failed: " ^ e)
       in
       Format.printf "%s: %d layers, fixed part %dm, fault-free realised %dm@."
         (Microfluidics.Assay.name assay)
         (Array.length r.Syn.final.Cohls.Schedule.layers)
         (Cohls.Schedule.total_fixed_minutes r.Syn.final)
         baseline;
       Format.printf "plan: %s@." (Cohls.Faults.describe plan);
       let result =
         match
           Cohls.Recovery.execute ~config ~allow_new_devices ~plan ~oracle
             r.Syn.final
         with
         | Ok outcome ->
           print_outcome ~baseline outcome;
           let invalid =
             List.exists
               (fun s -> Result.is_error (Cohls.Schedule.validate s))
               outcome.Cohls.Recovery.recovered_schedules
           in
           if invalid then Error (`Msg "a recovered schedule failed validation")
           else Ok ()
         | Error e -> Error (`Msg (Format.asprintf "%a" Cohls.Recovery.pp_error e))
       in
       if show_stats then begin
         Format.printf "@.";
         print_string (Telemetry.Export.stats_table ());
         Telemetry.disable ()
       end;
       result))

let sim_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Indeterminacy-oracle seed.")

let sim_rate_arg =
  let doc = "Per-(device, layer-boundary) fault probability in [0, 1]." in
  Arg.(value & opt float 0.1 & info [ "fault-rate" ] ~docv:"P" ~doc)

let sim_stats_arg =
  let doc = "Print the telemetry counter table (fault/recovery counters) after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let simulate_cmd =
  let info =
    Cmd.info "simulate"
      ~doc:
        "Execute a hybrid schedule under seeded device-fault injection: \
         transient faults are retried with capped backoff at the layer \
         boundary; a permanent fault triggers layer-boundary recovery, \
         re-synthesising the unexecuted suffix on the surviving devices."
  in
  Cmd.v info
    Term.(
      ret
        (const simulate $ case_arg $ file_arg $ rule_arg $ threshold_arg
         $ devices_arg $ iterations_arg $ ilp_arg $ ilp_seconds_arg
         $ ilp_domains_arg $ sim_seed_arg $ max_extra_arg $ fault_seed_arg
         $ sim_rate_arg $ allow_new_devices_arg $ sim_stats_arg))

(* ---------- compare ---------- *)

let compare_run case threshold devices =
  handle_result
    (let ( let* ) = Result.bind in
     let* assay = assay_of_case case in
     let base = { Syn.default_config with Syn.threshold; max_devices = devices } in
     catch_no_device ~devices (fun () ->
     let ours = Syn.run ~config:base assay in
     let conv = Cohls.Baseline.run ~config:base assay in
     let row =
       {
         Cohls.Report.testcase = case;
         op_count = Microfluidics.Assay.operation_count assay;
         indeterminate_count = Microfluidics.Assay.indeterminate_count assay;
         conventional = conv;
         ours;
       }
     in
     Cohls.Report.table2 Format.std_formatter [ row ];
     Format.printf "@.";
     Cohls.Report.table3 Format.std_formatter [ (case, ours) ];
     Format.printf "@.";
     Ok ()))

let compare_cmd =
  let info = Cmd.info "compare" ~doc:"Compare our method against the conventional baseline (Table 2/3 style)." in
  Cmd.v info Term.(ret (const compare_run $ case_arg $ threshold_arg $ devices_arg))

let main_cmd =
  let doc = "Component-oriented high-level synthesis for continuous-flow microfluidics (DAC'17 reproduction)." in
  let info = Cmd.info "cohls" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ synth_cmd; stats_cmd; layering_cmd; execute_cmd; simulate_cmd; compare_cmd ]

let () = exit (Cmd.eval main_cmd)
